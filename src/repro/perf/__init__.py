"""Performance metrics, theoretical peaks, rooflines and calibration.

The paper's central methodological tool is the *theoretical performance*
of a dataflow design — operations per cycle times clock frequency — used
as the yardstick every implementation is measured against
(:mod:`repro.perf.theoretical`).  :mod:`repro.perf.calibration` documents
how each effective-throughput constant in the device catalog was derived
from the paper's published measurements, and verifies the derivations
numerically.
"""

from repro.perf.bench import BenchRecord, BenchSuite, load_suite, speedup
from repro.perf.calibration import CALIBRATION, CalibrationEntry
from repro.perf.metrics import KernelMetrics, compare_to_paper
from repro.perf.roofline import RooflinePoint, arithmetic_intensity, roofline_gflops
from repro.perf.theoretical import (
    percent_of_theoretical,
    theoretical_gflops,
)

__all__ = [
    "theoretical_gflops",
    "percent_of_theoretical",
    "KernelMetrics",
    "compare_to_paper",
    "CALIBRATION",
    "CalibrationEntry",
    "arithmetic_intensity",
    "roofline_gflops",
    "RooflinePoint",
    "BenchRecord",
    "BenchSuite",
    "load_suite",
    "speedup",
]
