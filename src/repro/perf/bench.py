"""Benchmark records for the simulator's own performance.

The cycle-accurate engine is the instrument every reproduction number is
read from, so its wall-clock speed is a first-class artefact: the
fast-forward data path (``mode="fast"``) exists precisely to push
cycle-accurate simulation to paper-scale grids.  This module defines the
on-disk record format (``benchmarks/BENCH_dataflow.json``) the perf
harness writes, so a later change that silently forfeits the speedup is
caught by comparing records.

Records capture wall time *and* the simulated work (cycles, cells), so
derived rates stay comparable across machines running at different
absolute speeds — a regression gate should compare *speedups* (fast over
exact on the same host), which the hardware scales out of.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import ConfigurationError

__all__ = ["BenchRecord", "BenchSuite", "load_suite", "speedup"]

#: Format version of the JSON files; bump on incompatible change.
#: v2: the dataflow suite's baseline became the forced-scalar exact run
#: and the single ``speedup`` context key split into ``speedup_fast``
#: and ``speedup_batched_exact``.
SCHEMA_VERSION = 2


@dataclass
class BenchRecord:
    """One timed simulation run."""

    name: str
    wall_seconds: float
    cycles: int
    cells: int = 0
    mode: str = "exact"
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.wall_seconds <= 0:
            raise ConfigurationError(
                f"record {self.name!r}: wall_seconds must be positive, "
                f"got {self.wall_seconds}"
            )

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per wall second — the engine's native rate."""
        return self.cycles / self.wall_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cycles": self.cycles,
            "cells": self.cells,
            "mode": self.mode,
            "cycles_per_second": round(self.cycles_per_second, 1),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchRecord":
        return cls(
            name=str(data["name"]),
            wall_seconds=float(data["wall_seconds"]),
            cycles=int(data["cycles"]),
            cells=int(data.get("cells", 0)),
            mode=str(data.get("mode", "exact")),
            extra=dict(data.get("extra", {})),
        )


def speedup(baseline: BenchRecord, candidate: BenchRecord) -> float:
    """Wall-time ratio baseline/candidate for the same simulated work.

    Both records must describe the same machine run (equal cycle counts);
    comparing different workloads as a "speedup" is a category error and
    raises.
    """
    if baseline.cycles != candidate.cycles:
        raise ConfigurationError(
            f"cannot compare {baseline.name!r} ({baseline.cycles} cycles) "
            f"with {candidate.name!r} ({candidate.cycles} cycles): not the "
            f"same simulated work"
        )
    for record in (baseline, candidate):
        # Records validate on construction, but they are mutable and may
        # arrive hand-built; a zero/negative wall time would make the
        # ratio infinite or sign-flipped rather than fail loudly.
        if record.wall_seconds <= 0:
            raise ValueError(
                f"record {record.name!r}: wall_seconds must be positive "
                f"to form a speedup, got {record.wall_seconds}"
            )
    return baseline.wall_seconds / candidate.wall_seconds


@dataclass
class BenchSuite:
    """A set of records plus the context they were taken in."""

    records: list[BenchRecord] = field(default_factory=list)
    context: dict[str, Any] = field(default_factory=dict)

    def add(self, record: BenchRecord) -> None:
        self.records.append(record)

    def find(self, name: str) -> BenchRecord:
        for record in self.records:
            if record.name == name:
                return record
        raise ConfigurationError(f"no benchmark record named {name!r}")

    def to_dict(self) -> dict[str, Any]:
        """The on-disk payload (schema + context + records)."""
        return {
            "schema": SCHEMA_VERSION,
            "context": dict(self.context),
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchSuite":
        if data.get("schema") != SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported benchmark schema {data.get('schema')!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        return cls(
            records=[BenchRecord.from_dict(r)
                     for r in data.get("records", ())],
            context=dict(data.get("context", {})),
        )

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def load_suite(path: str | pathlib.Path) -> BenchSuite:
    data = json.loads(pathlib.Path(path).read_text())
    try:
        return BenchSuite.from_dict(data)
    except ConfigurationError as error:
        raise ConfigurationError(f"{path}: {error}") from error


def render_table(records: Iterable[BenchRecord]) -> str:
    """Fixed-width text table of a record set (for benchmark logs)."""
    rows = [("name", "mode", "cycles", "wall [s]", "Mcycles/s")]
    for r in records:
        rows.append((r.name, r.mode, str(r.cycles),
                     f"{r.wall_seconds:.3f}",
                     f"{r.cycles_per_second / 1e6:.3f}"))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)
