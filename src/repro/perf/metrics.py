"""Metric containers and paper-comparison helpers.

:class:`KernelMetrics` is the row type every experiment produces;
:func:`compare_to_paper` annotates a measured value with its deviation
from the paper's published figure, which EXPERIMENTS.md records for every
table and figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["KernelMetrics", "PaperComparison", "compare_to_paper"]


@dataclass(frozen=True)
class KernelMetrics:
    """One measured (simulated) performance point."""

    device: str
    grid_cells: int
    gflops: float
    runtime_seconds: float
    watts: float | None = None
    memory: str | None = None
    num_kernels: int | None = None
    percent_theoretical: float | None = None

    def __post_init__(self) -> None:
        if self.gflops < 0 or self.runtime_seconds < 0:
            raise ConfigurationError("metrics must be non-negative")

    @property
    def gflops_per_watt(self) -> float | None:
        if self.watts is None or self.watts <= 0:
            return None
        return self.gflops / self.watts


@dataclass(frozen=True)
class PaperComparison:
    """A measured value next to the paper's published figure.

    ``kind`` distinguishes *quantitative* comparisons (the paper printed
    a number; deviation is meaningful) from *ordering* claims (the paper
    only asserts a direction, e.g. "the Stratix outperforms the U280
    here": the reference value is a threshold and any measured value at
    or beyond it reproduces the claim).
    """

    label: str
    measured: float
    paper: float
    kind: str = "quantitative"  # "quantitative" | "ordering"

    def __post_init__(self) -> None:
        if self.kind not in ("quantitative", "ordering"):
            raise ConfigurationError(f"unknown comparison kind {self.kind!r}")

    @property
    def ratio(self) -> float:
        """measured / paper (1.0 = exact reproduction)."""
        if self.paper == 0:
            raise ConfigurationError(
                f"{self.label}: paper value is zero; ratio undefined"
            )
        return self.measured / self.paper

    @property
    def percent_error(self) -> float:
        return 100.0 * (self.ratio - 1.0)

    @property
    def holds(self) -> bool:
        """For ordering claims: is the threshold met?"""
        return self.measured >= self.paper

    def within(self, tolerance_percent: float) -> bool:
        """True if the claim reproduces.

        Quantitative: deviation inside ``tolerance_percent``.  Ordering:
        the threshold is met (exceeding it is success, not error).
        """
        if self.kind == "ordering":
            return self.holds
        return abs(self.percent_error) <= tolerance_percent

    def __str__(self) -> str:
        if self.kind == "ordering":
            status = "holds" if self.holds else "VIOLATED"
            return (
                f"{self.label}: measured {self.measured:.3g} vs threshold "
                f"{self.paper:.3g} ({status})"
            )
        return (
            f"{self.label}: measured {self.measured:.3g} vs paper "
            f"{self.paper:.3g} ({self.percent_error:+.1f}%)"
        )


def compare_to_paper(label: str, measured: float, paper: float, *,
                     kind: str = "quantitative") -> PaperComparison:
    """Pair a measured value with the paper's published one."""
    return PaperComparison(label=label, measured=measured, paper=paper,
                           kind=kind)
