"""Calibration registry: which paper measurement pins down which constant.

Every effective-throughput constant in :mod:`repro.hardware.devices` is
derived from a published number in the paper; this module records those
derivations as data so that (a) readers can audit them and (b) the test
suite can re-verify that the models still land on the paper's figures.

Derivation sketch for the memory constants (the non-obvious ones):

    Table I gives the single-kernel Alveo U280 HBM2 figure: 14.50 GFLOPS
    at 16M cells.  One invocation executes 1.0549 GFLOP (paper FLOP
    convention), so the invocation takes 72.75 ms.  The cycle model puts
    the pipeline itself at 57.9 ms (II=1 at 300 MHz including halo and
    chunk overheads), so the kernel is memory-bound; the invocation
    streams 818.6 MB against HBM2 (24 B/cell read including halo re-reads
    + 24 B/cell written), giving a sustained per-kernel HBM2 rate of
    ~11.4 GB/s.  The DDR rate (8.2 GB/s) follows identically from Table
    II's 10.43 GFLOPS, and the Stratix 10 rate (16.4 GB/s) from Table I's
    20.8 GFLOPS at 398 MHz.

The PCIe and power constants are pinned by the qualitative measurements
of Section IV (synchronous transfers 2x slower on the U280; Stratix power
~1.5x the Alveo; +12 W moving the U280 from HBM2 to DDR; the Fig. 6/8
orderings) — see DESIGN.md section 6.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CalibrationEntry", "CALIBRATION", "paper_value"]


@dataclass(frozen=True)
class CalibrationEntry:
    """One published measurement used to pin model constants."""

    key: str
    paper_value: float
    unit: str
    source: str
    pins: str  # which model constant(s) this measurement determines


#: The paper's published measurements, keyed for the experiments/tests.
CALIBRATION: dict[str, CalibrationEntry] = {
    entry.key: entry
    for entry in [
        # ---- Table I: kernel-only performance, 16M cells ----------------
        CalibrationEntry(
            "table1.cpu_1core_gflops", 2.09, "GFLOPS", "Table I",
            pins="CPUModel.gflops_per_core",
        ),
        CalibrationEntry(
            "table1.cpu_24core_gflops", 15.2, "GFLOPS", "Table I",
            pins="CPUModel.memory_roofline_gflops",
        ),
        CalibrationEntry(
            "table1.v100_gflops", 367.2, "GFLOPS", "Table I",
            pins="GPUModel.kernel_gflops",
        ),
        CalibrationEntry(
            "table1.u280_gflops", 14.50, "GFLOPS", "Table I",
            pins="ALVEO_U280 hbm2 per_kernel_bandwidth (11.43 GB/s)",
        ),
        CalibrationEntry(
            "table1.stratix_gflops", 20.8, "GFLOPS", "Table I",
            pins="STRATIX10 ddr per_kernel_bandwidth (16.4 GB/s)",
        ),
        CalibrationEntry(
            "table1.u280_pct_theoretical", 77.0, "%", "Table I",
            pins="consistency check of the 18.86 GFLOPS peak",
        ),
        CalibrationEntry(
            "table1.stratix_pct_theoretical", 83.0, "%", "Table I",
            pins="consistency check of the 25.02 GFLOPS peak",
        ),
        # ---- Theoretical peaks (Section III) -----------------------------
        CalibrationEntry(
            "theory.u280_peak_gflops", 18.86, "GFLOPS", "Section III",
            pins="constants.average_ops_per_cycle x 300 MHz",
        ),
        CalibrationEntry(
            "theory.stratix_peak_gflops", 25.02, "GFLOPS", "Section III",
            pins="constants.average_ops_per_cycle x 398 MHz",
        ),
        # ---- Table II: HBM2 vs DDR on the U280 ---------------------------
        CalibrationEntry(
            "table2.hbm2_16m_gflops", 14.52, "GFLOPS", "Table II",
            pins="same constant as table1.u280_gflops",
        ),
        CalibrationEntry(
            "table2.ddr_16m_gflops", 10.43, "GFLOPS", "Table II",
            pins="ALVEO_U280 ddr per_kernel_bandwidth (8.22 GB/s)",
        ),
        CalibrationEntry(
            "table2.hbm2_1m_gflops", 12.98, "GFLOPS", "Table II",
            pins="FPGADevice.launch_overhead_s",
        ),
        CalibrationEntry(
            "table2.ddr_overhead_16m_pct", 39.0, "%", "Table II",
            pins="HBM2/DDR bandwidth ratio",
        ),
        # ---- Section IV: multi-kernel structure ---------------------------
        CalibrationEntry(
            "multi.u280_kernels", 6, "kernels", "Section IV",
            pins="resources.estimate_kernel_resources (xilinx) + shell",
        ),
        CalibrationEntry(
            "multi.stratix_kernels", 5, "kernels", "Section IV",
            pins="resources.estimate_kernel_resources (intel) + shell",
        ),
        CalibrationEntry(
            "multi.stratix_multi_clock_mhz", 250.0, "MHz", "Section IV",
            pins="STRATIX10 ClockModel table",
        ),
        CalibrationEntry(
            "multi.u280_clock_mhz", 300.0, "MHz", "Sections III-IV",
            pins="ALVEO_U280 ClockModel (constant)",
        ),
        # ---- Fig. 5: transfers without overlap -----------------------------
        CalibrationEntry(
            "fig5.u280_transfer_slowdown", 2.0, "x", "Fig. 5 discussion",
            pins="PCIe synchronous_bandwidth ratio (2.8 vs 5.6 GB/s)",
        ),
        CalibrationEntry(
            "fig5.transfer_16m_bytes", 800e6, "bytes", "Section IV",
            pins="6 fields x 8 B x 16M cells sanity check",
        ),
        # ---- Fig. 7: power ---------------------------------------------------
        CalibrationEntry(
            "fig7.stratix_over_alveo_power", 1.5, "x", "Fig. 7 discussion",
            pins="PowerModel static/dynamic terms of both FPGAs",
        ),
        CalibrationEntry(
            "fig7.u280_ddr_power_delta", 12.0, "W", "Fig. 7 discussion",
            pins="ALVEO_U280 memory_watts (ddr - hbm2)",
        ),
    ]
}


def paper_value(key: str) -> float:
    """The paper's published value for a calibration key."""
    try:
        return CALIBRATION[key].paper_value
    except KeyError:
        raise KeyError(
            f"unknown calibration key {key!r}; known: {sorted(CALIBRATION)}"
        ) from None
