"""Theoretical peak performance of the dataflow design.

Section III: "Each advection stage usually contains twenty one floating
point operations.  Given an initiation interval of one, our design means
that per cycle there are usually 63 floating point operations that can run
concurrently (but for the column top grid cell this reduces to 55
operations).  Multiplying the clock frequency by this number provides a
theoretical best performance."

With the MONC default column height of 64 this gives 18.86 GFLOPS at the
Alveo's 300 MHz and 25.02 at the Stratix 10's single-kernel 398 MHz — the
two numbers the paper quotes, which these functions reproduce exactly.
"""

from __future__ import annotations

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["theoretical_gflops", "percent_of_theoretical"]


def theoretical_gflops(clock_mhz: float, *,
                       column_height: int = constants.DEFAULT_COLUMN_HEIGHT,
                       num_kernels: int = 1) -> float:
    """Best-case GFLOPS of ``num_kernels`` II=1 kernels at ``clock_mhz``."""
    if clock_mhz <= 0:
        raise ConfigurationError(f"clock must be positive, got {clock_mhz}")
    if num_kernels < 1:
        raise ConfigurationError(
            f"num_kernels must be >= 1, got {num_kernels}"
        )
    ops_per_cycle = constants.average_ops_per_cycle(column_height)
    return num_kernels * ops_per_cycle * clock_mhz * 1e6 / 1e9


def percent_of_theoretical(achieved_gflops: float, clock_mhz: float, *,
                           column_height: int = constants.DEFAULT_COLUMN_HEIGHT,
                           num_kernels: int = 1) -> float:
    """Achieved performance as a percentage of the theoretical peak.

    The paper reports 77% for the single Alveo kernel on HBM2 and 83% for
    the Stratix 10; "quantifying how far kernels fall short of this figure
    can determine how much more opportunity there is for further kernel
    level optimisation".
    """
    if achieved_gflops < 0:
        raise ConfigurationError(
            f"achieved GFLOPS must be >= 0, got {achieved_gflops}"
        )
    peak = theoretical_gflops(clock_mhz, column_height=column_height,
                              num_kernels=num_kernels)
    return 100.0 * achieved_gflops / peak
