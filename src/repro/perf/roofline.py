"""Roofline helpers for the advection kernel.

The PW kernel moves 48 bytes per cell over PCIe (24 in, 24 out) and
executes ~63 double-precision operations per cell, so its end-to-end
arithmetic intensity is ~1.31 FLOP/byte — low enough that every
accelerator in the study is transfer-bound end to end, which is the whole
story of Figs. 5 and 6.  These helpers make that reasoning executable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["arithmetic_intensity", "roofline_gflops", "RooflinePoint"]


def arithmetic_intensity(*, column_height: int = constants.DEFAULT_COLUMN_HEIGHT,
                         bytes_per_cell: float = 48.0) -> float:
    """FLOPs per byte of traffic for the advection kernel.

    ``bytes_per_cell`` defaults to the PCIe round trip (six float64 values
    per cell); pass 24 for a one-directional (duplex-overlapped) view or
    the device-memory traffic of interest.
    """
    if bytes_per_cell <= 0:
        raise ConfigurationError(
            f"bytes_per_cell must be positive, got {bytes_per_cell}"
        )
    return constants.average_ops_per_cycle(column_height) / bytes_per_cell


def roofline_gflops(*, compute_peak_gflops: float, bandwidth_gbs: float,
                    intensity: float) -> float:
    """Attainable GFLOPS under the classic roofline model."""
    if compute_peak_gflops <= 0 or bandwidth_gbs <= 0 or intensity <= 0:
        raise ConfigurationError("roofline inputs must be positive")
    return min(compute_peak_gflops, bandwidth_gbs * intensity)


@dataclass(frozen=True)
class RooflinePoint:
    """A device placed on the advection kernel's roofline."""

    device: str
    compute_peak_gflops: float
    bandwidth_gbs: float
    intensity: float

    @property
    def attainable_gflops(self) -> float:
        return roofline_gflops(
            compute_peak_gflops=self.compute_peak_gflops,
            bandwidth_gbs=self.bandwidth_gbs,
            intensity=self.intensity,
        )

    @property
    def bandwidth_bound(self) -> bool:
        return self.attainable_gflops < self.compute_peak_gflops
