"""Channel-occupancy and deadlock prover.

Two abstract runs of the same graph (:func:`repro.analyze.interp.interpret`)
prove everything this module claims:

* the **unbounded** run treats every FIFO as infinitely deep.  Its
  per-stream high-water mark is the minimal stall-free depth: give every
  FIFO at least that depth and, by induction over cycles, the bounded
  machine replays the unbounded trajectory decision for decision (no
  push ever fails), so no producer ever blocks.
* the **bounded** run uses the configured depths.  A stream stalls its
  producer iff its depth is below the minimal stall-free depth; the run's
  proved steady-state period (:class:`~repro.analyze.interp.PeriodProof`)
  then tells whether the stalls merely cost transient cycles or collapse
  the sustained rate below the graph's ideal period (``max`` stage II).

For unit-rate graphs a structurally valid DAG can never hard-deadlock:
every dependency cycle closes through a FIFO's free slots or a stage
pipeline's slack, each carrying at least one token of marking (the
marked-graph liveness condition).  The prover therefore returns either a
constructive completion proof — the bounded run quiesces — or, should the
engine's no-progress guard ever trip, a concrete
:class:`~repro.analyze.interp.StallWitness`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.dataflow.graph import DataflowGraph
from repro.analyze.interp import (InterpRun, PeriodProof, StallWitness,
                                  default_tokens, interpret)

__all__ = ["StreamProof", "OccupancyProof", "build_occupancy_proof",
           "prove_occupancy", "OVERPROVISION_SLACK"]

#: Depth headroom above the minimal stall-free depth tolerated before a
#: FIFO is called overprovisioned (BRAM-backed FIFOs round up anyway).
OVERPROVISION_SLACK: int = 4


@dataclass(frozen=True)
class StreamProof:
    """Proved occupancy facts about one FIFO.

    ``min_safe`` is the minimal stall-free depth (the unbounded run's
    high-water mark); ``high_water`` and ``full_stalls`` come from the
    bounded run under the configured ``depth``.
    """

    name: str
    depth: int
    min_safe: int
    high_water: int
    full_stalls: int

    @property
    def verdict(self) -> str:
        if self.depth < self.min_safe:
            return "under"
        if self.depth == self.min_safe:
            return "exact"
        if self.depth <= self.min_safe + OVERPROVISION_SLACK:
            return "ok"
        return "over"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "depth": self.depth,
            "min_safe": self.min_safe,
            "high_water": self.high_water,
            "full_stalls": self.full_stalls,
            "verdict": self.verdict,
        }


@dataclass(frozen=True)
class OccupancyProof:
    """The prover's verdict on a whole graph.

    ``safe`` means the bounded abstract run completed (constructive
    deadlock-freedom); ``stall_free`` that no producer ever blocked;
    ``throughput_collapsed`` that the proved steady-state period is worse
    than the graph's ideal period, i.e. the configured depths throttle
    the sustained rate, not just the transient.
    """

    graph_name: str
    tokens: int
    bounded_cycles: int
    unbounded_cycles: int
    ideal_period: int
    deadlock: StallWitness | None = None
    first_stall: StallWitness | None = None
    period: PeriodProof | None = None
    streams: dict[str, StreamProof] = field(default_factory=dict)

    @property
    def safe(self) -> bool:
        return self.deadlock is None

    @property
    def stall_free(self) -> bool:
        return all(s.full_stalls == 0 for s in self.streams.values())

    @property
    def overhead_cycles(self) -> int:
        """Cycles lost to under-depth FIFOs (bounded minus unbounded)."""
        return self.bounded_cycles - self.unbounded_cycles

    @property
    def throughput_collapsed(self) -> bool:
        if self.period is None or self.period.tokens_per_period == 0:
            return False
        return (self.period.cycles
                > self.ideal_period * self.period.tokens_per_period)

    @property
    def witness(self) -> StallWitness | None:
        """The strongest concrete witness available (deadlock first)."""
        return self.deadlock or self.first_stall

    def minimal_depths(self) -> dict[str, int]:
        """Minimal stall-free depth per stream (the ``--fix-depths`` map)."""
        return {name: max(1, proof.min_safe)
                for name, proof in sorted(self.streams.items())}

    def to_dict(self) -> dict[str, Any]:
        return {
            "graph": self.graph_name,
            "tokens": self.tokens,
            "safe": self.safe,
            "stall_free": self.stall_free,
            "throughput_collapsed": self.throughput_collapsed,
            "bounded_cycles": self.bounded_cycles,
            "unbounded_cycles": self.unbounded_cycles,
            "overhead_cycles": self.overhead_cycles,
            "ideal_period": self.ideal_period,
            "deadlock": self.deadlock.to_dict() if self.deadlock else None,
            "first_stall": (self.first_stall.to_dict()
                            if self.first_stall else None),
            "period": self.period.to_dict() if self.period else None,
            "streams": {name: self.streams[name].to_dict()
                        for name in sorted(self.streams)},
            "minimal_depths": self.minimal_depths(),
        }


def build_occupancy_proof(graph: DataflowGraph, bounded: InterpRun,
                          unbounded: InterpRun) -> OccupancyProof:
    """Assemble the proof object from one bounded + one unbounded run."""
    depths = {stream.name: stream.depth for stream in graph.streams}
    full_stalls = bounded.stream_full_stalls
    streams = {
        name: StreamProof(
            name=name,
            depth=depth,
            min_safe=max(1, unbounded.stream_high_water.get(name, 0)),
            high_water=bounded.stream_high_water.get(name, 0),
            full_stalls=full_stalls.get(name, 0),
        )
        for name, depth in depths.items()
    }
    return OccupancyProof(
        graph_name=graph.name,
        tokens=bounded.tokens,
        bounded_cycles=bounded.cycles,
        unbounded_cycles=unbounded.cycles,
        ideal_period=max((stage.ii for stage in graph.stages), default=1),
        deadlock=bounded.deadlock,
        first_stall=bounded.first_stall,
        period=bounded.period,
        streams=streams,
    )


def prove_occupancy(graph: DataflowGraph, tokens: int | None = None, *,
                    stall_grace: int | None = None) -> OccupancyProof:
    """Run the prover end to end on ``graph``.

    Convenience wrapper over two :func:`interpret` calls; use
    :func:`repro.analyze.report.analyze_graph` to share those runs with
    the schedule analyzer.
    """
    if tokens is None:
        tokens = default_tokens(graph)
    unbounded = interpret(graph, tokens, bounded=False)
    bounded = interpret(graph, tokens, stall_grace=stall_grace)
    return build_occupancy_proof(graph, bounded, unbounded)
