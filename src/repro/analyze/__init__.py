"""Static dataflow verification: proofs about a graph without running it.

The package abstract-interprets a :class:`~repro.dataflow.graph.DataflowGraph`
over its control plane (:mod:`repro.analyze.interp`), proves FIFO
occupancy bounds, minimal stall-free depths and deadlock-freedom
(:mod:`repro.analyze.occupancy`), derives the static schedule — start
cycles, prime latency, steady-state period, total-cycle bounds
(:mod:`repro.analyze.schedule`) — and bundles everything into one
:class:`~repro.analyze.report.AnalysisReport` consumed by the SA lint
rules, the ``repro analyze`` CLI, the fast engine mode and the tuner's
cost model.  :mod:`repro.analyze.twin` builds the runnable token twin
used to cross-check every claim against the exact engine.
"""

from repro.analyze.interp import (InterpRun, PeriodProof, StallWitness,
                                  default_tokens, interpret)
from repro.analyze.kernel import static_kernel_cycles
from repro.analyze.occupancy import (OccupancyProof, StreamProof,
                                     build_occupancy_proof, prove_occupancy)
from repro.analyze.report import (AnalysisReport, analyze_graph,
                                  patch_spec_depths)
from repro.analyze.schedule import (StageTiming, StaticSchedule,
                                    analyze_schedule, build_schedule,
                                    start_cycles)
from repro.analyze.twin import build_token_twin

__all__ = [
    "AnalysisReport",
    "InterpRun",
    "OccupancyProof",
    "PeriodProof",
    "StageTiming",
    "StallWitness",
    "StaticSchedule",
    "StreamProof",
    "analyze_graph",
    "analyze_schedule",
    "build_occupancy_proof",
    "build_schedule",
    "build_token_twin",
    "default_tokens",
    "interpret",
    "patch_spec_depths",
    "prove_occupancy",
    "start_cycles",
    "static_kernel_cycles",
]
