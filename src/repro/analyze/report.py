"""Top-level analysis report: one object per graph, shared proof runs.

:func:`analyze_graph` performs the two abstract runs (bounded and
unbounded) exactly once and feeds both the occupancy prover and the
schedule analyzer from them; the SA lint rules, the ``repro analyze``
CLI and ``repro.tune``'s cost model all consume this one report.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Mapping

from repro.dataflow.graph import DataflowGraph
from repro.analyze.interp import default_tokens, interpret
from repro.analyze.occupancy import OccupancyProof, build_occupancy_proof
from repro.analyze.schedule import StaticSchedule, build_schedule

__all__ = ["AnalysisReport", "analyze_graph", "patch_spec_depths"]


@dataclass(frozen=True)
class AnalysisReport:
    """Everything the static verifier proved about one graph."""

    graph_name: str
    tokens: int
    occupancy: OccupancyProof
    schedule: StaticSchedule

    @property
    def safe(self) -> bool:
        return self.occupancy.safe

    @property
    def ok(self) -> bool:
        """Deadlock-free and sustaining the ideal steady-state rate."""
        return self.safe and not self.occupancy.throughput_collapsed

    def to_dict(self) -> dict[str, Any]:
        return {
            "graph": self.graph_name,
            "tokens": self.tokens,
            "ok": self.ok,
            "safe": self.safe,
            "occupancy": self.occupancy.to_dict(),
            "schedule": self.schedule.to_dict(),
        }

    def render_text(self) -> str:
        occ, sched = self.occupancy, self.schedule
        if not self.safe:
            verdict = "DEADLOCK"
        elif occ.throughput_collapsed:
            verdict = "throughput collapse (proved)"
        elif occ.stall_free:
            verdict = "deadlock-free (proved), stall-free"
        else:
            verdict = "deadlock-free (proved), transient stalls"
        lines = [
            f"graph {self.graph_name!r} (tokens={self.tokens})",
            f"  verdict: {verdict}",
            f"  prime latency {sched.prime_latency}, "
            f"ideal period {sched.ideal_period}",
        ]
        if occ.period is not None:
            lines.append(
                f"  proved period: {occ.period.cycles} cycle(s) / "
                f"{occ.period.tokens_per_period} token(s)"
            )
        lines.append(
            f"  total cycles {sched.total_cycles} "
            f"(analytic {sched.analytic_total}, "
            f"stall overhead {sched.stall_overhead})"
        )
        witness = occ.witness
        if witness is not None and (not self.ok or not occ.stall_free):
            lines.append(f"  witness: {witness.describe()}")
        lines.append("  streams:")
        for name in sorted(occ.streams):
            proof = occ.streams[name]
            lines.append(
                f"    {name}: depth {proof.depth}, "
                f"min_safe {proof.min_safe}, "
                f"high water {proof.high_water}, "
                f"full stalls {proof.full_stalls} [{proof.verdict}]"
            )
        return "\n".join(lines)


def analyze_graph(graph: DataflowGraph, tokens: int | None = None, *,
                  stall_grace: int | None = None) -> AnalysisReport:
    """Statically analyze ``graph``: occupancy proof + schedule."""
    if tokens is None:
        tokens = default_tokens(graph)
    unbounded = interpret(graph, tokens, bounded=False)
    bounded = interpret(graph, tokens, stall_grace=stall_grace)
    return AnalysisReport(
        graph_name=graph.name,
        tokens=tokens,
        occupancy=build_occupancy_proof(graph, bounded, unbounded),
        schedule=build_schedule(graph, bounded),
    )


def patch_spec_depths(spec: Mapping[str, Any],
                      depths: Mapping[str, int]) -> dict[str, Any]:
    """A copy of design-spec ``spec`` with FIFO depths set to ``depths``.

    Explicit graphs get per-stream ``depth`` entries (streams are matched
    by explicit name or the derived ``"src->dst"`` endpoint name); the
    derived advection graph carries one scalar ``kernel.stream_depth``,
    which is raised to the largest minimal depth.
    """
    patched = copy.deepcopy(dict(spec))
    graph_spec = patched.get("graph")
    if isinstance(graph_spec, Mapping) and "streams" in graph_spec:
        for entry in patched["graph"].get("streams", ()):
            if not isinstance(entry, dict):
                continue
            name = str(entry.get(
                "name", f"{entry.get('src', '')}->{entry.get('dst', '')}"))
            if name in depths:
                entry["depth"] = depths[name]
    elif depths:
        kernel = patched.setdefault("kernel", {})
        if isinstance(kernel, dict):
            kernel["stream_depth"] = max(depths.values())
    return patched
