"""Executable token twin of a structural graph.

The analyzer's claims are only worth anything if they can be checked
against the machine they model.  :func:`build_token_twin` turns any
structural :class:`~repro.dataflow.graph.DataflowGraph` (e.g. the
:class:`~repro.lint.spec.SpecStage` graphs loaded from design specs) into
a *runnable* graph with identical names, port order, IIs, latencies and
FIFO depths, whose stages move opaque tokens under exactly the unit-rate
relay semantics the interpreter assumes.  Running it through
:class:`~repro.dataflow.engine.DataflowEngine` in exact mode must then
reproduce the interpreter's cycle counts byte for byte — the
cross-verification behind ``repro analyze --check`` and the golden tests.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.dataflow.bulk import Bulk, FireBulkResult, ListBulk, \
    UniformFireResult
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import Stage
from repro.errors import DataflowError

__all__ = ["TokenSource", "RelayStage", "build_token_twin"]

#: The one opaque value every twin token carries.
_TOKEN: Any = object()


class TokenSource(Stage):
    """Emits ``count`` tokens on every declared output port.

    The control-state shape follows :class:`~repro.dataflow.stage.ConstStage`
    (a remaining counter, ``remaining > 0`` folded into the fast-forward
    signature) generalised to arbitrary output ports.
    """

    def __init__(self, name: str, count: int, *,
                 outputs: tuple[str, ...] = ("out",), ii: int = 1,
                 latency: int = 1) -> None:
        super().__init__(name, ii=ii, latency=latency)
        if count < 0:
            raise DataflowError(
                f"source {name!r}: token count must be >= 0, got {count}"
            )
        self.output_ports = tuple(outputs)
        self._shape = tuple((port, 1) for port in self.output_ports)
        self._remaining = count

    def exhausted(self) -> bool:
        return self._remaining <= 0

    def _try_fire(self, cycle: int) -> bool:
        if cycle < self._next_fire_cycle:
            self.stats.ii_waits += 1
            return False
        if len(self._pipeline) >= self.latency:
            self.stats.pipeline_full_stalls += 1
            return False
        if self._remaining <= 0:
            return False
        self._remaining -= 1
        self.stats.fires += 1
        self._next_fire_cycle = cycle + self.ii
        self._pipeline.append((
            cycle + self.latency,
            {port: [_TOKEN] for port in self.output_ports},
            self._shape,
        ))
        return True

    def ff_signature(self, cycle: int) -> tuple | None:
        base = super().ff_signature(cycle)
        return base + (self._remaining > 0,) if base is not None else None

    def ff_fire_capacity(self, want: int) -> int:
        return min(want, self._remaining)

    def fire_bulk(self, count: int, inputs: Mapping[str, Bulk],
                  cycle: int) -> FireBulkResult:
        if count > self._remaining:
            raise DataflowError(
                f"source {self.name!r}: fast-forward wants {count} tokens, "
                f"only {self._remaining} remain"
            )
        self._remaining -= count
        return UniformFireResult({port: ListBulk([_TOKEN] * count)
                                  for port in self.output_ports})

    def fire(self, cycle: int, inputs: Mapping[str, list[Any]]
             ) -> Mapping[str, list[Any]]:  # pragma: no cover - never called
        raise DataflowError("TokenSource.fire should never be called")


class RelayStage(Stage):
    """Unit-rate relay: one token in per input port, one out per output.

    With no output ports it degenerates to a sink (consume without
    producing), matching :class:`~repro.dataflow.stage.SinkStage`'s
    timing exactly.
    """

    def __init__(self, name: str, *, inputs: tuple[str, ...],
                 outputs: tuple[str, ...] = (), ii: int = 1,
                 latency: int = 1) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self.input_ports = tuple(inputs)
        self.output_ports = tuple(outputs)

    def fire(self, cycle: int, inputs: Mapping[str, list[Any]]
             ) -> Mapping[str, list[Any]]:
        return {port: [_TOKEN] for port in self.output_ports}


def build_token_twin(graph: DataflowGraph, tokens: int) -> DataflowGraph:
    """An engine-runnable twin of ``graph`` feeding ``tokens`` per source.

    Same stage names, port order, IIs, latencies, stream names and
    depths; input-less stages become :class:`TokenSource`, everything
    else a :class:`RelayStage`.
    """
    twin = DataflowGraph(graph.name)
    for stage in graph.stages:
        if not stage.input_ports:
            twin.add(TokenSource(
                stage.name, tokens if stage.output_ports else 0,
                outputs=stage.output_ports,
                ii=stage.ii, latency=stage.latency,
            ))
        else:
            twin.add(RelayStage(
                stage.name, inputs=stage.input_ports,
                outputs=stage.output_ports,
                ii=stage.ii, latency=stage.latency,
            ))
    for conn in graph.connections():
        twin.connect(conn.src.name, conn.src_port, conn.dst.name,
                     conn.dst_port, depth=conn.stream.depth,
                     name=conn.stream.name)
    return twin
