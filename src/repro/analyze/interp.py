"""Abstract interpretation of a dataflow graph over its control plane.

The cycle engine (:mod:`repro.dataflow.engine`) simulates *data*: every
firing calls ``Stage.fire`` and items physically traverse the FIFOs.  For
the class of graphs the paper builds — unit-rate stages whose firing
counts never depend on data values — the *control* trajectory (pipeline
fill, II timers, FIFO occupancies) is fully determined by the graph's
structure.  This module executes exactly that trajectory, token by token,
without touching a single data value:

* every input-less stage is a **token source** emitting ``tokens`` items;
* every other stage is a **unit-rate relay**: one item consumed per input
  port, one produced per output port (none for sinks), after ``latency``
  cycles and at most once per ``ii`` cycles;
* retire-then-fire ordering, stall attribution, deadlock grace, and the
  quiescence rule mirror the engine's semantics statement for statement,
  so on such graphs the cycle counts agree **byte for byte** (asserted in
  the test suite against :class:`~repro.dataflow.engine.DataflowEngine`
  exact mode).

Periodicity makes this *static* rather than merely cheap: the interpreter
fingerprints its control state each cycle, and when a fingerprint recurs
``P`` cycles later the system is provably periodic (a deterministic
machine revisiting a state replays it exactly).  Whole periods are then
advanced analytically, so the cost is O(transient + period + drain) —
independent of the token count.  The same mechanism yields the
steady-state period proof consumed by :mod:`repro.analyze.schedule` and
the worst-case occupancy bound consumed by :mod:`repro.analyze.occupancy`
(run with ``bounded=False`` the FIFOs are treated as infinite and the
per-stream high-water mark *is* the minimal stall-free depth).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import Stage
from repro.errors import AnalyzeError
from repro.lint.diagnostics import Severity

__all__ = ["StallWitness", "PeriodProof", "InterpRun", "interpret",
           "default_tokens"]

#: Distinct control states kept for periodicity detection; mirrors the
#: engine's ``_FF_TABLE_CAP`` rationale (bound memory on aperiodic runs).
_TABLE_CAP: int = 65_536


@dataclass(frozen=True)
class StallWitness:
    """A concrete stuck configuration observed by the interpreter.

    ``kind`` is ``"deadlock"`` when the engine's no-progress guard would
    raise at ``cycle`` (``stuck_since`` is the first silent cycle), or
    ``"backpressure"`` for the first cycle a producer blocked on a full
    FIFO (``stuck_since == cycle``).  ``streams`` snapshots every FIFO as
    ``name -> (occupancy, depth)`` and ``blocked`` explains, per stage,
    why it cannot progress at that cycle.
    """

    kind: str
    cycle: int
    stuck_since: int
    streams: dict[str, tuple[int, int]] = field(default_factory=dict)
    blocked: dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        parts = [f"{self.kind} witness at cycle {self.cycle}"]
        if self.stuck_since != self.cycle:
            parts[0] += f" (stuck since cycle {self.stuck_since})"
        for name in sorted(self.blocked):
            parts.append(f"{name}: {self.blocked[name]}")
        return "; ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "cycle": self.cycle,
            "stuck_since": self.stuck_since,
            "streams": {name: {"occupancy": occ, "depth": depth}
                        for name, (occ, depth) in sorted(self.streams.items())},
            "blocked": {name: self.blocked[name]
                        for name in sorted(self.blocked)},
        }


@dataclass(frozen=True)
class PeriodProof:
    """A proved steady-state recurrence of the control state.

    Between ``start_cycle`` and ``start_cycle + cycles`` the machine's
    complete control state repeated exactly; ``fires`` records each
    stage's firings per period.
    """

    start_cycle: int
    cycles: int
    fires: dict[str, int] = field(default_factory=dict)

    @property
    def tokens_per_period(self) -> int:
        """Items the steady state moves per period (max stage rate)."""
        return max(self.fires.values(), default=0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "start_cycle": self.start_cycle,
            "cycles": self.cycles,
            "tokens_per_period": self.tokens_per_period,
            "fires": {name: self.fires[name] for name in sorted(self.fires)},
        }


@dataclass(frozen=True)
class InterpRun:
    """Result of one abstract interpretation of a graph."""

    graph_name: str
    tokens: int
    bounded: bool
    #: Total cycles to quiescence (or to the deadlock guard tripping).
    cycles: int
    deadlock: StallWitness | None
    fires: dict[str, int] = field(default_factory=dict)
    stalls: dict[str, dict[str, int]] = field(default_factory=dict)
    stream_high_water: dict[str, int] = field(default_factory=dict)
    #: Producer blocks per stream (full-FIFO stalls), bounded runs only.
    stream_full_stalls: dict[str, int] = field(default_factory=dict)
    #: First cycle each stage fired (None: never fired).
    first_fire: dict[str, int | None] = field(default_factory=dict)
    period: PeriodProof | None = None
    #: First observed configuration where a producer blocked on a full
    #: FIFO and the FIFO stayed full through the end of the cycle.
    first_stall: StallWitness | None = None
    advances: int = 0
    advanced_cycles: int = 0

    @property
    def safe(self) -> bool:
        return self.deadlock is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "graph": self.graph_name,
            "tokens": self.tokens,
            "bounded": self.bounded,
            "cycles": self.cycles,
            "safe": self.safe,
            "deadlock": self.deadlock.to_dict() if self.deadlock else None,
            "fires": {name: self.fires[name] for name in sorted(self.fires)},
            "stalls": {name: dict(self.stalls[name])
                       for name in sorted(self.stalls)},
            "stream_high_water": {
                name: self.stream_high_water[name]
                for name in sorted(self.stream_high_water)
            },
            "stream_full_stalls": {
                name: self.stream_full_stalls[name]
                for name in sorted(self.stream_full_stalls)
            },
            "period": self.period.to_dict() if self.period else None,
            "first_stall": (self.first_stall.to_dict()
                            if self.first_stall else None),
        }


class _StreamState:
    """Occupancy counter standing in for one FIFO (no data)."""

    __slots__ = ("name", "depth", "occupancy", "pushes", "pops",
                 "full_stalls", "empty_stalls", "high_water")

    def __init__(self, name: str, depth: int | None) -> None:
        self.name = name
        #: None models an unbounded FIFO (occupancy-bound analysis).
        self.depth = depth
        self.occupancy = 0
        self.pushes = 0
        self.pops = 0
        self.full_stalls = 0
        self.empty_stalls = 0
        self.high_water = 0

    def can_push(self) -> bool:
        return self.depth is None or self.occupancy < self.depth

    def push(self) -> None:
        self.occupancy += 1
        self.pushes += 1
        if self.occupancy > self.high_water:
            self.high_water = self.occupancy


class _StageState:
    """Control state of one stage under the unit-rate relay abstraction."""

    __slots__ = ("name", "ii", "latency", "is_source", "inputs", "outputs",
                 "pipeline", "next_fire", "remaining", "fires", "retired",
                 "input_stalls", "output_stalls", "ii_waits",
                 "pipeline_full_stalls", "first_fire")

    def __init__(self, stage: Stage, tokens: int,
                 streams: dict[str, _StreamState]) -> None:
        self.name = stage.name
        self.ii = stage.ii
        self.latency = stage.latency
        self.is_source = not stage.input_ports
        self.inputs = [streams[stage.inputs[port].name]
                       for port in stage.input_ports]
        self.outputs = [streams[stage.outputs[port].name]
                        for port in stage.output_ports]
        #: Ready cycles of in-flight results, oldest first.
        self.pipeline: deque[int] = deque()
        self.next_fire = 0
        # An input-less stage with no outputs can never move a token; it
        # fires nothing (the engine's exhausted-and-portless guard).
        self.remaining = tokens if self.is_source and self.outputs else 0
        self.fires = 0
        self.retired = 0
        self.input_stalls = 0
        self.output_stalls = 0
        self.ii_waits = 0
        self.pipeline_full_stalls = 0
        self.first_fire: int | None = None

    # Mirrors Stage._retire + Stage._try_fire (and the SourceStage /
    # ConstStage fire override): same check order, same stall attribution,
    # so cycle counts and stall counters agree with the engine exactly.
    def tick(self, cycle: int) -> bool:
        progressed = False
        pipe = self.pipeline
        if pipe and pipe[0] <= cycle:
            full = None
            for stream in self.outputs:
                if not stream.can_push():
                    full = stream
                    break
            if full is not None:
                full.full_stalls += 1
                self.output_stalls += 1
            else:
                for stream in self.outputs:
                    stream.push()
                pipe.popleft()
                self.retired += 1
                progressed = True
        if cycle < self.next_fire:
            self.ii_waits += 1
        elif len(pipe) >= self.latency:
            self.pipeline_full_stalls += 1
        elif self.is_source:
            if self.remaining > 0:
                self.remaining -= 1
                self.fires += 1
                if self.first_fire is None:
                    self.first_fire = cycle
                self.next_fire = cycle + self.ii
                pipe.append(cycle + self.latency)
                progressed = True
        else:
            empty = None
            for stream in self.inputs:
                if stream.occupancy < 1:
                    empty = stream
                    break
            if empty is not None:
                empty.empty_stalls += 1
                self.input_stalls += 1
            else:
                for stream in self.inputs:
                    stream.occupancy -= 1
                    stream.pops += 1
                self.fires += 1
                if self.first_fire is None:
                    self.first_fire = cycle
                self.next_fire = cycle + self.ii
                if self.outputs:
                    # Sinks produce nothing; their firings never enter
                    # the pipeline (Stage._try_fire's `if produced:`).
                    pipe.append(cycle + self.latency)
                progressed = True
        return progressed

    def blocked_reason(self, cycle: int) -> str | None:
        """Why this stage makes no progress at ``cycle`` (None: idle)."""
        pipe = self.pipeline
        if pipe and pipe[0] <= cycle:
            for stream in self.outputs:
                if not stream.can_push():
                    return (f"cannot retire: stream {stream.name!r} full "
                            f"({stream.occupancy}/{stream.depth})")
        if cycle < self.next_fire:
            return None
        if pipe and len(pipe) >= self.latency:
            return "pipeline full behind a blocked exit"
        if self.is_source:
            return None
        for stream in self.inputs:
            if stream.occupancy < 1:
                return f"starved: stream {stream.name!r} empty"
        return None

    def signature(self, at_cycle: int) -> tuple[Any, ...]:
        """Clamped-offset control fingerprint (Stage.ff_signature's twin)."""
        wait = self.next_fire - at_cycle
        sig: tuple[Any, ...] = (
            wait if wait > 0 else 0,
            tuple(ready - at_cycle if ready > at_cycle else 0
                  for ready in self.pipeline),
        )
        if self.is_source:
            sig += (self.remaining > 0,)
        return sig

    def counters(self) -> tuple[int, int, int, int, int, int]:
        return (self.fires, self.retired, self.input_stalls,
                self.output_stalls, self.ii_waits, self.pipeline_full_stalls)


def default_tokens(graph: DataflowGraph) -> int:
    """A token count that provably reaches (and drains) steady state.

    Enough tokens to fill the deepest latency chain and every FIFO twice
    over: the control state is then periodic long before the sources run
    dry, so the proved period and the per-stream high-water marks are
    independent of the exact value (any larger count yields the same
    proofs — asserted in the property tests).
    """
    order = graph.topological_order()
    start = {stage.name: 0 for stage in order}
    preds: dict[str, list[tuple[str, int]]] = {}
    for conn in graph.connections():
        preds.setdefault(conn.dst.name, []).append(
            (conn.src.name, conn.src.latency))
    for stage in order:
        for src, latency in preds.get(stage.name, ()):
            start[stage.name] = max(start[stage.name], start[src] + latency)
    prime = max(start.values(), default=0)
    depth_sum = sum(stream.depth for stream in graph.streams)
    return max(16, 2 * prime + 2 * depth_sum + 16)


def _structural_guard(graph: DataflowGraph) -> None:
    errors = [d for d in graph.structural_diagnostics()
              if d.severity is Severity.ERROR]
    if errors:
        raise AnalyzeError(
            f"graph {graph.name!r} is not analyzable: "
            + "; ".join(f"{d.code} {d.message}" for d in errors)
        )


def interpret(graph: DataflowGraph, tokens: int | None = None, *,
              bounded: bool = True, accelerate: bool = True,
              stall_grace: int | None = None,
              max_cycles: int = 10_000_000) -> InterpRun:
    """Abstract-interpret ``graph`` feeding ``tokens`` items per source.

    Parameters
    ----------
    graph:
        Any structurally valid :class:`DataflowGraph`; only names, port
        order, ``ii``, ``latency`` and stream depths are read — the graph
        is never mutated and its stages are never fired.
    tokens:
        Items each source emits (default: :func:`default_tokens`).
    bounded:
        When False every FIFO is treated as infinitely deep; the
        per-stream high-water marks of that run are the minimal
        stall-free depths (no deadlock is possible).
    accelerate:
        Periodicity acceleration (identical results either way; the
        exact-vs-accelerated equivalence is property-tested).
    stall_grace:
        Silent cycles tolerated before declaring deadlock, mirroring
        ``DataflowEngine(stall_grace=...)``; the default is the engine's
        (``max ii + max latency + 1``).
    """
    _structural_guard(graph)
    if tokens is None:
        tokens = default_tokens(graph)
    if tokens < 0:
        raise AnalyzeError(f"tokens must be >= 0, got {tokens}")
    order = graph.topological_order()
    streams = {
        stream.name: _StreamState(stream.name,
                                  stream.depth if bounded else None)
        for stream in graph.streams
    }
    states = [_StageState(stage, tokens, streams) for stage in order]
    stream_list = list(streams.values())
    sources = [st for st in states if st.is_source]
    if stall_grace is not None:
        grace = stall_grace
    else:
        grace = (max(st.ii for st in states)
                 + max(st.latency for st in states) + 1)

    seen: dict[tuple[Any, ...], tuple[int, tuple[Any, ...]]] = {}
    accel_on = accelerate
    period_proof: PeriodProof | None = None
    advances = 0
    advanced_cycles = 0
    deadlock: StallWitness | None = None
    first_stall: StallWitness | None = None
    full_stalls_seen = 0

    def quiescent() -> bool:
        return (all(not st.pipeline for st in states)
                and all(s.occupancy == 0 for s in stream_list)
                and all(st.remaining <= 0 for st in sources))

    def machine_signature(at_cycle: int) -> tuple[Any, ...]:
        return (tuple(st.signature(at_cycle) for st in states),
                tuple(s.occupancy for s in stream_list))

    def snapshot() -> tuple[Any, ...]:
        return (tuple(st.counters() for st in states),
                tuple((s.pushes, s.pops, s.full_stalls, s.empty_stalls)
                      for s in stream_list))

    def advance(sig_cycle: int, period: int,
                snap: tuple[Any, ...]) -> int:
        """Jump whole periods; returns skipped cycles (0: parked phase,
        -1: sources cannot feed even one more period)."""
        nonlocal period_proof
        snap_stages, snap_streams = snap
        d_stage = [
            tuple(now - then for now, then in zip(st.counters(), before))
            for st, before in zip(states, snap_stages)
        ]
        if sum(d[0] for d in d_stage) == 0:
            return 0
        n = (max_cycles - sig_cycle - 1) // period
        for st, d in zip(states, d_stage):
            if st.is_source and d[0] and n > 0:
                n = min(n, st.remaining // d[0])
        if n < 1:
            return -1
        shift = n * period
        for st, d in zip(states, d_stage):
            st.fires += d[0] * n
            st.retired += d[1] * n
            st.input_stalls += d[2] * n
            st.output_stalls += d[3] * n
            st.ii_waits += d[4] * n
            st.pipeline_full_stalls += d[5] * n
            st.next_fire += shift
            if st.pipeline:
                st.pipeline = deque(ready + shift for ready in st.pipeline)
            if st.is_source:
                st.remaining -= d[0] * n
        for s, before in zip(stream_list, snap_streams):
            s.pushes += (s.pushes - before[0]) * n
            s.pops += (s.pops - before[1]) * n
            s.full_stalls += (s.full_stalls - before[2]) * n
            s.empty_stalls += (s.empty_stalls - before[3]) * n
        if period_proof is None:
            period_proof = PeriodProof(
                start_cycle=sig_cycle - period, cycles=period,
                fires={st.name: d[0] for st, d in zip(states, d_stage)})
        return shift

    cycle = 0
    last_progress = 0
    while cycle < max_cycles:
        progressed = False
        for st in states:
            progressed |= st.tick(cycle)
        if progressed:
            last_progress = cycle
        else:
            if quiescent():
                cycle += 1
                break
            if cycle - last_progress > grace:
                blocked = {}
                for st in states:
                    reason = st.blocked_reason(cycle)
                    if reason is not None:
                        blocked[st.name] = reason
                deadlock = StallWitness(
                    kind="deadlock", cycle=cycle,
                    stuck_since=last_progress + 1,
                    streams={s.name: (s.occupancy, s.depth or 0)
                             for s in stream_list},
                    blocked=blocked,
                )
                break
        if first_stall is None:
            total_full = sum(s.full_stalls for s in stream_list)
            if total_full > full_stalls_seen:
                full_stalls_seen = total_full
                blocked = {
                    st.name: reason for st in states
                    if (reason := st.blocked_reason(cycle)) is not None
                    and "cannot retire" in reason
                }
                if blocked:
                    first_stall = StallWitness(
                        kind="backpressure", cycle=cycle, stuck_since=cycle,
                        streams={s.name: (s.occupancy, s.depth or 0)
                                 for s in stream_list},
                        blocked=blocked,
                    )
        if accel_on:
            sig = machine_signature(cycle + 1)
            hit = seen.get(sig)
            if hit is None:
                if len(seen) >= _TABLE_CAP:
                    seen.clear()
                seen[sig] = (cycle + 1, snapshot())
            else:
                first_cycle, snap = hit
                skipped = advance(cycle + 1, (cycle + 1) - first_cycle, snap)
                if skipped > 0:
                    advances += 1
                    advanced_cycles += skipped
                    cycle += skipped
                    last_progress = cycle
                    seen.clear()
                elif skipped < 0:
                    accel_on = False
                    seen.clear()
        cycle += 1
    else:
        raise AnalyzeError(
            f"graph {graph.name!r} did not quiesce within {max_cycles} "
            f"abstract cycles"
        )

    return InterpRun(
        graph_name=graph.name,
        tokens=tokens,
        bounded=bounded,
        cycles=cycle,
        deadlock=deadlock,
        fires={st.name: st.fires for st in states},
        stalls={
            st.name: {
                "input": st.input_stalls,
                "output": st.output_stalls,
                "ii": st.ii_waits,
                "pipeline": st.pipeline_full_stalls,
            }
            for st in states
        },
        stream_high_water={s.name: s.high_water for s in stream_list},
        stream_full_stalls={s.name: s.full_stalls for s in stream_list},
        first_fire={st.name: st.first_fire for st in states},
        period=period_proof,
        first_stall=first_stall,
        advances=advances,
        advanced_cycles=advanced_cycles,
    )
