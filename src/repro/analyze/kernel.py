"""Static cycle bounds for the advection kernel design.

Bridges the verifier to the kernel layer: the structural Fig. 2 graph
(:func:`repro.lint.builders.build_structural_graph`) is abstract-
interpreted once per distinct chunk width, and the proved per-chunk
totals sum to a whole-invocation cycle bound.  Unlike the fitted
closed form in :class:`repro.kernel.cycle_model.KernelCycleModel`, every
number here is the exact cycle count of the unit-rate control machine —
the quantity the engine's token twin reproduces byte for byte — so the
tuner's analytic-vs-measured error is asserted against a proof, not a
calibration.
"""

from __future__ import annotations

from repro.core.grid import Grid
from repro.kernel.config import KernelConfig
from repro.analyze.interp import interpret

__all__ = ["static_kernel_cycles"]


def static_kernel_cycles(config: KernelConfig, *, read_ii: int = 1,
                         grid: Grid | None = None) -> int:
    """Proved total cycles of one kernel invocation.

    Each chunk streams ``(nx + 2) * read_width * nz`` values through the
    pipeline and restarts it; chunks of equal width are control-identical,
    so one abstract run per distinct width covers the whole plan.
    """
    from repro.lint.builders import build_structural_graph

    grid = grid or config.grid
    config = config.for_grid(grid)
    graph = build_structural_graph(config, read_ii=read_ii)
    plan = config.chunk_plan()
    feeds_per_width = (grid.nx + 2) * grid.nz
    cache: dict[int, int] = {}
    total = 0
    for chunk in plan.chunks:
        width = chunk.read_width
        if width not in cache:
            cache[width] = interpret(
                graph, feeds_per_width * width).cycles
        total += cache[width]
    return total
