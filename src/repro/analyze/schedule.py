"""Static schedule analyzer: start cycles, prime latency, period, totals.

Start cycles fall out of a longest-path DP over the DAG: a stage first
fires the cycle its slowest predecessor's first result lands in the
connecting FIFO, so ``start[s] = max over preds p of (start[p] +
latency[p])`` (sources start at cycle 0).  FIFOs start empty, so the
first token never meets backpressure and the DP is *exact*, not a bound —
it equals the interpreter's observed first-fire cycles on every graph
(property-tested).

From there the closed form for a stall-free run is::

    total = prime_latency + (tokens - 1) * ideal_period + 2

where ``prime_latency`` is the latest start cycle (the drain stage's
first fire), ``ideal_period`` is the largest stage II, and the ``+2``
covers the engine's quiescence handshake (one silent cycle to observe no
progress, one to account the final cycle).  The proved total from the
bounded abstract run is authoritative: it equals the closed form exactly
when no FIFO ever fills, and exceeds it by the proved stall overhead
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.dataflow.graph import DataflowGraph
from repro.analyze.interp import (InterpRun, PeriodProof, default_tokens,
                                  interpret)

__all__ = ["StageTiming", "StaticSchedule", "start_cycles",
           "build_schedule", "analyze_schedule"]


@dataclass(frozen=True)
class StageTiming:
    """Static timing facts for one stage."""

    name: str
    level: int
    start_cycle: int
    ii: int
    latency: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "level": self.level,
            "start_cycle": self.start_cycle,
            "ii": self.ii,
            "latency": self.latency,
        }


@dataclass(frozen=True)
class StaticSchedule:
    """Derived schedule of a graph for a given token count.

    ``total_cycles`` is the proved total (bounded abstract run);
    ``analytic_total`` the stall-free closed form.  They agree exactly
    iff ``stall_free`` — the gap is the proved backpressure overhead.
    """

    graph_name: str
    tokens: int
    prime_latency: int
    ideal_period: int
    total_cycles: int
    analytic_total: int
    stall_free: bool
    period: PeriodProof | None = None
    stages: dict[str, StageTiming] = field(default_factory=dict)

    @property
    def stall_overhead(self) -> int:
        return self.total_cycles - self.analytic_total

    def to_dict(self) -> dict[str, Any]:
        return {
            "graph": self.graph_name,
            "tokens": self.tokens,
            "prime_latency": self.prime_latency,
            "ideal_period": self.ideal_period,
            "total_cycles": self.total_cycles,
            "analytic_total": self.analytic_total,
            "stall_free": self.stall_free,
            "stall_overhead": self.stall_overhead,
            "period": self.period.to_dict() if self.period else None,
            "stages": {name: self.stages[name].to_dict()
                       for name in sorted(self.stages)},
        }


def start_cycles(graph: DataflowGraph) -> dict[str, tuple[int, int]]:
    """Exact first-fire cycle and topological level per stage.

    Returns ``name -> (level, start_cycle)``; sources sit at level 0,
    cycle 0.
    """
    order = graph.topological_order()
    level = {stage.name: 0 for stage in order}
    start = {stage.name: 0 for stage in order}
    preds: dict[str, list[tuple[str, int]]] = {}
    for conn in graph.connections():
        preds.setdefault(conn.dst.name, []).append(
            (conn.src.name, conn.src.latency))
    for stage in order:
        for src, latency in preds.get(stage.name, ()):
            level[stage.name] = max(level[stage.name], level[src] + 1)
            start[stage.name] = max(start[stage.name], start[src] + latency)
    return {name: (level[name], start[name]) for name in start}


def analytic_total_cycles(prime_latency: int, ideal_period: int,
                          tokens: int) -> int:
    """The stall-free closed form (1 for an empty run: the engine's
    immediate-quiescence cycle)."""
    if tokens <= 0:
        return 1
    return prime_latency + (tokens - 1) * ideal_period + 2


def build_schedule(graph: DataflowGraph, bounded: InterpRun
                   ) -> StaticSchedule:
    """Assemble the schedule from the DP and one bounded run."""
    timing = start_cycles(graph)
    stages = {
        stage.name: StageTiming(
            name=stage.name,
            level=timing[stage.name][0],
            start_cycle=timing[stage.name][1],
            ii=stage.ii,
            latency=stage.latency,
        )
        for stage in graph.stages
    }
    prime = max((t[1] for t in timing.values()), default=0)
    ideal = max((stage.ii for stage in graph.stages), default=1)
    analytic = analytic_total_cycles(prime, ideal, bounded.tokens)
    return StaticSchedule(
        graph_name=graph.name,
        tokens=bounded.tokens,
        prime_latency=prime,
        ideal_period=ideal,
        total_cycles=bounded.cycles,
        analytic_total=analytic,
        stall_free=all(n == 0 for n in bounded.stream_full_stalls.values()),
        period=bounded.period,
        stages=stages,
    )


def analyze_schedule(graph: DataflowGraph, tokens: int | None = None, *,
                     stall_grace: int | None = None) -> StaticSchedule:
    """Run the schedule analysis end to end on ``graph``."""
    if tokens is None:
        tokens = default_tokens(graph)
    bounded = interpret(graph, tokens, stall_grace=stall_grace)
    return build_schedule(graph, bounded)
