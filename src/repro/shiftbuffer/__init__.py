"""The general-purpose 3D shift buffer of the paper's kernel redesign.

Section III and Fig. 3 of the paper describe the buffer's three data
structures, reproduced here exactly:

* a ``3 x Y x Z`` slab holding the last three X-planes of the input stream,
* per slab slice, a ``3 x Z`` rectangular line buffer sliding in Y, and
* per slab slice, a ``3 x 3`` register window shifting in Z.

Feeding one value per cycle, the primed buffer emits a complete 27-point
stencil per cycle — the property that lets the advection stages run at
initiation interval 1.  :mod:`repro.shiftbuffer.ports` checks the paper's
"never more than two memory accesses per cycle per partitioned array"
claim, and :mod:`repro.shiftbuffer.chunking` implements the Y-dimension
chunking with one-cell halo overlap from Fig. 4.
"""

from repro.shiftbuffer.buffer3d import ShiftBuffer3D
from repro.shiftbuffer.chunking import ChunkPlan, plan_chunks
from repro.shiftbuffer.ports import MemoryPortTracker
from repro.shiftbuffer.window import StencilWindow

__all__ = [
    "ShiftBuffer3D",
    "StencilWindow",
    "MemoryPortTracker",
    "ChunkPlan",
    "plan_chunks",
]
