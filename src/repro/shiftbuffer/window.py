"""The 27-point stencil window emitted by the shift buffer.

A :class:`StencilWindow` is a snapshot of the three 3x3 register arrays of
one field's shift buffer at the cycle it was emitted, tagged with the
centre cell it provides a stencil for.  Values are addressed either in raw
register coordinates ``raw[s, dy, dz]`` (s = X-plane age, dy/dz = how many
cycles ago that Y/Z position was loaded) or — the form the advection
stages use — by stencil offset relative to the centre cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StencilWindow"]


@dataclass(frozen=True)
class StencilWindow:
    """A 3x3x3 stencil for one field, centred on ``center``.

    Attributes
    ----------
    raw:
        Register contents, indexed ``raw[s, dy, dz]`` where ``s`` is the
        slab-slice index (0 = newest X-plane), ``dy``/``dz`` the Y/Z shift
        ages.  With the streaming order of the kernel this means
        ``raw[s, dy, dz] == field[x - s, y - dy, z - dz]`` for feed position
        ``(x, y, z)``.
    center:
        Local ``(cx, cy, cz)`` coordinates of the centre cell within the
        array the buffer was fed from (halo coordinates for a chunk).
    top:
        True when this window was emitted for a column-top cell.  In that
        case the ``dk = +1`` plane holds stale values from the next column
        and MUST NOT be read — exactly as in the hardware, where the
        registers simply hold whatever streamed through last.  Top windows
        are re-indexed so that :meth:`at` still addresses the valid planes
        correctly.
    """

    raw: np.ndarray
    center: tuple[int, int, int]
    top: bool = False

    def __post_init__(self) -> None:
        if self.raw.shape != (3, 3, 3):
            raise ValueError(f"window must be 3x3x3, got {self.raw.shape}")

    def at(self, di: int, dj: int, dk: int) -> float:
        """Value at stencil offset ``(di, dj, dk)`` from the centre.

        Offsets must be in ``{-1, 0, +1}``.  For a normal window the centre
        sits at raw index ``[1, 1, 1]``; for a top window the Z axis is one
        register younger (the centre is the *last* value of its column), so
        the centre sits at ``[1, 1, 1]`` in Y/X but ``dz = 1 - dk`` becomes
        ``dz = 1 - (dk + 1)`` — requesting ``dk = +1`` from a top window is
        a logic error and raises.
        """
        if not (-1 <= di <= 1 and -1 <= dj <= 1 and -1 <= dk <= 1):
            raise ValueError(f"stencil offsets must be in [-1, 1], got "
                             f"({di}, {dj}, {dk})")
        if self.top and dk == 1:
            raise ValueError(
                "dk=+1 requested from a column-top window; the register "
                "holds stale data there (see StencilWindow.top)"
            )
        dz = (0 - dk) if self.top else (1 - dk)
        return float(self.raw[1 - di, 1 - dj, dz])

    def as_array(self) -> np.ndarray:
        """Stencil as ``a[di+1, dj+1, dk+1]``; top windows get NaN at dk=+1.

        Convenient for whole-window comparisons in tests.
        """
        out = np.empty((3, 3, 3))
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                for dk in (-1, 0, 1):
                    if self.top and dk == 1:
                        out[di + 1, dj + 1, dk + 1] = np.nan
                    else:
                        out[di + 1, dj + 1, dk + 1] = self.at(di, dj, dk)
        return out

    @property
    def center_value(self) -> float:
        return self.at(0, 0, 0)
