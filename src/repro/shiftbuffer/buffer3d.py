"""The 3D shift buffer (Fig. 3 of the paper), one instance per field.

Data structures, exactly as the paper describes:

* ``slab`` — a ``3 x Y x Z`` array.  Streaming one value per cycle in the
  kernel's order (Z fastest, then Y, then X), the new value displaces the
  value at the current ``(y, z)`` position of slice 0, which displaces the
  corresponding value in slice 1, which displaces slice 2.  After feeding
  position ``(x, y, z)``, slice ``s`` holds plane ``x - s`` at all
  positions already passed.
* ``lines`` — per slab slice, a ``3 x Z`` rectangular buffer sliding in Y:
  the value entering slice ``s`` also enters line 0 at height ``z``,
  shifting lines 0→1→2 at that height, so line ``dy`` holds Y-column
  ``y - dy`` of plane ``x - s``.
* ``windows`` — per slab slice, a ``3 x 3`` register array shifting in Z:
  each cycle the three line values at the current height load into column
  0 and the columns shift 0→1→2, so ``windows[s][dy][dz]`` holds
  ``field[x - s, y - dy, z - dz]``.

Together the windows are the 27-point stencil.  Stencil emission rules
(documented in :meth:`ShiftBuffer3D.feed`) cover every interior cell of the
fed block at one input value per cycle, with a double emission at each
column top that downstream FIFOs absorb — total emissions per interior
column are ``nz - 1``, matching the paper's 63-results-per-64-cycle column
arithmetic.

Port accounting reproduces the paper's dual-port claims: with the arrays
partitioned (slab on its X dimension, lines on their Y dimension — the
``array_partition`` pragma on Xilinx, a manual split on Intel) no memory
sees more than two accesses per cycle; unpartitioned, the slab sees five,
which is what forced the Intel initiation interval above 1 until the
arrays were split (section III-B).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShiftBufferError
from repro.shiftbuffer.ports import MemoryPortTracker
from repro.shiftbuffer.window import StencilWindow

__all__ = ["ShiftBuffer3D"]


class ShiftBuffer3D:
    """A shift buffer for one field over a ``(nx, ny, nz)`` block.

    Parameters
    ----------
    nx, ny, nz:
        Extent of the block that will be streamed through the buffer
        (including any halo).  Only ``ny`` and ``nz`` bound on-chip memory —
        the paper's motivation for chunking Y.
    partitioned:
        Model the arrays as partitioned into independent banks (the
        correct, II=1 configuration).  ``False`` models the naive layout
        and will report port conflicts.
    tracker:
        Optional shared :class:`MemoryPortTracker`; a non-enforcing private
        one is created otherwise.
    name:
        Prefix for memory names in port reports (e.g. the field name).
    """

    def __init__(self, nx: int, ny: int, nz: int, *, partitioned: bool = True,
                 tracker: MemoryPortTracker | None = None,
                 name: str = "field") -> None:
        if nx < 3 or ny < 3 or nz < 3:
            raise ShiftBufferError(
                f"block must be at least 3 in every dimension for a depth-1 "
                f"stencil, got ({nx}, {ny}, {nz})"
            )
        self.nx = nx
        self.ny = ny
        self.nz = nz
        self.partitioned = partitioned
        self.name = name
        self.tracker = tracker if tracker is not None else MemoryPortTracker(
            enforce=False
        )

        self._slab = np.zeros((3, ny, nz))
        self._lines = np.zeros((3, 3, nz))  # [slice, dy, z]
        self._windows = np.zeros((3, 3, 3))  # [slice, dy, dz]

        # Streaming position of the NEXT value to be fed.
        self._x = 0
        self._y = 0
        self._z = 0
        self._fed = 0

    # -- sizing ---------------------------------------------------------------

    @property
    def memory_words(self) -> int:
        """On-chip RAM words (slab + line buffers); windows are registers."""
        return 3 * self.ny * self.nz + 3 * 3 * self.nz

    @property
    def register_words(self) -> int:
        """Register words (the three 3x3 windows)."""
        return 27

    @property
    def fed(self) -> int:
        """Values consumed so far."""
        return self._fed

    @property
    def position(self) -> tuple[int, int, int]:
        """``(x, y, z)`` of the next value to be fed."""
        return (self._x, self._y, self._z)

    @property
    def expected_feeds(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def expected_emissions(self) -> int:
        """Stencils a full streaming pass emits: interior columns x (nz-1)."""
        return (self.nx - 2) * (self.ny - 2) * (self.nz - 1)

    # -- the update ---------------------------------------------------------------

    def feed(self, value: float) -> list[StencilWindow]:
        """Consume one value; return the stencils that became complete.

        Values must arrive in streaming order (Z fastest, then Y, then X).
        Returns zero, one, or two windows:

        * feeding ``(x, y, z)`` with ``x, y, z >= 2`` completes the full
          window centred on ``(x-1, y-1, z-1)``;
        * feeding a column top ``(x, y, nz-1)`` with ``x, y >= 2``
          *additionally* completes the one-sided top window centred on
          ``(x-1, y-1, nz-1)`` — the burst a downstream FIFO absorbs during
          the two emission-free cycles at the start of the next column.
        """
        if self._fed >= self.expected_feeds:
            raise ShiftBufferError(
                f"buffer {self.name!r} already consumed its full block of "
                f"{self.expected_feeds} values"
            )
        x, y, z = self._x, self._y, self._z
        t = self.tracker
        t.begin_cycle()

        # --- slab: shift in X at position (y, z) ---------------------------
        displaced0 = self._slab[0, y, z]
        displaced1 = self._slab[1, y, z]
        self._slab[0, y, z] = value
        self._slab[1, y, z] = displaced0
        self._slab[2, y, z] = displaced1
        if self.partitioned:
            t.access(f"{self.name}.slab[0]", 2)  # read displaced + write new
            t.access(f"{self.name}.slab[1]", 2)  # read displaced + write
            t.access(f"{self.name}.slab[2]", 1)  # write only
        else:
            t.access(f"{self.name}.slab", 5)

        # --- line buffers: shift in Y at height z ---------------------------
        # The value entering each slice is forwarded from the slab update
        # (no extra slab read), as the paper's dual-port budget requires.
        entering = (value, displaced0, displaced1)
        for s in range(3):
            old0 = self._lines[s, 0, z]
            old1 = self._lines[s, 1, z]
            self._lines[s, 2, z] = old1
            self._lines[s, 1, z] = old0
            self._lines[s, 0, z] = entering[s]
            if self.partitioned:
                t.access(f"{self.name}.lines[{s}][0]", 2)  # read old + write
                t.access(f"{self.name}.lines[{s}][1]", 2)
                t.access(f"{self.name}.lines[{s}][2]", 1)
            else:
                t.access(f"{self.name}.lines[{s}]", 5)

        # --- register windows: shift in Z -----------------------------------
        # Values are forwarded from the line-buffer shift, costing no ports;
        # both tool chains implement 3x3 arrays as registers (section III).
        self._windows[:, :, 2] = self._windows[:, :, 1]
        self._windows[:, :, 1] = self._windows[:, :, 0]
        for s in range(3):
            self._windows[s, :, 0] = self._lines[s, :, z]

        t.end_cycle()

        # --- emission --------------------------------------------------------
        emitted: list[StencilWindow] = []
        if x >= 2 and y >= 2:
            if z >= 2:
                emitted.append(
                    StencilWindow(
                        raw=self._windows.copy(),
                        center=(x - 1, y - 1, z - 1),
                        top=False,
                    )
                )
            if z == self.nz - 1:
                emitted.append(
                    StencilWindow(
                        raw=self._windows.copy(),
                        center=(x - 1, y - 1, self.nz - 1),
                        top=True,
                    )
                )

        # --- advance streaming position ---------------------------------------
        self._fed += 1
        self._z += 1
        if self._z == self.nz:
            self._z = 0
            self._y += 1
            if self._y == self.ny:
                self._y = 0
                self._x += 1
        return emitted

    def feed_block(self, block: np.ndarray) -> list[StencilWindow]:
        """Stream an entire ``(nx, ny, nz)`` block; return all stencils."""
        if block.shape != (self.nx, self.ny, self.nz):
            raise ShiftBufferError(
                f"block shape {block.shape} does not match buffer extents "
                f"({self.nx}, {self.ny}, {self.nz})"
            )
        emitted: list[StencilWindow] = []
        flat = block.reshape(-1)  # C order == streaming order (z fastest)
        for value in flat:
            emitted.extend(self.feed(float(value)))
        return emitted

    def reset(self) -> None:
        """Clear all state for a new block."""
        self._slab.fill(0.0)
        self._lines.fill(0.0)
        self._windows.fill(0.0)
        self._x = self._y = self._z = 0
        self._fed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShiftBuffer3D({self.name!r}, nx={self.nx}, ny={self.ny}, "
            f"nz={self.nz}, fed={self._fed}/{self.expected_feeds})"
        )
