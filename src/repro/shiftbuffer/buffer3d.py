"""The 3D shift buffer (Fig. 3 of the paper), one instance per field.

Data structures, exactly as the paper describes:

* ``slab`` — a ``3 x Y x Z`` array.  Streaming one value per cycle in the
  kernel's order (Z fastest, then Y, then X), the new value displaces the
  value at the current ``(y, z)`` position of slice 0, which displaces the
  corresponding value in slice 1, which displaces slice 2.  After feeding
  position ``(x, y, z)``, slice ``s`` holds plane ``x - s`` at all
  positions already passed.
* ``lines`` — per slab slice, a ``3 x Z`` rectangular buffer sliding in Y:
  the value entering slice ``s`` also enters line 0 at height ``z``,
  shifting lines 0→1→2 at that height, so line ``dy`` holds Y-column
  ``y - dy`` of plane ``x - s``.
* ``windows`` — per slab slice, a ``3 x 3`` register array shifting in Z:
  each cycle the three line values at the current height load into column
  0 and the columns shift 0→1→2, so ``windows[s][dy][dz]`` holds
  ``field[x - s, y - dy, z - dz]``.

Together the windows are the 27-point stencil.  Stencil emission rules
(documented in :meth:`ShiftBuffer3D.feed`) cover every interior cell of the
fed block at one input value per cycle, with a double emission at each
column top that downstream FIFOs absorb — total emissions per interior
column are ``nz - 1``, matching the paper's 63-results-per-64-cycle column
arithmetic.

Port accounting reproduces the paper's dual-port claims: with the arrays
partitioned (slab on its X dimension, lines on their Y dimension — the
``array_partition`` pragma on Xilinx, a manual split on Intel) no memory
sees more than two accesses per cycle; unpartitioned, the slab sees five,
which is what forced the Intel initiation interval above 1 until the
arrays were split (section III-B).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ShiftBufferError
from repro.shiftbuffer.ports import MemoryPortTracker
from repro.shiftbuffer.window import StencilWindow

__all__ = ["ShiftBuffer3D", "emission_center"]


def emission_center(index: int, ny: int, nz: int) -> tuple[int, int, int, bool]:
    """Map a flat emission index to ``(cx, cy, cz, top)``.

    Emissions of a streaming pass are numbered ``0 .. (nx-2)(ny-2)(nz-1)``
    in the order :meth:`ShiftBuffer3D.feed` produces them: column by
    column (Y fastest, then X), ``nz - 1`` per interior column — the
    ``nz - 2`` full windows at ``cz = 1 .. nz-2`` followed by the
    column-top window at ``cz = nz - 1``.  This arithmetic is what lets
    the batched feed path address any window directly.
    """
    column, j = divmod(index, nz - 1)
    cx = column // (ny - 2) + 1
    cy = column % (ny - 2) + 1
    cz = j + 1
    return cx, cy, cz, cz == nz - 1


class ShiftBuffer3D:
    """A shift buffer for one field over a ``(nx, ny, nz)`` block.

    Parameters
    ----------
    nx, ny, nz:
        Extent of the block that will be streamed through the buffer
        (including any halo).  Only ``ny`` and ``nz`` bound on-chip memory —
        the paper's motivation for chunking Y.
    partitioned:
        Model the arrays as partitioned into independent banks (the
        correct, II=1 configuration).  ``False`` models the naive layout
        and will report port conflicts.
    tracker:
        Optional shared :class:`MemoryPortTracker`; a non-enforcing private
        one is created otherwise.
    name:
        Prefix for memory names in port reports (e.g. the field name).
    """

    def __init__(self, nx: int, ny: int, nz: int, *, partitioned: bool = True,
                 tracker: MemoryPortTracker | None = None,
                 name: str = "field") -> None:
        if nx < 3 or ny < 3 or nz < 3:
            raise ShiftBufferError(
                f"block must be at least 3 in every dimension for a depth-1 "
                f"stencil, got ({nx}, {ny}, {nz})"
            )
        self.nx = nx
        self.ny = ny
        self.nz = nz
        self.partitioned = partitioned
        self.name = name
        self.tracker = tracker if tracker is not None else MemoryPortTracker(
            enforce=False
        )

        self._slab = np.zeros((3, ny, nz))
        self._lines = np.zeros((3, 3, nz))  # [slice, dy, z]
        self._windows = np.zeros((3, 3, 3))  # [slice, dy, dz]

        # Streaming position of the NEXT value to be fed.
        self._x = 0
        self._y = 0
        self._z = 0
        self._fed = 0

    # -- sizing ---------------------------------------------------------------

    @property
    def memory_words(self) -> int:
        """On-chip RAM words (slab + line buffers); windows are registers."""
        return 3 * self.ny * self.nz + 3 * 3 * self.nz

    @property
    def register_words(self) -> int:
        """Register words (the three 3x3 windows)."""
        return 27

    @property
    def fed(self) -> int:
        """Values consumed so far."""
        return self._fed

    @property
    def position(self) -> tuple[int, int, int]:
        """``(x, y, z)`` of the next value to be fed."""
        return (self._x, self._y, self._z)

    @property
    def expected_feeds(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def expected_emissions(self) -> int:
        """Stencils a full streaming pass emits: interior columns x (nz-1)."""
        return (self.nx - 2) * (self.ny - 2) * (self.nz - 1)

    # -- the update ---------------------------------------------------------------

    def feed(self, value: float) -> list[StencilWindow]:
        """Consume one value; return the stencils that became complete.

        Values must arrive in streaming order (Z fastest, then Y, then X).
        Returns zero, one, or two windows:

        * feeding ``(x, y, z)`` with ``x, y, z >= 2`` completes the full
          window centred on ``(x-1, y-1, z-1)``;
        * feeding a column top ``(x, y, nz-1)`` with ``x, y >= 2``
          *additionally* completes the one-sided top window centred on
          ``(x-1, y-1, nz-1)`` — the burst a downstream FIFO absorbs during
          the two emission-free cycles at the start of the next column.
        """
        if self._fed >= self.expected_feeds:
            raise ShiftBufferError(
                f"buffer {self.name!r} already consumed its full block of "
                f"{self.expected_feeds} values"
            )
        x, y, z = self._x, self._y, self._z
        t = self.tracker
        t.begin_cycle()

        # --- slab: shift in X at position (y, z) ---------------------------
        displaced0 = self._slab[0, y, z]
        displaced1 = self._slab[1, y, z]
        self._slab[0, y, z] = value
        self._slab[1, y, z] = displaced0
        self._slab[2, y, z] = displaced1
        if self.partitioned:
            t.access(f"{self.name}.slab[0]", 2)  # read displaced + write new
            t.access(f"{self.name}.slab[1]", 2)  # read displaced + write
            t.access(f"{self.name}.slab[2]", 1)  # write only
        else:
            t.access(f"{self.name}.slab", 5)

        # --- line buffers: shift in Y at height z ---------------------------
        # The value entering each slice is forwarded from the slab update
        # (no extra slab read), as the paper's dual-port budget requires.
        entering = (value, displaced0, displaced1)
        for s in range(3):
            old0 = self._lines[s, 0, z]
            old1 = self._lines[s, 1, z]
            self._lines[s, 2, z] = old1
            self._lines[s, 1, z] = old0
            self._lines[s, 0, z] = entering[s]
            if self.partitioned:
                t.access(f"{self.name}.lines[{s}][0]", 2)  # read old + write
                t.access(f"{self.name}.lines[{s}][1]", 2)
                t.access(f"{self.name}.lines[{s}][2]", 1)
            else:
                t.access(f"{self.name}.lines[{s}]", 5)

        # --- register windows: shift in Z -----------------------------------
        # Values are forwarded from the line-buffer shift, costing no ports;
        # both tool chains implement 3x3 arrays as registers (section III).
        self._windows[:, :, 2] = self._windows[:, :, 1]
        self._windows[:, :, 1] = self._windows[:, :, 0]
        for s in range(3):
            self._windows[s, :, 0] = self._lines[s, :, z]

        t.end_cycle()

        # --- emission --------------------------------------------------------
        emitted: list[StencilWindow] = []
        if x >= 2 and y >= 2:
            if z >= 2:
                emitted.append(
                    StencilWindow(
                        raw=self._windows.copy(),
                        center=(x - 1, y - 1, z - 1),
                        top=False,
                    )
                )
            if z == self.nz - 1:
                emitted.append(
                    StencilWindow(
                        raw=self._windows.copy(),
                        center=(x - 1, y - 1, self.nz - 1),
                        top=True,
                    )
                )

        # --- advance streaming position ---------------------------------------
        self._fed += 1
        self._z += 1
        if self._z == self.nz:
            self._z = 0
            self._y += 1
            if self._y == self.ny:
                self._y = 0
                self._x += 1
        return emitted

    def _check_block_shape(self, block: np.ndarray) -> None:
        shape = tuple(block.shape) if hasattr(block, "shape") else None
        if shape != (self.nx, self.ny, self.nz):
            hint = ""
            if shape is not None and sorted(shape) == sorted(
                    (self.nx, self.ny, self.nz)):
                hint = (
                    " — the extents match but the axes are permuted; the "
                    "buffer streams Z fastest, then Y, then X, so transpose "
                    "the block to (nx, ny, nz) order before feeding"
                )
            raise ShiftBufferError(
                f"buffer {self.name!r}: block shape {shape} does not match "
                f"buffer extents ({self.nx}, {self.ny}, {self.nz}){hint}"
            )

    def _access_pattern(self) -> dict[str, int]:
        """Per-feed memory access counts (a structural constant)."""
        if self.partitioned:
            pattern = {
                f"{self.name}.slab[0]": 2,
                f"{self.name}.slab[1]": 2,
                f"{self.name}.slab[2]": 1,
            }
            for s in range(3):
                pattern[f"{self.name}.lines[{s}][0]"] = 2
                pattern[f"{self.name}.lines[{s}][1]"] = 2
                pattern[f"{self.name}.lines[{s}][2]"] = 1
            return pattern
        pattern = {f"{self.name}.slab": 5}
        for s in range(3):
            pattern[f"{self.name}.lines[{s}]"] = 5
        return pattern

    def _emissions_before(self, feeds: int) -> int:
        """Windows emitted by the first ``feeds`` values of the block."""
        ny, nz = self.ny, self.nz
        x, rest = divmod(feeds, ny * nz)
        y, z = divmod(rest, nz)
        total = max(x - 2, 0) * (ny - 2) * (nz - 1)
        if x >= 2:
            total += max(y - 2, 0) * (nz - 1)
            if y >= 2:
                total += max(z - 2, 0)
        return total

    def emission_count(self, feeds: int) -> int:
        """Emissions an additional ``feeds`` values would produce now."""
        return (self._emissions_before(self._fed + feeds)
                - self._emissions_before(self._fed))

    def feed_bulk(self, count: int, backing: np.ndarray) -> tuple[int, int]:
        """Advance ``count`` feeds analytically; return the emission range.

        ``backing`` must be the full ``(nx, ny, nz)`` block whose values
        are being streamed — the *same* values previous :meth:`feed` calls
        supplied, in streaming order.  The buffer jumps straight to the
        state it would reach after ``count`` more scalar feeds: every
        shift-register slot holds a value at a closed-form position of the
        backing block, so the state is gathered rather than simulated, and
        the memory-port tracker replays its per-feed pattern in bulk.

        Returns ``(first, stop)``, the half-open range of flat emission
        indices (see :func:`emission_center`) the skipped feeds produced;
        callers materialise any windows they need from the backing block.
        """
        self._check_block_shape(backing)
        if count < 1:
            raise ShiftBufferError(
                f"buffer {self.name!r}: feed_bulk count must be >= 1, "
                f"got {count}"
            )
        if self._fed + count > self.expected_feeds:
            raise ShiftBufferError(
                f"buffer {self.name!r}: feed_bulk of {count} values "
                f"overruns the block ({self._fed} of "
                f"{self.expected_feeds} already consumed)"
            )
        first = self._emissions_before(self._fed)
        new_fed = self._fed + count
        stop = self._emissions_before(new_fed)
        self.tracker.record_steady(self._access_pattern(), count)

        nx, ny, nz = self.nx, self.ny, self.nz
        x, rest = divmod(new_fed, ny * nz)
        y, z = divmod(rest, nz)

        # Slab slice s holds, at each (y', z'), the value of plane
        # (x - s) where the streaming front has passed this plane and
        # (x - 1 - s) where it has not; slots the stream never reached
        # that deep keep their prior contents.
        yy, zz = np.meshgrid(np.arange(ny), np.arange(nz), indexing="ij")
        passed = (yy * nz + zz) < (y * nz + z)
        for s in range(3):
            plane = np.where(passed, x - s, x - 1 - s)
            valid = (plane >= 0) & (plane < nx)
            self._slab[s][valid] = backing[plane[valid], yy[valid], zz[valid]]

        # Line buffers slide over global row index g = plane * ny + row,
        # independently per height: depth dy holds the value that entered
        # dy feeds-at-this-height ago, i.e. row g - dy (wrapping into the
        # previous plane's last rows at plane seams).
        heights = np.arange(nz)
        last_row = np.where(heights < z, x * ny + y,
                            x * ny + y - 1)  # last feed at each height
        for s in range(3):
            for dy in range(3):
                g = last_row - dy
                plane_idx, row_idx = np.divmod(g, ny)
                src_plane = plane_idx - s
                valid = (g >= 0) & (src_plane >= 0) & (src_plane < nx)
                self._lines[s, dy, valid] = backing[
                    src_plane[valid], row_idx[valid], heights[valid]]

        # Register windows: column dz was loaded by the feed dz steps ago.
        for dz in range(3):
            f = new_fed - 1 - dz
            if f < 0:
                continue
            fx, frest = divmod(f, ny * nz)
            fy, fz = divmod(frest, nz)
            for s in range(3):
                for dy in range(3):
                    g = fx * ny + fy - dy
                    if g < 0:
                        continue
                    gx, gy = divmod(g, ny)
                    if 0 <= gx - s < nx:
                        self._windows[s, dy, dz] = backing[gx - s, gy, fz]

        self._fed = new_fed
        self._x, self._y, self._z = x, y, z
        return first, stop

    def window_at(self, index: int, backing: np.ndarray) -> StencilWindow:
        """Materialise the window of one flat emission index from backing.

        Bit-identical to the window :meth:`feed` emits at that point of
        the stream: the registers hold the 3x3x3 neighbourhood of the feed
        position reversed on every axis (newest value at raw index 0).
        """
        cx, cy, cz, top = emission_center(index, self.ny, self.nz)
        z0 = self.nz - 3 if top else cz - 1
        raw = backing[cx - 1:cx + 2, cy - 1:cy + 2, z0:z0 + 3]
        return StencilWindow(
            raw=np.ascontiguousarray(raw[::-1, ::-1, ::-1]),
            center=(cx, cy, cz),
            top=top,
        )

    def feed_block(self, block: np.ndarray) -> list[StencilWindow]:
        """Stream an entire ``(nx, ny, nz)`` block; return all stencils.

        On a fresh buffer this takes the batched path: state advances
        analytically (:meth:`feed_bulk`) and every window is cut from a
        ``sliding_window_view`` of the block — identical results to the
        scalar loop at a fraction of the cost.  A partially fed buffer
        falls back to scalar feeds.
        """
        self._check_block_shape(block)
        if self._fed != 0:
            emitted: list[StencilWindow] = []
            for value in block.reshape(-1):
                emitted.extend(self.feed(float(value)))
            return emitted

        block = np.asarray(block, dtype=float)
        first, stop = self.feed_bulk(self.expected_feeds, block)
        if first == stop:
            return []
        ny, nz = self.ny, self.nz
        view = sliding_window_view(block, (3, 3, 3))
        indices = np.arange(first, stop)
        column, j = np.divmod(indices, nz - 1)
        cx = column // (ny - 2) + 1
        cy = column % (ny - 2) + 1
        cz = j + 1
        top = cz == nz - 1
        z0 = np.where(top, nz - 3, cz - 1)
        raws = view[cx - 1, cy - 1, z0][:, ::-1, ::-1, ::-1]
        return [
            StencilWindow(
                raw=raws[i],
                center=(int(cx[i]), int(cy[i]), int(cz[i])),
                top=bool(top[i]),
            )
            for i in range(len(indices))
        ]

    def reset(self) -> None:
        """Clear all state for a new block."""
        self._slab.fill(0.0)
        self._lines.fill(0.0)
        self._windows.fill(0.0)
        self._x = self._y = self._z = 0
        self._fed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShiftBuffer3D({self.name!r}, nx={self.nx}, ny={self.ny}, "
            f"nz={self.nz}, fed={self._fed}/{self.expected_feeds})"
        )
