"""A radius-``r`` generalisation of the paper's 3D shift buffer.

The paper calls its structure a "general purpose 3D shift buffer"; this
module makes that literal.  :class:`GeneralShiftBuffer` supports any
stencil radius: a ``(2r+1) x Y x Z`` slab, per-slice ``(2r+1) x Z`` line
buffers, and per-slice ``(2r+1) x (2r+1)`` register windows — collapsing
exactly to the Fig. 3 structure at ``r = 1``.

Unlike :class:`~repro.shiftbuffer.buffer3d.ShiftBuffer3D` (which carries
the PW kernel's column-top double-emission protocol) this class emits
only *full* windows — the clean building block for other stencil codes
(e.g. a deeper advection scheme, or the diffusion stencils MONC also
runs).  Port accounting shows the dual-port property is radius-
independent: per partitioned bank the update costs at most one read plus
one write per cycle at any radius.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShiftBufferError
from repro.shiftbuffer.ports import MemoryPortTracker

__all__ = ["GeneralShiftBuffer", "GeneralWindow"]


class GeneralWindow:
    """A ``(2r+1)^3`` stencil snapshot centred on ``center``."""

    __slots__ = ("raw", "center", "radius")

    def __init__(self, raw: np.ndarray, center: tuple[int, int, int],
                 radius: int) -> None:
        side = 2 * radius + 1
        if raw.shape != (side, side, side):
            raise ShiftBufferError(
                f"window must be {side}^3 for radius {radius}, got "
                f"{raw.shape}"
            )
        self.raw = raw
        self.center = center
        self.radius = radius

    def at(self, di: int, dj: int, dk: int) -> float:
        """Value at stencil offset ``(di, dj, dk)``, each in ``[-r, r]``.

        ``raw[s, dy, dz]`` holds ``field[x - s, y - dy, z - dz]`` for feed
        position ``(x, y, z)``; the centre sits at age ``r`` on each axis.
        """
        r = self.radius
        if not (-r <= di <= r and -r <= dj <= r and -r <= dk <= r):
            raise ShiftBufferError(
                f"offset ({di}, {dj}, {dk}) outside radius {r}"
            )
        return float(self.raw[r - di, r - dj, r - dk])

    def as_array(self) -> np.ndarray:
        """Stencil as ``a[di+r, dj+r, dk+r]``."""
        return self.raw[::-1, ::-1, ::-1].copy()


class GeneralShiftBuffer:
    """A shift buffer producing ``(2r+1)^3`` stencils at one value/cycle.

    Parameters
    ----------
    nx, ny, nz:
        Extents of the streamed block (halo included).
    radius:
        Stencil radius; 1 reproduces the paper's 27-point design.
    tracker, name:
        As for :class:`~repro.shiftbuffer.buffer3d.ShiftBuffer3D`.
    """

    def __init__(self, nx: int, ny: int, nz: int, *, radius: int = 1,
                 tracker: MemoryPortTracker | None = None,
                 name: str = "field") -> None:
        if radius < 1:
            raise ShiftBufferError(f"radius must be >= 1, got {radius}")
        side = 2 * radius + 1
        if nx < side or ny < side or nz < side:
            raise ShiftBufferError(
                f"block must be at least {side} in every dimension for "
                f"radius {radius}, got ({nx}, {ny}, {nz})"
            )
        self.nx, self.ny, self.nz = nx, ny, nz
        self.radius = radius
        self.side = side
        self.name = name
        self.tracker = tracker if tracker is not None else MemoryPortTracker(
            enforce=False)

        self._slab = np.zeros((side, ny, nz))
        self._lines = np.zeros((side, side, nz))   # [slice, dy, z]
        self._windows = np.zeros((side, side, side))  # [slice, dy, dz]
        self._x = self._y = self._z = 0
        self._fed = 0

    @property
    def memory_words(self) -> int:
        return self.side * self.ny * self.nz + self.side * self.side * self.nz

    @property
    def expected_feeds(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def expected_emissions(self) -> int:
        span = 2 * self.radius
        return ((self.nx - span) * (self.ny - span) * (self.nz - span))

    def feed(self, value: float) -> list[GeneralWindow]:
        """Consume one value (streaming order: Z, then Y, then X)."""
        if self._fed >= self.expected_feeds:
            raise ShiftBufferError(
                f"buffer {self.name!r} already consumed its block"
            )
        x, y, z = self._x, self._y, self._z
        side, r = self.side, self.radius
        t = self.tracker
        t.begin_cycle()

        # Slab: shift the X history at (y, z); each partitioned slice is
        # one read (the displaced value) plus one write.
        displaced = value
        for s in range(side):
            displaced, self._slab[s, y, z] = self._slab[s, y, z], displaced
            t.access(f"{self.name}.slab[{s}]",
                     2 if s < side - 1 else 1)

        # Line buffers: shift the Y history at height z per slice; the
        # entering value is forwarded from the slab write (no extra port).
        for s in range(side):
            entering = self._slab[s, y, z]
            for dy in range(side):
                entering, self._lines[s, dy, z] = (
                    self._lines[s, dy, z], entering)
                t.access(f"{self.name}.lines[{s}][{dy}]",
                         2 if dy < side - 1 else 1)

        # Register windows: shift the Z history (registers, no ports).
        self._windows[:, :, 1:] = self._windows[:, :, :-1]
        for s in range(side):
            self._windows[s, :, 0] = self._lines[s, :, z]
        t.end_cycle()

        emitted: list[GeneralWindow] = []
        if x >= 2 * r and y >= 2 * r and z >= 2 * r:
            emitted.append(GeneralWindow(
                raw=self._windows.copy(),
                center=(x - r, y - r, z - r),
                radius=r,
            ))

        self._fed += 1
        self._z += 1
        if self._z == self.nz:
            self._z = 0
            self._y += 1
            if self._y == self.ny:
                self._y = 0
                self._x += 1
        return emitted

    def feed_block(self, block: np.ndarray) -> list[GeneralWindow]:
        """Stream a whole block; return every full window."""
        if block.shape != (self.nx, self.ny, self.nz):
            raise ShiftBufferError(
                f"block shape {block.shape} does not match extents "
                f"({self.nx}, {self.ny}, {self.nz})"
            )
        emitted: list[GeneralWindow] = []
        for value in block.reshape(-1):
            emitted.extend(self.feed(float(value)))
        return emitted
