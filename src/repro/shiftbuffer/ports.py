"""On-chip memory port accounting for the shift buffer.

BRAM/M20K blocks are dual ported: at most two accesses (any mix of reads
and writes) per block per cycle.  The paper's claim — "given correct
partitioning, there are never more than two memory accesses per cycle on
the 3D and 2D rectangular array" — is a structural property of the shift
buffer update sequence, and :class:`MemoryPortTracker` verifies it on every
simulated cycle.

The tracker also demonstrates the Intel-specific finding of section III-B:
*without* splitting the dimension-3 arrays apart, a single memory would see
more than two accesses per cycle, forcing the tooling to raise the
initiation interval.  Constructing a buffer with ``partitioned=False``
reproduces exactly that conflict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PortConflictError

__all__ = ["MemoryPortTracker", "PortReport"]

#: Ports per on-chip RAM block (BRAM and M20K are both dual ported).
DUAL_PORT: int = 2


@dataclass
class PortReport:
    """Access statistics for one logical memory across a run."""

    name: str
    cycles: int = 0
    total_accesses: int = 0
    max_accesses_per_cycle: int = 0

    @property
    def mean_accesses_per_cycle(self) -> float:
        return self.total_accesses / self.cycles if self.cycles else 0.0


class MemoryPortTracker:
    """Counts accesses per logical memory per cycle and enforces port limits.

    Parameters
    ----------
    ports:
        Ports available per memory per cycle (2 for dual-ported BRAM).
    enforce:
        When True, exceeding the port count raises
        :class:`~repro.errors.PortConflictError` — the simulator equivalent
        of the HLS tool refusing II=1.  When False, conflicts are only
        recorded, letting experiments *measure* how bad an unpartitioned
        layout would be.
    """

    def __init__(self, *, ports: int = DUAL_PORT, enforce: bool = True) -> None:
        if ports < 1:
            raise ValueError(f"ports must be >= 1, got {ports}")
        self.ports = ports
        self.enforce = enforce
        self._this_cycle: dict[str, int] = {}
        self._reports: dict[str, PortReport] = {}
        self.conflicts: int = 0
        self._cycle_open = False

    # -- cycle protocol --------------------------------------------------------

    def begin_cycle(self) -> None:
        """Start a new cycle's accounting window."""
        self._this_cycle = {}
        self._cycle_open = True

    def access(self, memory: str, count: int = 1) -> None:
        """Record ``count`` accesses to ``memory`` in the current cycle."""
        if not self._cycle_open:
            raise PortConflictError(
                "access() called outside a begin_cycle/end_cycle window"
            )
        new_total = self._this_cycle.get(memory, 0) + count
        self._this_cycle[memory] = new_total
        if new_total > self.ports:
            self.conflicts += 1
            if self.enforce:
                raise PortConflictError(
                    f"memory {memory!r} accessed {new_total} times in one "
                    f"cycle but has only {self.ports} ports; partition the "
                    f"array (HLS array_partition / manual split on Intel)"
                )

    def end_cycle(self) -> None:
        """Close the cycle and fold counts into the lifetime reports."""
        for memory, count in self._this_cycle.items():
            report = self._reports.setdefault(memory, PortReport(memory))
            report.total_accesses += count
            if count > report.max_accesses_per_cycle:
                report.max_accesses_per_cycle = count
        for report in self._reports.values():
            report.cycles += 1
        self._cycle_open = False

    def record_steady(self, pattern: dict[str, int], cycles: int) -> None:
        """Replay ``cycles`` identical cycles of ``pattern`` in one step.

        The shift buffer's per-feed access pattern is a compile-time
        constant, so batched feeds (``feed_bulk``/``feed_block``) account
        for it in bulk instead of opening one window per value.  The
        result is identical to ``cycles`` begin/access/end rounds:
        conflicts are counted (and raised, when enforcing) per cycle, and
        every known report ages by ``cycles`` like :meth:`end_cycle` does.
        """
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        if cycles == 0:
            return
        if self._cycle_open:
            raise PortConflictError(
                "record_steady() called inside a begin_cycle/end_cycle window"
            )
        for memory, count in pattern.items():
            if count > self.ports:
                self.conflicts += cycles
                if self.enforce:
                    raise PortConflictError(
                        f"memory {memory!r} accessed {count} times in one "
                        f"cycle but has only {self.ports} ports; partition "
                        f"the array (HLS array_partition / manual split on "
                        f"Intel)"
                    )
        for memory, count in pattern.items():
            report = self._reports.setdefault(memory, PortReport(memory))
            report.total_accesses += count * cycles
            if count > report.max_accesses_per_cycle:
                report.max_accesses_per_cycle = count
        for report in self._reports.values():
            report.cycles += cycles

    # -- results -----------------------------------------------------------------

    def report(self, memory: str) -> PortReport:
        return self._reports.get(memory, PortReport(memory))

    def reports(self) -> dict[str, PortReport]:
        return dict(self._reports)

    @property
    def worst_case(self) -> int:
        """Largest per-cycle access count seen on any memory."""
        return max(
            (r.max_accesses_per_cycle for r in self._reports.values()),
            default=0,
        )

    def achievable_ii(self) -> int:
        """Initiation interval the memory system forces on the design.

        A memory that needs N accesses per input with P ports can accept a
        new input only every ceil(N / P) cycles — this is how an
        unpartitioned layout shows up as II=2 in the vendor reports.
        """
        if self.worst_case == 0:
            return 1
        return -(-self.worst_case // self.ports)  # ceil division
