"""Chunking with halo overlap (Fig. 4 of the paper).

The shift buffer's on-chip memory is bounded by the Y and Z extents only,
so the kernel decouples domain size from FPGA resources by processing the
Y dimension in fixed-width chunks.  Because the stencil is depth 1, two
neighbouring chunks overlap by two grid points — "one for the right halo of
the left chunk and the other for the left halo of the right chunk".

The same planner serves the host-side X chunking that the overlapped
PCIe-transfer schedule of Section IV uses (each X chunk is a smaller
data-set and a shorter kernel execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ChunkingError
from repro.lint.diagnostics import Diagnostic, Location, Severity

__all__ = ["Chunk", "ChunkPlan", "plan_chunks"]

#: Stencil halo depth; fixed by the PW scheme.
HALO: int = 1

#: Below this chunk width the paper observed external-memory efficiency
#: degrading (short non-contiguous bursts); at or above, impact is
#: negligible.  Used by the memory model, recorded here with the planner.
MIN_EFFICIENT_CHUNK: int = 8


@dataclass(frozen=True)
class Chunk:
    """One chunk of a 1-D decomposition in *extended* (halo) coordinates.

    ``read_start:read_stop`` is the slab the kernel streams in (interior
    plus one halo cell each side); ``write_start:write_stop`` is the
    interior slab whose results this chunk owns.  All coordinates index the
    halo-extended axis (so 0 is the left halo cell of the full domain).
    """

    index: int
    read_start: int
    read_stop: int
    write_start: int
    write_stop: int

    @property
    def read_width(self) -> int:
        return self.read_stop - self.read_start

    @property
    def write_width(self) -> int:
        return self.write_stop - self.write_start

    def __post_init__(self) -> None:
        if self.read_width < 3:
            raise ChunkingError(
                f"chunk {self.index} reads only {self.read_width} cells; a "
                f"depth-1 stencil needs at least 3"
            )
        if not (self.read_start <= self.write_start
                and self.write_stop <= self.read_stop):
            raise ChunkingError(
                f"chunk {self.index}: write range [{self.write_start}, "
                f"{self.write_stop}) outside read range [{self.read_start}, "
                f"{self.read_stop})"
            )


@dataclass(frozen=True)
class ChunkPlan:
    """A full 1-D chunking of an axis of ``interior`` cells."""

    interior: int
    chunk_width: int
    chunks: tuple[Chunk, ...]
    halo: int = field(default=HALO)

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def total_read_cells(self) -> int:
        """Cells streamed in across all chunks (counts the overlap twice)."""
        return sum(c.read_width for c in self.chunks)

    @property
    def overlap_cells(self) -> int:
        """Extra cells read due to chunking, relative to one big chunk."""
        return self.total_read_cells - (self.interior + 2 * self.halo)

    @property
    def redundancy(self) -> float:
        """Read amplification factor (1.0 = no overlap overhead)."""
        return self.total_read_cells / (self.interior + 2 * self.halo)

    def coverage_diagnostics(self) -> list[Diagnostic]:
        """Every coverage finding, as structured diagnostics.

        Errors (``KC102`` seam gap/overlap, ``KC103`` interior not fully
        covered) mean the plan would corrupt results; warnings and infos
        flag legal-but-questionable plans: ``KC101`` chunks narrower than
        the seam overlap (halo-dominated reads), ``KC108`` a single-chunk
        domain (chunking is a no-op), ``KC109`` a ragged tail chunk
        (interior not divisible by the chunk width).
        """
        diagnostics: list[Diagnostic] = []
        if not self.chunks:
            diagnostics.append(Diagnostic(
                code="KC103", severity=Severity.ERROR,
                message=f"plan has no chunks for interior {self.interior}",
                location=Location("chunk", "plan"),
                hint="plan_chunks() always produces at least one chunk; "
                     "hand-built plans must too",
            ))
            return diagnostics
        if self.chunk_width < 2 * self.halo:
            diagnostics.append(Diagnostic(
                code="KC101", severity=Severity.WARNING,
                message=(
                    f"chunk width {self.chunk_width} is narrower than the "
                    f"{2 * self.halo}-cell seam overlap; halo cells dominate "
                    f"every read (redundancy {self.redundancy:.2f}x)"
                ),
                location=Location("chunk", "plan", "chunk_width"),
                hint=f"use a chunk width of at least "
                     f"{max(2 * self.halo, MIN_EFFICIENT_CHUNK)}",
            ))
        cursor = self.halo
        for chunk in self.chunks:
            if chunk.write_start != cursor:
                kind = "overlap" if chunk.write_start < cursor else "gap"
                diagnostics.append(Diagnostic(
                    code="KC102", severity=Severity.ERROR,
                    message=(
                        f"chunk {chunk.index} writes from "
                        f"{chunk.write_start}, expected {cursor}: {kind} in "
                        f"coverage"
                    ),
                    location=Location("chunk", str(chunk.index),
                                      "write_start"),
                    hint="neighbouring chunks must abut exactly; only the "
                         "*read* ranges may overlap (by 2*halo cells)",
                ))
            cursor = chunk.write_stop
        if cursor != self.interior + self.halo:
            diagnostics.append(Diagnostic(
                code="KC103", severity=Severity.ERROR,
                message=(
                    f"chunks cover interior up to {cursor - self.halo}, "
                    f"expected {self.interior}"
                ),
                location=Location("chunk", "plan"),
                hint="the last chunk's write_stop must reach the end of "
                     "the interior",
            ))
        if self.num_chunks == 1:
            diagnostics.append(Diagnostic(
                code="KC108", severity=Severity.INFO,
                message=(
                    f"single-chunk domain (interior {self.interior} <= "
                    f"chunk width {self.chunk_width}): no seam overlap, "
                    f"on-chip buffers sized by the domain itself"
                ),
                location=Location("chunk", "plan"),
            ))
        elif self.chunks[-1].write_width != self.chunk_width:
            diagnostics.append(Diagnostic(
                code="KC109", severity=Severity.INFO,
                message=(
                    f"interior {self.interior} not divisible by chunk width "
                    f"{self.chunk_width}: tail chunk {self.chunks[-1].index} "
                    f"is {self.chunks[-1].write_width} wide"
                ),
                location=Location("chunk", str(self.chunks[-1].index)),
                hint="a ragged tail is correct but slightly less "
                     "burst-efficient; divisible widths avoid it",
            ))
        return diagnostics

    def validate_coverage(self) -> None:
        """Check the chunks tile the interior exactly once, in order.

        Thin raising wrapper over :meth:`coverage_diagnostics`: collects
        every violation, then reports all error-severity findings in one
        :class:`~repro.errors.ChunkingError`.
        """
        errors = [d for d in self.coverage_diagnostics()
                  if d.severity is Severity.ERROR]
        if errors:
            raise ChunkingError("; ".join(d.message for d in errors))


def plan_chunks(interior: int, chunk_width: int, *,
                halo: int = HALO) -> ChunkPlan:
    """Split an axis of ``interior`` cells into chunks of ``chunk_width``.

    Parameters
    ----------
    interior:
        Number of computational cells along the axis (halo excluded).
    chunk_width:
        Interior cells per chunk (the on-chip buffer must hold
        ``chunk_width + 2 * halo`` cells).  The final chunk may be
        narrower.
    halo:
        Stencil radius (1 for the PW scheme; larger radii serve the
        radius-r :class:`~repro.shiftbuffer.general.GeneralShiftBuffer`).

    Returns
    -------
    ChunkPlan
        Chunks in ascending order; neighbouring chunks' *read* ranges
        overlap by exactly ``2 * halo`` cells, as in Fig. 4.
    """
    if interior < 1:
        raise ChunkingError(f"interior must be >= 1, got {interior}")
    if chunk_width < 1:
        raise ChunkingError(f"chunk_width must be >= 1, got {chunk_width}")
    if halo < 1:
        raise ChunkingError(f"halo must be >= 1, got {halo}")
    if chunk_width <= halo:
        raise ChunkingError(
            f"chunk_width ({chunk_width}) must exceed the halo ({halo}): "
            f"each chunk streams chunk_width + {2 * halo} cells, so at this "
            f"width the seam overlap swallows the interior entirely; use a "
            f"chunk width of at least {halo + 1} (>= {MIN_EFFICIENT_CHUNK} "
            f"for efficient bursts)"
        )

    chunks: list[Chunk] = []
    start = 0  # interior coordinate
    index = 0
    while start < interior:
        width = min(chunk_width, interior - start)
        write_start = halo + start
        write_stop = write_start + width
        chunks.append(
            Chunk(
                index=index,
                read_start=write_start - halo,
                read_stop=write_stop + halo,
                write_start=write_start,
                write_stop=write_stop,
            )
        )
        start += width
        index += 1

    plan = ChunkPlan(interior=interior, chunk_width=chunk_width,
                     chunks=tuple(chunks), halo=halo)
    plan.validate_coverage()
    return plan
