"""Chunking with halo overlap (Fig. 4 of the paper).

The shift buffer's on-chip memory is bounded by the Y and Z extents only,
so the kernel decouples domain size from FPGA resources by processing the
Y dimension in fixed-width chunks.  Because the stencil is depth 1, two
neighbouring chunks overlap by two grid points — "one for the right halo of
the left chunk and the other for the left halo of the right chunk".

The same planner serves the host-side X chunking that the overlapped
PCIe-transfer schedule of Section IV uses (each X chunk is a smaller
data-set and a shorter kernel execution).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ChunkingError

__all__ = ["Chunk", "ChunkPlan", "plan_chunks"]

#: Stencil halo depth; fixed by the PW scheme.
HALO: int = 1

#: Below this chunk width the paper observed external-memory efficiency
#: degrading (short non-contiguous bursts); at or above, impact is
#: negligible.  Used by the memory model, recorded here with the planner.
MIN_EFFICIENT_CHUNK: int = 8


@dataclass(frozen=True)
class Chunk:
    """One chunk of a 1-D decomposition in *extended* (halo) coordinates.

    ``read_start:read_stop`` is the slab the kernel streams in (interior
    plus one halo cell each side); ``write_start:write_stop`` is the
    interior slab whose results this chunk owns.  All coordinates index the
    halo-extended axis (so 0 is the left halo cell of the full domain).
    """

    index: int
    read_start: int
    read_stop: int
    write_start: int
    write_stop: int

    @property
    def read_width(self) -> int:
        return self.read_stop - self.read_start

    @property
    def write_width(self) -> int:
        return self.write_stop - self.write_start

    def __post_init__(self) -> None:
        if self.read_width < 3:
            raise ChunkingError(
                f"chunk {self.index} reads only {self.read_width} cells; a "
                f"depth-1 stencil needs at least 3"
            )
        if not (self.read_start <= self.write_start
                and self.write_stop <= self.read_stop):
            raise ChunkingError(
                f"chunk {self.index}: write range [{self.write_start}, "
                f"{self.write_stop}) outside read range [{self.read_start}, "
                f"{self.read_stop})"
            )


@dataclass(frozen=True)
class ChunkPlan:
    """A full 1-D chunking of an axis of ``interior`` cells."""

    interior: int
    chunk_width: int
    chunks: tuple[Chunk, ...]

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def total_read_cells(self) -> int:
        """Cells streamed in across all chunks (counts the overlap twice)."""
        return sum(c.read_width for c in self.chunks)

    @property
    def overlap_cells(self) -> int:
        """Extra cells read due to chunking, relative to one big chunk."""
        return self.total_read_cells - (self.interior + 2 * HALO)

    @property
    def redundancy(self) -> float:
        """Read amplification factor (1.0 = no overlap overhead)."""
        return self.total_read_cells / (self.interior + 2 * HALO)

    def validate_coverage(self) -> None:
        """Check the chunks tile the interior exactly once, in order."""
        cursor = HALO
        for chunk in self.chunks:
            if chunk.write_start != cursor:
                raise ChunkingError(
                    f"chunk {chunk.index} writes from {chunk.write_start}, "
                    f"expected {cursor}: gap or overlap in coverage"
                )
            cursor = chunk.write_stop
        if cursor != self.interior + HALO:
            raise ChunkingError(
                f"chunks cover interior up to {cursor - HALO}, expected "
                f"{self.interior}"
            )


def plan_chunks(interior: int, chunk_width: int) -> ChunkPlan:
    """Split an axis of ``interior`` cells into chunks of ``chunk_width``.

    Parameters
    ----------
    interior:
        Number of computational cells along the axis (halo excluded).
    chunk_width:
        Interior cells per chunk (the on-chip buffer must hold
        ``chunk_width + 2`` cells).  The final chunk may be narrower.

    Returns
    -------
    ChunkPlan
        Chunks in ascending order; neighbouring chunks' *read* ranges
        overlap by exactly ``2 * HALO`` cells, as in Fig. 4.
    """
    if interior < 1:
        raise ChunkingError(f"interior must be >= 1, got {interior}")
    if chunk_width < 1:
        raise ChunkingError(f"chunk_width must be >= 1, got {chunk_width}")

    chunks: list[Chunk] = []
    start = 0  # interior coordinate
    index = 0
    while start < interior:
        width = min(chunk_width, interior - start)
        write_start = HALO + start
        write_stop = write_start + width
        chunks.append(
            Chunk(
                index=index,
                read_start=write_start - HALO,
                read_stop=write_stop + HALO,
                write_start=write_start,
                write_stop=write_stop,
            )
        )
        start += width
        index += 1

    plan = ChunkPlan(interior=interior, chunk_width=chunk_width,
                     chunks=tuple(chunks))
    plan.validate_coverage()
    return plan
