"""Device power models.

Fig. 7 of the paper reports whole-board/package power while running the
advection workload, captured with RAPL (CPU), NVIDIA-SMI (GPU), XRT
(Alveo) and ``aocl_mmd_card_info_fn`` (Stratix 10).  Key observations the
model reproduces:

* CPU and GPU draw several times more power than either FPGA;
* the Stratix 10 draws ~50% more than the Alveo U280;
* switching the U280 from HBM2 to DDR adds only ~12 W — most of the
  Stratix/Alveo gap is *not* the memory technology.

The model is a static board power plus a dynamic term per active kernel
plus a memory-system activity term, time-averaged over a run profile in
which compute and transfer phases can overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["PowerModel", "PowerSample"]


@dataclass(frozen=True)
class PowerSample:
    """Average power and energy for one run."""

    average_watts: float
    energy_joules: float
    runtime_seconds: float


@dataclass(frozen=True)
class PowerModel:
    """Board/package power as a function of activity.

    Parameters
    ----------
    static_watts:
        Idle board power (shell, clocks, fans as reported by the board
        telemetry).
    dynamic_watts_per_kernel:
        Added power per busy kernel replica (or per busy core-group /
        SM-group on CPU/GPU, folded into one number per device).
    memory_watts:
        Added power while the named memory system is streaming, keyed by
        memory name; e.g. ``{"hbm2": 8.0, "ddr": 20.0}`` puts the U280's
        measured +12 W DDR delta into the model.
    transfer_watts:
        Added power while PCIe DMA is active.
    """

    static_watts: float
    dynamic_watts_per_kernel: float
    memory_watts: dict[str, float]
    transfer_watts: float = 5.0

    def __post_init__(self) -> None:
        if self.static_watts <= 0:
            raise ConfigurationError("static power must be positive")
        if self.dynamic_watts_per_kernel < 0 or self.transfer_watts < 0:
            raise ConfigurationError("dynamic power terms must be >= 0")
        if any(w < 0 for w in self.memory_watts.values()):
            raise ConfigurationError("memory power terms must be >= 0")

    def active_watts(self, num_kernels: int, memory: str, *,
                     transferring: bool = False) -> float:
        """Instantaneous draw with ``num_kernels`` busy on ``memory``."""
        if num_kernels < 0:
            raise ConfigurationError(
                f"num_kernels must be >= 0, got {num_kernels}"
            )
        try:
            mem_watts = self.memory_watts[memory] if num_kernels else 0.0
        except KeyError:
            raise ConfigurationError(
                f"no power entry for memory {memory!r}; have "
                f"{sorted(self.memory_watts)}"
            ) from None
        return (
            self.static_watts
            + num_kernels * self.dynamic_watts_per_kernel
            + mem_watts
            + (self.transfer_watts if transferring else 0.0)
        )

    def profile(self, *, runtime: float, compute_time: float,
                transfer_time: float, num_kernels: int, memory: str,
                ) -> PowerSample:
        """Time-averaged power over a run.

        ``compute_time`` and ``transfer_time`` are the *busy* durations of
        the kernel and DMA engines within ``runtime``; with overlap they
        sum to more than the runtime and the phases stack.
        """
        if runtime <= 0:
            raise ConfigurationError(f"runtime must be positive, got {runtime}")
        compute_time = min(compute_time, runtime)
        transfer_time = min(transfer_time, runtime)
        compute_frac = compute_time / runtime
        transfer_frac = transfer_time / runtime
        mem_watts = self.memory_watts.get(memory, 0.0)
        average = (
            self.static_watts
            + compute_frac * (
                num_kernels * self.dynamic_watts_per_kernel + mem_watts
            )
            + transfer_frac * self.transfer_watts
        )
        return PowerSample(
            average_watts=average,
            energy_joules=average * runtime,
            runtime_seconds=runtime,
        )
