"""Hardware models: FPGAs, memory systems, PCIe links, clocks and power.

The paper's evaluation hardware (Xilinx Alveo U280, Bittware 520N / Intel
Stratix 10 GX 2800, 24-core Xeon Platinum 8260M, NVIDIA Tesla V100) is not
available to a Python reproduction, so this subpackage models each device
from its published specifications plus a small set of effective-throughput
calibration constants derived from the paper's own measurements (see
:mod:`repro.perf.calibration`).  All performance arithmetic in the
experiment harness flows through these models — nothing is a hard-coded
result.
"""

from repro.hardware.clock import ClockModel
from repro.hardware.cpu import CPUModel
from repro.hardware.device import FPGADevice
from repro.hardware.devices import (
    ALVEO_U280,
    STRATIX10_GX2800,
    TESLA_V100,
    XEON_8260M,
    device_by_name,
)
from repro.hardware.gpu import GPUModel
from repro.hardware.memory import MemorySpec, StreamingMemoryModel
from repro.hardware.pcie import PCIeLink
from repro.hardware.power import PowerModel
from repro.hardware.resources import ResourceVector, estimate_kernel_resources

__all__ = [
    "ClockModel",
    "CPUModel",
    "GPUModel",
    "FPGADevice",
    "MemorySpec",
    "StreamingMemoryModel",
    "PCIeLink",
    "PowerModel",
    "ResourceVector",
    "estimate_kernel_resources",
    "ALVEO_U280",
    "STRATIX10_GX2800",
    "XEON_8260M",
    "TESLA_V100",
    "device_by_name",
]
