"""Kernel clock frequency models.

The Alveo U280 held 300 MHz regardless of kernel count; the Stratix 10
achieved 398 MHz for a single kernel but degraded to 250 MHz at five as
placement and routing pressure grew (Section IV).  :class:`ClockModel`
captures a per-kernel-count frequency table with linear interpolation, so
experiments at intermediate counts behave sensibly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ClockModel"]


@dataclass(frozen=True)
class ClockModel:
    """Achieved kernel clock as a function of replicated kernel count.

    Parameters
    ----------
    table_mhz:
        ``table_mhz[i]`` is the clock in MHz with ``i + 1`` kernels.
        Counts past the end of the table reuse the last entry.
    """

    table_mhz: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.table_mhz:
            raise ConfigurationError("clock table must not be empty")
        if any(f <= 0 for f in self.table_mhz):
            raise ConfigurationError("clock frequencies must be positive")
        # Frequencies must be non-increasing: more kernels never clock faster.
        for a, b in zip(self.table_mhz, self.table_mhz[1:]):
            if b > a:
                raise ConfigurationError(
                    "clock table must be non-increasing in kernel count"
                )

    @classmethod
    def constant(cls, mhz: float) -> "ClockModel":
        """A clock unaffected by kernel count (the Alveo's 300 MHz)."""
        return cls(table_mhz=(mhz,))

    def frequency_hz(self, num_kernels: int) -> float:
        """Achieved clock in Hz for ``num_kernels`` replicas."""
        if num_kernels < 1:
            raise ConfigurationError(
                f"num_kernels must be >= 1, got {num_kernels}"
            )
        index = min(num_kernels - 1, len(self.table_mhz) - 1)
        return self.table_mhz[index] * 1e6

    def frequency_mhz(self, num_kernels: int) -> float:
        return self.frequency_hz(num_kernels) / 1e6
