"""FPGA resource vectors and kernel resource estimation.

Xilinx and Intel count fabric differently (LUT+FF+BRAM+URAM+DSP slices
versus ALM+MLAB+M20K+variable-precision DSP blocks), so the resource
vector keeps both families' axes and a device simply leaves the other
family's axes at zero capacity.

The kernel estimate reproduces the paper's placement outcome — a single
kernel occupies ~15% of either chip; six fit on the U280 and five on the
Stratix 10 — from first-principles component counts (shift-buffer RAM,
double-precision operator DSP costs, control logic) rather than from the
final answer, so changing e.g. the chunk width or going single-precision
moves the fit the way it would in the tools.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ResourceError
from repro.kernel.config import KernelConfig

__all__ = ["ResourceVector", "estimate_kernel_resources", "fit_kernels"]

#: Fraction of raw fabric usable before routing congestion defeats timing
#: closure; both vendors' tools struggle past ~80-85% utilisation.
ROUTABLE_FRACTION: float = 0.85

# Double-precision floating point operator costs.
# Xilinx UltraScale+ (DSP48E2, logic-assisted):
_XILINX_DSP_PER_DP_MUL: int = 10
_XILINX_DSP_PER_DP_ADD: int = 3
_XILINX_LUT_PER_DP_OP: int = 800
# Intel Stratix 10 (DSP blocks are single-precision native; DP is
# ALM-heavy):
_INTEL_DSP_PER_DP_MUL: int = 8
_INTEL_DSP_PER_DP_ADD: int = 4
_INTEL_ALM_PER_DP_OP: int = 2000

#: Multiplies / adds per advection stage (of the 21 ops: products dominate
#: the v*(w+w) patterns).
_DP_MULS_PER_STAGE: int = 10
_DP_ADDS_PER_STAGE: int = 11

#: BRAM18 block bytes (Xilinx) and M20K block bytes (Intel).
BRAM18_BYTES: int = 18 * 1024 // 8 * 8  # 18 kbit
M20K_BYTES: int = 20 * 1024 // 8 * 8    # 20 kbit


@dataclass(frozen=True)
class ResourceVector:
    """A quantity of FPGA fabric, on both vendors' axes."""

    luts: int = 0
    registers: int = 0
    bram_bytes: int = 0
    uram_bytes: int = 0
    dsp: int = 0
    alms: int = 0
    m20k_bytes: int = 0
    mlab_bytes: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)
        })

    def scaled(self, factor: int) -> "ResourceVector":
        """This vector replicated ``factor`` times (``factor`` kernels)."""
        if factor < 0:
            raise ResourceError(f"scale factor must be >= 0, got {factor}")
        return ResourceVector(**{
            f.name: getattr(self, f.name) * factor for f in fields(self)
        })

    def fits_in(self, capacity: "ResourceVector", *,
                routable: float = ROUTABLE_FRACTION) -> bool:
        """True if this usage fits in ``capacity`` after routing derate."""
        for f in fields(self):
            need = getattr(self, f.name)
            have = getattr(capacity, f.name)
            if need > 0 and need > have * routable:
                return False
        return True

    def utilisation(self, capacity: "ResourceVector") -> dict[str, float]:
        """Fractional use of each non-zero capacity axis."""
        out: dict[str, float] = {}
        for f in fields(self):
            have = getattr(capacity, f.name)
            if have > 0:
                out[f.name] = getattr(self, f.name) / have
        return out


def estimate_kernel_resources(config: KernelConfig, family: str) -> ResourceVector:
    """Estimate the fabric one advection kernel instance consumes.

    Parameters
    ----------
    config:
        Kernel design (the shift-buffer footprint follows the chunk width
        and column height).
    family:
        ``"xilinx"`` or ``"intel"``.
    """
    muls = 3 * _DP_MULS_PER_STAGE
    adds = 3 * _DP_ADDS_PER_STAGE
    ops = muls + adds

    # Shift buffers (three fields) in on-chip RAM; FIFO streams add ~10%.
    buffer_bytes = int(config.buffer_bytes * 1.10)

    if family == "xilinx":
        return ResourceVector(
            luts=ops * _XILINX_LUT_PER_DP_OP + 60_000,  # + control/infrastructure
            registers=ops * 1_600 + 80_000,
            bram_bytes=buffer_bytes,
            dsp=muls * _XILINX_DSP_PER_DP_MUL + adds * _XILINX_DSP_PER_DP_ADD,
        )
    if family == "intel":
        return ResourceVector(
            alms=ops * _INTEL_ALM_PER_DP_OP + 18_000,
            m20k_bytes=buffer_bytes,
            dsp=muls * _INTEL_DSP_PER_DP_MUL + adds * _INTEL_DSP_PER_DP_ADD,
        )
    raise ResourceError(f"unknown FPGA family {family!r}")


def fit_kernels(kernel: ResourceVector, capacity: ResourceVector,
                shell: ResourceVector | None = None, *,
                routable: float = ROUTABLE_FRACTION) -> int:
    """Largest number of kernel replicas that fit alongside the shell.

    The shell (PCIe/DMA/memory controllers) is placed first; kernels then
    replicate until some axis exceeds the routable fraction of capacity.
    """
    shell = shell or ResourceVector()
    count = 0
    while (shell + kernel.scaled(count + 1)).fits_in(capacity, routable=routable):
        count += 1
        if count > 1024:  # pragma: no cover - misconfiguration guard
            raise ResourceError("fit_kernels runaway; capacity looks unbounded")
    return count
