"""The FPGA accelerator card model.

:class:`FPGADevice` composes the fabric capacity, clock behaviour, memory
systems, PCIe link, and power model of one board, and answers the
questions the experiments ask:

* how many kernel replicas fit (Section IV: 6 on the U280, 5 on the
  Stratix 10),
* which memory space a problem should use (prefer HBM2 while the data
  fits — Table II's policy),
* how long a kernel invocation takes (the roofline of pipeline cycles
  versus memory streaming), and
* what the board draws while doing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.flops import grid_flops
from repro.core.grid import Grid, GridDecomposition
from repro.errors import CapacityError, ConfigurationError
from repro.hardware.clock import ClockModel
from repro.hardware.memory import StreamingMemoryModel
from repro.hardware.pcie import PCIeLink
from repro.hardware.power import PowerModel
from repro.hardware.resources import ResourceVector, estimate_kernel_resources, fit_kernels
from repro.kernel.config import KernelConfig
from repro.kernel.cycle_model import KernelCycleModel

__all__ = ["FPGADevice", "InvocationEstimate"]


@dataclass(frozen=True)
class InvocationEstimate:
    """Timing decomposition of one kernel invocation on a device."""

    seconds: float
    compute_seconds: float
    memory_seconds: float
    num_kernels: int
    memory: str
    clock_hz: float

    @property
    def memory_bound(self) -> bool:
        return self.memory_seconds > self.compute_seconds

    def gflops(self, grid: Grid) -> float:
        """Kernel-only GFLOPS for ``grid`` (paper convention)."""
        return grid_flops(grid) / self.seconds / 1e9


@dataclass(frozen=True)
class FPGADevice:
    """One accelerator card."""

    name: str
    family: str  # "xilinx" | "intel"
    capacity: ResourceVector
    shell: ResourceVector
    memories: dict[str, StreamingMemoryModel]
    pcie: PCIeLink
    clock: ClockModel
    power: PowerModel
    #: Preference order for placing data (first space it fits in wins).
    memory_preference: tuple[str, ...] = field(default=("hbm2", "ddr"))
    #: Fixed per-invocation cost (kernel launch, runtime enqueue); this is
    #: why small problems undershoot in Table II.
    launch_overhead_s: float = 4e-4

    def __post_init__(self) -> None:
        if self.family not in ("xilinx", "intel"):
            raise ConfigurationError(f"unknown FPGA family {self.family!r}")
        for name in self.memory_preference:
            if name not in self.memories and name != "hbm2":
                raise ConfigurationError(
                    f"memory preference {name!r} not among memories "
                    f"{sorted(self.memories)}"
                )

    # -- placement -------------------------------------------------------------

    def kernel_resources(self, config: KernelConfig) -> ResourceVector:
        return estimate_kernel_resources(config, self.family)

    def max_kernels(self, config: KernelConfig) -> int:
        """Kernel replicas that fit on this device for ``config``."""
        return fit_kernels(self.kernel_resources(config), self.capacity,
                           self.shell)

    def select_memory(self, bytes_needed: int) -> str:
        """First preferred memory space that holds ``bytes_needed``."""
        for name in self.memory_preference:
            memory = self.memories.get(name)
            if memory is not None and memory.fits(bytes_needed):
                return name
        raise CapacityError(
            f"{self.name}: no memory space holds {bytes_needed} bytes "
            f"(capacities: "
            + ", ".join(f"{n}={m.spec.capacity_bytes}"
                        for n, m in self.memories.items())
            + ")"
        )

    def memory_model(self, name: str) -> StreamingMemoryModel:
        try:
            return self.memories[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.name} has no memory {name!r}; have "
                f"{sorted(self.memories)}"
            ) from None

    # -- timing ---------------------------------------------------------------

    def invocation(self, config: KernelConfig, grid: Grid, *,
                   num_kernels: int = 1, memory: str | None = None,
                   ) -> InvocationEstimate:
        """Kernel-only invocation time for ``grid`` with ``num_kernels``.

        The domain is decomposed along X; each kernel's time is the larger
        of its pipeline time (cycle model at the achieved clock) and its
        share of memory streaming; the invocation additionally respects
        the memory system's aggregate bandwidth.
        """
        if num_kernels < 1:
            raise ConfigurationError(
                f"num_kernels must be >= 1, got {num_kernels}"
            )
        data_bytes = config.bytes_per_cell_cycle * grid.num_cells  # resident
        mem_name = memory or self.select_memory(data_bytes)
        mem = self.memory_model(mem_name)
        clock_hz = self.clock.frequency_hz(num_kernels)
        burst = mem.chunk_burst_bytes(
            min(config.chunk_width, grid.ny), grid.nz,
            itemsize=config.word_bytes,
        )

        decomp = GridDecomposition(grid, min(num_kernels, grid.nx))
        worst_compute = 0.0
        worst_memory = 0.0
        total_traffic = 0.0
        for part in range(decomp.parts):
            sub = decomp.subgrid(part)
            model = KernelCycleModel(config.for_grid(sub))
            worst_compute = max(worst_compute,
                                model.cycles() / clock_hz)
            # Streamed traffic: every fed cell is a three-field read,
            # every interior cell a three-value write.
            traffic = (config.in_bytes_per_cell
                       * model.breakdown().feeds_total
                       + config.out_bytes_per_cell * sub.num_cells)
            total_traffic += traffic
            worst_memory = max(
                worst_memory,
                traffic / mem.effective_per_kernel(burst_bytes=burst),
            )
        aggregate_time = total_traffic / mem.effective_aggregate(
            decomp.parts, burst_bytes=burst
        )
        memory_seconds = max(worst_memory, aggregate_time)
        return InvocationEstimate(
            seconds=max(worst_compute, memory_seconds) + self.launch_overhead_s,
            compute_seconds=worst_compute,
            memory_seconds=memory_seconds,
            num_kernels=decomp.parts,
            memory=mem_name,
            clock_hz=clock_hz,
        )
