"""The NVIDIA Tesla V100 baseline.

The paper's GPU implementation is the OpenACC port of MONC [13], using the
whole GPU (so there is no "number of kernels" axis) and CUDA streams for
the overlapped comparison.  The model is a kernel-rate roofline (the
measured 367.2 GFLOPS of Table I), an on-board HBM2 capacity limit (16 GB
— which is why the 536M-cell / 25.8 GB configuration has no GPU result),
and the shared PCIe transfer model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.flops import grid_flops
from repro.core.grid import Grid
from repro.errors import CapacityError, ConfigurationError
from repro.hardware.pcie import PCIeLink
from repro.hardware.power import PowerModel

__all__ = ["GPUModel"]


@dataclass(frozen=True)
class GPUModel:
    """Performance/power model of a data-centre GPU on the PW kernel."""

    name: str
    kernel_gflops: float
    memory_capacity_bytes: int
    pcie: PCIeLink
    power: PowerModel
    #: Per-run stream/data-region setup cost (CUDA streams, OpenACC data
    #: construct creation); amortised away on the FPGAs whose buffers are
    #: bulk-registered once.
    setup_seconds: float = 5e-3

    def __post_init__(self) -> None:
        if self.kernel_gflops <= 0:
            raise ConfigurationError("kernel_gflops must be positive")
        if self.memory_capacity_bytes <= 0:
            raise ConfigurationError("memory capacity must be positive")

    def fits(self, grid: Grid, *, word_bytes: int = 8) -> bool:
        """True if the six working arrays fit in device memory."""
        return 6 * word_bytes * grid.num_cells <= self.memory_capacity_bytes

    def require_fits(self, grid: Grid, *, word_bytes: int = 8) -> None:
        if not self.fits(grid, word_bytes=word_bytes):
            needed = 6 * word_bytes * grid.num_cells
            raise CapacityError(
                f"{self.name}: problem needs {needed / 2**30:.1f} GiB but "
                f"device has {self.memory_capacity_bytes / 2**30:.1f} GiB"
            )

    def kernel_time(self, grid: Grid) -> float:
        """Kernel-only seconds for one invocation (data already resident)."""
        self.require_fits(grid)
        return grid_flops(grid) / (self.kernel_gflops * 1e9)

    def run_power_watts(self) -> float:
        """Board power while the kernel and DMA engines are busy."""
        return self.power.active_watts(1, "hbm2", transferring=True)
