"""The device catalog: the four platforms of the paper's evaluation.

Capacities and structural figures come from the paper's Section II-B
(hardware setup).  Effective-throughput constants (sustained memory
bandwidth per kernel, PCIe regimes, power terms) are *calibrated to the
paper's own measurements* — see the derivations in
:mod:`repro.perf.calibration`, which records which published number pins
down each constant.  The experiment harness regenerates every table and
figure through these models; none of the outputs are hard-coded.
"""

from __future__ import annotations

from repro import constants
from repro.errors import ConfigurationError
from repro.hardware.clock import ClockModel
from repro.hardware.cpu import CPUModel
from repro.hardware.device import FPGADevice
from repro.hardware.gpu import GPUModel
from repro.hardware.memory import MemorySpec, StreamingMemoryModel
from repro.hardware.pcie import PCIeLink
from repro.hardware.power import PowerModel
from repro.hardware.resources import ResourceVector

__all__ = [
    "ALVEO_U280",
    "STRATIX10_GX2800",
    "XEON_8260M",
    "TESLA_V100",
    "device_by_name",
]

# ---------------------------------------------------------------------------
# Xilinx Alveo U280 (Vitis 2020.2).
# Fabric: 1.08M LUTs, 4.5 MB BRAM, 30 MB URAM, 9024 DSP; 8 GB HBM2 + 32 GB
# DDR on board; kernels hold 300 MHz at any replica count.
# ---------------------------------------------------------------------------

ALVEO_U280 = FPGADevice(
    name="Xilinx Alveo U280",
    family="xilinx",
    capacity=ResourceVector(
        luts=1_080_000,
        registers=2_400_000,
        bram_bytes=int(4.5 * constants.MIB),
        uram_bytes=30 * constants.MIB,
        dsp=9024,
    ),
    # Static shell region (PCIe/DMA/HBM controllers) of the Vitis target
    # platform.
    shell=ResourceVector(luts=150_000, registers=200_000,
                         bram_bytes=512 * 1024),
    memories={
        # Per-kernel sustained rate calibrated to Table I: 14.50 GFLOPS at
        # 16M cells from HBM2 (77% of the 18.86 theoretical).
        "hbm2": StreamingMemoryModel(MemorySpec(
            name="hbm2",
            capacity_bytes=constants.ALVEO_HBM2_BYTES,
            per_kernel_bandwidth=11.43e9,
            aggregate_bandwidth=80e9,
        )),
        # Calibrated to Table II: 10.43 GFLOPS at 16M from DDR (55% of
        # theoretical); two DDR4 banks saturate with several kernels.
        "ddr": StreamingMemoryModel(MemorySpec(
            name="ddr",
            capacity_bytes=constants.ALVEO_DDR_BYTES,
            per_kernel_bandwidth=8.22e9,
            aggregate_bandwidth=12e9,
        )),
    },
    # Bulk-registered streaming approaches the PCIe3 x16 link rate; the
    # synchronous path is dominated by XRT per-transfer overheads and is the
    # "transfers take ~2x longer than the Stratix 10" regime of Fig. 5.
    pcie=PCIeLink(streamed_bandwidth=13e9, synchronous_bandwidth=2.8e9),
    clock=ClockModel.constant(constants.ALVEO_CLOCK_MHZ),
    # XRT-reported board power; the +12 W HBM->DDR delta is the paper's own
    # measurement.
    power=PowerModel(
        static_watts=30.0,
        dynamic_watts_per_kernel=4.5,
        memory_watts={"hbm2": 6.0, "ddr": 18.0},
        transfer_watts=4.0,
    ),
    memory_preference=("hbm2", "ddr"),
)

# ---------------------------------------------------------------------------
# Intel Stratix 10 GX 2800 on a Bittware 520N (Quartus Prime Pro 20.4).
# Fabric: 933,120 ALMs, 1.87 MB MLAB, 28.6 MB M20K, 5760 DSP; 32 GB DDR;
# 398 MHz with one kernel degrading to 250 MHz at five.
# ---------------------------------------------------------------------------

STRATIX10_GX2800 = FPGADevice(
    name="Intel Stratix 10 GX2800 (520N)",
    family="intel",
    capacity=ResourceVector(
        alms=933_120,
        m20k_bytes=int(28.6 * constants.MIB),
        mlab_bytes=int(1.87 * constants.MIB),
        dsp=5760,
    ),
    shell=ResourceVector(alms=60_000, m20k_bytes=2 * constants.MIB),
    memories={
        # Calibrated to Table I: 20.8 GFLOPS at 16M from DDR (83% of the
        # 25.02 theoretical) — the Intel load-store units' automatic
        # bursting/prefetching sustain far more of DDR than the U280 does.
        # Aggregate is the board spec: four DDR4-2400 banks on the 520N at
        # 19.2 GB/s each, so five kernels still scale (Table III).
        "ddr": StreamingMemoryModel(MemorySpec(
            name="ddr",
            capacity_bytes=constants.STRATIX_DDR_BYTES,
            per_kernel_bandwidth=16.4e9,
            aggregate_bandwidth=76.8e9,
        )),
    },
    pcie=PCIeLink(streamed_bandwidth=12e9, synchronous_bandwidth=5.6e9),
    clock=ClockModel(table_mhz=(
        constants.STRATIX_SINGLE_KERNEL_CLOCK_MHZ,  # 398 with one kernel
        360.0, 325.0, 285.0,
        constants.STRATIX_MULTI_KERNEL_CLOCK_MHZ,   # 250 at five
    )),
    # aocl_mmd_card_info_fn-reported board power: ~1.5x the Alveo.
    power=PowerModel(
        static_watts=55.0,
        dynamic_watts_per_kernel=7.0,
        memory_watts={"ddr": 12.0},
        transfer_watts=4.0,
    ),
    memory_preference=("ddr",),
)

# ---------------------------------------------------------------------------
# 24-core Xeon Platinum 8260M (Cascade Lake).
# Table I: 2.09 GFLOPS on one core, 15.2 on 24 — stream-bound saturation.
# ---------------------------------------------------------------------------

XEON_8260M = CPUModel(
    name="Xeon Platinum 8260M (24-core Cascade Lake)",
    cores=24,
    gflops_per_core=2.09,
    memory_roofline_gflops=15.2,
    power=PowerModel(
        static_watts=85.0,
        dynamic_watts_per_kernel=2.4,  # per busy core
        memory_watts={"dram": 8.0},
        transfer_watts=0.0,  # no PCIe hop for host-resident data
    ),
)

# ---------------------------------------------------------------------------
# NVIDIA Tesla V100 (OpenACC port of [13], PGI 20.9).
# Table I: 367.2 GFLOPS kernel-only; 16 GB HBM2 (excludes the 536M case).
# ---------------------------------------------------------------------------

TESLA_V100 = GPUModel(
    name="NVIDIA Tesla V100",
    kernel_gflops=367.2,
    memory_capacity_bytes=constants.V100_HBM2_BYTES,
    pcie=PCIeLink(streamed_bandwidth=15e9, synchronous_bandwidth=6.5e9),
    power=PowerModel(
        static_watts=40.0,
        # Whole-GPU dynamic draw; memory-bound stencils run the V100 far
        # below TDP, keeping it slightly ahead of the five-kernel Stratix
        # 10 in GFLOPS/W at the largest size it fits (Fig. 8).
        dynamic_watts_per_kernel=77.0,
        memory_watts={"hbm2": 10.0},
        transfer_watts=5.0,
    ),
)

_CATALOG = {
    "u280": ALVEO_U280,
    "alveo": ALVEO_U280,
    "stratix10": STRATIX10_GX2800,
    "stratix": STRATIX10_GX2800,
    "xeon": XEON_8260M,
    "cpu": XEON_8260M,
    "v100": TESLA_V100,
    "gpu": TESLA_V100,
}


def device_by_name(name: str):
    """Look up a catalog device by a short alias (case-insensitive)."""
    try:
        return _CATALOG[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown device {name!r}; known: {sorted(set(_CATALOG))}"
        ) from None
