"""Next-generation AI-engine device projection (the paper's §V outlook).

"Taking the Xilinx Versal as an example, there will be up to 400 AI
engines which act as vector units clocked at around 1 GHz, each capable
of performing eight single precision floating point operations per
cycle.  This could considerably accelerate the arithmetic component of
our advection kernel, and keeping the engines fed with data will be the
key, exploiting the reconfigurable fabric of the ACAP for our shift
buffer design."

:class:`AIEngineProjection` turns that paragraph into arithmetic: the
compute ceiling of an AI-engine array on the PW kernel, the feed
bandwidth the shift-buffer fabric must sustain to keep it busy, and the
resulting roofline against realisable on-chip bandwidth.

.. deprecated::
    Import :class:`AIEngineProjection` from :mod:`repro.backend` — the
    projection is folded into the ``versal_aie`` backend's roofline as
    a consistency cross-check, and the backend package is its canonical
    home.  This module remains as a compatibility alias for the device
    constants (:data:`VERSAL_VC1902`, :data:`STRATIX10_NX_PROJECTION`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["AIEngineProjection", "VERSAL_VC1902", "STRATIX10_NX_PROJECTION"]


@dataclass(frozen=True)
class AIEngineProjection:
    """A vector-engine array running the PW advection arithmetic.

    Parameters
    ----------
    name:
        Device label.
    engines:
        Vector processors available.
    clock_ghz:
        Engine clock.
    flops_per_engine_cycle:
        Single-precision operations per engine per cycle (Versal: 8).
    fabric_feed_bandwidth:
        Bytes/second the reconfigurable fabric (hosting the shift
        buffers) can stream into the engine array.
    """

    name: str
    engines: int
    clock_ghz: float
    flops_per_engine_cycle: int
    fabric_feed_bandwidth: float

    def __post_init__(self) -> None:
        if self.engines < 1:
            raise ConfigurationError("engines must be >= 1")
        if self.clock_ghz <= 0 or self.fabric_feed_bandwidth <= 0:
            raise ConfigurationError("rates must be positive")
        if self.flops_per_engine_cycle < 1:
            raise ConfigurationError("flops_per_engine_cycle must be >= 1")

    @property
    def compute_peak_gflops(self) -> float:
        """Raw single-precision peak of the engine array."""
        return self.engines * self.clock_ghz * self.flops_per_engine_cycle

    def cells_per_second_compute(self,
                                 column_height: int = constants.DEFAULT_COLUMN_HEIGHT
                                 ) -> float:
        """Grid cells/s if arithmetic were the only limit."""
        ops = constants.average_ops_per_cycle(column_height)
        return self.compute_peak_gflops * 1e9 / ops

    def cells_per_second_feed(self, *, bytes_per_cell: float = 3 * 4) -> float:
        """Grid cells/s the fabric can feed (3 float32 values per cell)."""
        if bytes_per_cell <= 0:
            raise ConfigurationError("bytes_per_cell must be positive")
        return self.fabric_feed_bandwidth / bytes_per_cell

    def attainable_gflops(self,
                          column_height: int = constants.DEFAULT_COLUMN_HEIGHT,
                          *, bytes_per_cell: float = 3 * 4) -> float:
        """Roofline: min(compute ceiling, feed ceiling) on the PW kernel."""
        ops = constants.average_ops_per_cycle(column_height)
        cells = min(self.cells_per_second_compute(column_height),
                    self.cells_per_second_feed(bytes_per_cell=bytes_per_cell))
        return cells * ops / 1e9

    @property
    def feed_bound(self) -> bool:
        """True when keeping the engines fed is the limit (§V's prediction)."""
        return self.cells_per_second_feed() < self.cells_per_second_compute()

    def speedup_over(self, baseline_gflops: float) -> float:
        """Attainable speedup over a measured baseline (e.g. Fig. 6)."""
        if baseline_gflops <= 0:
            raise ConfigurationError("baseline must be positive")
        return self.attainable_gflops() / baseline_gflops


#: The §V Versal example: 400 engines, ~1 GHz, 8 SP FLOPs/cycle; fabric
#: feed estimated at a few hundred GB/s of distributed on-chip streams.
VERSAL_VC1902 = AIEngineProjection(
    name="Xilinx Versal VC1902 (projection)",
    engines=400,
    clock_ghz=1.0,
    flops_per_engine_cycle=8,
    fabric_feed_bandwidth=600e9,
)

#: The Intel counterpart the paper names: Stratix 10 NX AI tensor blocks.
STRATIX10_NX_PROJECTION = AIEngineProjection(
    name="Intel Stratix 10 NX (projection)",
    engines=3960,          # AI tensor blocks
    clock_ghz=0.6,
    flops_per_engine_cycle=2,  # per block, dense FP16-ish mode on this kernel
    fabric_feed_bandwidth=500e9,
)
