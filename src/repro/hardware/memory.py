"""External memory models (HBM2, DDR4) for the accelerator boards.

The kernel streams 48 bytes per cell (three field reads, three source
writes), so the achievable cell rate is the minimum of the pipeline's
clock rate and what the memory system sustains.  Two effects matter:

* **Technology / integration efficiency** — the paper measured a single
  kernel at 77% of theoretical on HBM2 but 55% on the U280's DDR4, while
  the Intel tooling sustains 83% from DDR4 (automatic burst/prefetch
  load-store units).  These sustained per-kernel figures are the
  calibration constants.
* **Burst length** — chunking shortens the contiguous run to one chunk
  face (``chunk_width x nz`` doubles); the paper notes a penalty only for
  chunks of ~8 or below.  Modelled as ``burst / (burst + gap)`` with a
  512-byte repositioning gap, which is negligible at 4 KiB bursts and
  severe below 1 KiB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["MemorySpec", "StreamingMemoryModel"]

#: Effective bytes lost to re-positioning at each non-contiguous boundary.
BURST_GAP_BYTES: float = 512.0


@dataclass(frozen=True)
class MemorySpec:
    """One external memory space on a board.

    Parameters
    ----------
    name:
        ``"hbm2"`` or ``"ddr"`` (keys used by experiments and sessions).
    capacity_bytes:
        Total capacity; allocations beyond it must fall back to another
        space or fail (the V100's 16 GB limit at 536M cells).
    per_kernel_bandwidth:
        Sustained bytes/second one kernel's load-store paths achieve
        against this memory (calibrated to the paper's kernel-only
        measurements).
    aggregate_bandwidth:
        Sustained bytes/second the whole memory system delivers when many
        kernels share it (HBM2's many banks scale per-kernel; a two-bank
        DDR system saturates quickly).
    """

    name: str
    capacity_bytes: int
    per_kernel_bandwidth: float
    aggregate_bandwidth: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"memory {self.name!r}: capacity must be positive"
            )
        if self.per_kernel_bandwidth <= 0 or self.aggregate_bandwidth <= 0:
            raise ConfigurationError(
                f"memory {self.name!r}: bandwidths must be positive"
            )
        if self.aggregate_bandwidth < self.per_kernel_bandwidth:
            raise ConfigurationError(
                f"memory {self.name!r}: aggregate bandwidth below "
                f"per-kernel bandwidth"
            )


class StreamingMemoryModel:
    """Time model for streaming kernel traffic against one memory space."""

    def __init__(self, spec: MemorySpec) -> None:
        self.spec = spec

    # -- burst efficiency ------------------------------------------------------

    @staticmethod
    def burst_efficiency(burst_bytes: float) -> float:
        """Fraction of peak sustained at a given contiguous burst length."""
        if burst_bytes <= 0:
            raise ConfigurationError(
                f"burst length must be positive, got {burst_bytes}"
            )
        return burst_bytes / (burst_bytes + BURST_GAP_BYTES)

    @staticmethod
    def chunk_burst_bytes(chunk_width: int, nz: int, itemsize: int = 8) -> float:
        """Contiguous run produced by a Y-chunk face."""
        return float(chunk_width * nz * itemsize)

    # -- throughput -----------------------------------------------------------

    def effective_per_kernel(self, *, burst_bytes: float | None = None) -> float:
        """Sustained bytes/s available to one kernel."""
        eff = 1.0 if burst_bytes is None else self.burst_efficiency(burst_bytes)
        return self.spec.per_kernel_bandwidth * eff

    def effective_aggregate(self, num_kernels: int, *,
                            burst_bytes: float | None = None) -> float:
        """Sustained bytes/s available to ``num_kernels`` kernels together."""
        if num_kernels < 1:
            raise ConfigurationError(
                f"num_kernels must be >= 1, got {num_kernels}"
            )
        eff = 1.0 if burst_bytes is None else self.burst_efficiency(burst_bytes)
        return min(
            num_kernels * self.spec.per_kernel_bandwidth,
            self.spec.aggregate_bandwidth,
        ) * eff

    def streaming_time(self, total_bytes: float, num_kernels: int = 1, *,
                       burst_bytes: float | None = None) -> float:
        """Seconds to move ``total_bytes`` of kernel traffic."""
        if total_bytes < 0:
            raise ConfigurationError(
                f"total_bytes must be >= 0, got {total_bytes}"
            )
        bw = self.effective_aggregate(num_kernels, burst_bytes=burst_bytes)
        return total_bytes / bw

    def fits(self, bytes_needed: int) -> bool:
        """True if an allocation of ``bytes_needed`` fits in this space."""
        return bytes_needed <= self.spec.capacity_bytes
