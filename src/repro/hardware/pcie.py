"""Host <-> accelerator PCIe transfer model.

Section IV of the paper shows two very different transfer regimes:

* the naive path — enqueue a transfer, synchronise, repeat — whose
  effective bandwidth is dominated by runtime/synchronisation overheads
  (measured: transfers take ~2x longer on the U280 than the Stratix 10);
* the bulk-registered, event-chained path used for overlapping, which
  approaches the link's streaming capability.

:class:`PCIeLink` models both with separate effective bandwidths plus a
fixed per-transfer latency, and a duplex flag saying whether host-to-device
and device-to-host transfers can proceed concurrently (they can on every
device here; the *schedules* decide whether they actually do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.faults.retry import RetryPolicy

__all__ = ["PCIeLink"]


@dataclass(frozen=True)
class PCIeLink:
    """Effective PCIe characteristics of one accelerator board.

    Parameters
    ----------
    streamed_bandwidth:
        Bytes/s for bulk-registered (overlap-capable) transfers.
    synchronous_bandwidth:
        Bytes/s for individually synchronised transfers (the Fig. 5 path).
    latency:
        Fixed seconds per transfer (enqueue + DMA setup).
    duplex:
        Whether H2D and D2H directions move data concurrently.
    """

    streamed_bandwidth: float
    synchronous_bandwidth: float
    latency: float = 20e-6
    duplex: bool = True

    def __post_init__(self) -> None:
        if self.streamed_bandwidth <= 0 or self.synchronous_bandwidth <= 0:
            raise ConfigurationError("PCIe bandwidths must be positive")
        if self.synchronous_bandwidth > self.streamed_bandwidth:
            raise ConfigurationError(
                "synchronous bandwidth cannot exceed streamed bandwidth"
            )
        if self.latency < 0:
            raise ConfigurationError("PCIe latency must be >= 0")

    def transfer_time(self, nbytes: float, *, streamed: bool) -> float:
        """Seconds for one transfer of ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        bandwidth = (self.streamed_bandwidth if streamed
                     else self.synchronous_bandwidth)
        return self.latency + nbytes / bandwidth

    def transfer_time_with_retries(self, nbytes: float, *, streamed: bool,
                                   failures: int,
                                   policy: "RetryPolicy") -> float:
        """Seconds for one transfer that failed ``failures`` times first.

        Each failed attempt occupies the link for the full transfer time
        (the DMA does not know it is doomed), then the retry policy's
        backoff elapses before the re-drive — the closed-form twin of
        what the schedule simulator charges for injected transfer fails.
        """
        if failures < 0:
            raise ConfigurationError(
                f"failures must be >= 0, got {failures}"
            )
        once = self.transfer_time(nbytes, streamed=streamed)
        return (failures + 1) * once + policy.total_delay(failures)

    def round_trip_time(self, in_bytes: float, out_bytes: float, *,
                        streamed: bool, concurrent: bool) -> float:
        """Seconds to move ``in_bytes`` down and ``out_bytes`` back.

        ``concurrent`` requires a duplex link *and* a schedule that issues
        both directions together (the overlapped schedules do).
        """
        t_in = self.transfer_time(in_bytes, streamed=streamed)
        t_out = self.transfer_time(out_bytes, streamed=streamed)
        if concurrent and self.duplex:
            return max(t_in, t_out)
        return t_in + t_out
