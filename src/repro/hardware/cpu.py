"""The Xeon Platinum CPU baseline.

Two modes:

* **modelled** — the paper's 24-core Cascade Lake 8260M, calibrated to its
  measured figures (2.09 GFLOPS on one core, 15.2 on 24: the kernel is
  stream-bound, so scaling saturates at the memory system's roofline);
* **measured** — actually run the vectorised NumPy reference on this host
  and time it, giving a live CPU data point for the benchmark harness.

The CPU needs no PCIe transfers: its data already lives in host memory,
which is exactly why it is competitive in the no-overlap comparison of
Fig. 5 and falls behind once the accelerators hide their transfers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet
from repro.core.flops import grid_flops
from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.errors import ConfigurationError
from repro.hardware.power import PowerModel

__all__ = ["CPUModel"]


@dataclass(frozen=True)
class CPUModel:
    """Roofline model of a multi-core CPU running the PW kernel.

    Parameters
    ----------
    name:
        Device label used in reports.
    cores:
        Physical cores available.
    gflops_per_core:
        Single-core achieved GFLOPS on this kernel (paper: 2.09).
    memory_roofline_gflops:
        Saturation point of the socket's memory system on this kernel
        (paper: 15.2 at 24 cores — reached well before 24x the single
        core figure, the signature of a bandwidth-bound stencil).
    power:
        Package power model (RAPL-style).
    """

    name: str
    cores: int
    gflops_per_core: float
    memory_roofline_gflops: float
    power: PowerModel

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {self.cores}")
        if self.gflops_per_core <= 0 or self.memory_roofline_gflops <= 0:
            raise ConfigurationError("GFLOPS figures must be positive")

    def gflops(self, cores: int | None = None) -> float:
        """Achieved GFLOPS with ``cores`` threads (default: all)."""
        cores = self.cores if cores is None else cores
        if not 1 <= cores <= self.cores:
            raise ConfigurationError(
                f"cores must be in [1, {self.cores}], got {cores}"
            )
        return min(cores * self.gflops_per_core, self.memory_roofline_gflops)

    def kernel_time(self, grid: Grid, cores: int | None = None) -> float:
        """Seconds for one advection invocation over ``grid``."""
        return grid_flops(grid) / (self.gflops(cores) * 1e9)

    def run_power_watts(self, cores: int | None = None) -> float:
        """Package power while running with ``cores`` busy."""
        cores = self.cores if cores is None else cores
        return self.power.active_watts(cores, "dram")

    # -- live measurement --------------------------------------------------------

    @staticmethod
    def measure_host(fields: FieldSet,
                     coeffs: AdvectionCoefficients | None = None, *,
                     repeats: int = 3) -> tuple[float, SourceSet]:
        """Time the NumPy reference on the current host.

        Returns (best seconds per invocation, the computed sources).  Used
        by ``benchmarks/bench_reference.py`` to put a real measured number
        next to the modelled ones.
        """
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        if coeffs is None:
            coeffs = AdvectionCoefficients.uniform(fields.grid)
        out = SourceSet.zeros(fields.grid)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            advect_reference(fields, coeffs, out=out)
            best = min(best, time.perf_counter() - start)
        return best, out
