"""Closed-form cycle count for the advection kernel.

The dataflow design's whole purpose is that, in steady state, one grid
cell is consumed per cycle (II = 1).  A kernel invocation therefore costs,
per chunk, the number of values streamed in times the effective initiation
interval, plus the pipeline fill (every chunk restarts the pipeline).  The
cycle-accurate simulator measures exactly this on small grids; the closed
form below is validated against it in the test suite and then used for the
paper-scale problem sizes where a per-cycle simulation of 10^9 cells is
pointless.

The *effective* initiation interval is the largest II of any stage in the
chain: a bandwidth-starved read stage (II 2 from DDR contention) or the
URAM variant of the shift buffer (II 2, section III-A) halves throughput,
exactly as the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.grid import Grid
from repro.kernel.config import KernelConfig

__all__ = ["CycleBreakdown", "KernelCycleModel"]

#: Fixed per-chunk pipeline overhead beyond the read/advect latencies:
#: shift-buffer stage (2) + replicate (1) + end-of-chunk drain detection (2).
#: Fitted to, and kept in lock step with, the cycle-accurate simulator —
#: see tests/kernel/test_cycle_model.py.
_FIXED_FILL: int = 5


@dataclass(frozen=True)
class CycleBreakdown:
    """Cycle count of one kernel invocation, decomposed."""

    chunks: int
    feeds_total: int
    effective_ii: int
    fill_per_chunk: int

    @property
    def steady_cycles(self) -> int:
        return self.feeds_total * self.effective_ii

    @property
    def fill_cycles(self) -> int:
        return self.chunks * self.fill_per_chunk

    @property
    def total(self) -> int:
        return self.steady_cycles + self.fill_cycles

    @property
    def fill_fraction(self) -> float:
        return self.fill_cycles / self.total if self.total else 0.0


class KernelCycleModel:
    """Closed-form performance model of one kernel instance.

    Parameters
    ----------
    config:
        Kernel design parameters.
    read_ii:
        Effective initiation interval imposed by external memory on the
        read stage (>= 1).  Device models compute this from bandwidth; 1
        means memory keeps up with the pipeline.
    """

    def __init__(self, config: KernelConfig, *, read_ii: int = 1) -> None:
        if read_ii < 1:
            raise ValueError(f"read_ii must be >= 1, got {read_ii}")
        self.config = config
        self.read_ii = read_ii

    @property
    def effective_ii(self) -> int:
        return max(self.read_ii, self.config.shift_buffer_ii)

    @property
    def pipeline_depth(self) -> int:
        """Per-chunk pipeline fill/drain cost in cycles.

        Empirically (and exactly, across latency sweeps) the simulator
        charges one memory latency plus the advect latency plus the fixed
        stage overheads per chunk: the second memory latency and the
        stream hops overlap with streaming and never appear on the
        critical path.
        """
        c = self.config
        return c.memory_latency + c.advect_latency + _FIXED_FILL

    def breakdown(self, grid: Grid | None = None) -> CycleBreakdown:
        """Cycle count decomposition for ``grid`` (default: config grid)."""
        grid = grid or self.config.grid
        plan = self.config.for_grid(grid).chunk_plan()
        nx_buf = grid.nx + 2
        feeds_total = sum(
            nx_buf * chunk.read_width * grid.nz for chunk in plan.chunks
        )
        return CycleBreakdown(
            chunks=plan.num_chunks,
            feeds_total=feeds_total,
            effective_ii=self.effective_ii,
            fill_per_chunk=self.pipeline_depth,
        )

    def cycles(self, grid: Grid | None = None) -> int:
        """Total cycles of one kernel invocation."""
        return self.breakdown(grid).total

    def runtime_seconds(self, clock_hz: float, grid: Grid | None = None) -> float:
        """Invocation wall time at a given kernel clock."""
        if clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {clock_hz}")
        return self.cycles(grid) / clock_hz

    def efficiency(self, grid: Grid | None = None) -> float:
        """Achieved fraction of the ideal one-cell-per-cycle rate.

        Ideal cycles = interior cells of the grid; the model's overheads
        (halo feeds, chunk overlap, pipeline fill, II > 1) push the real
        count above that.
        """
        grid = grid or self.config.grid
        return grid.num_cells / self.cycles(grid)
