"""Multi-kernel decomposition (Section IV of the paper).

A single kernel occupies ~15% of either FPGA, so the paper scales up to
six kernels on the Alveo U280 and five on the Stratix 10, splitting the
domain between identical kernel instances.  :class:`MultiKernel` models
that: an X-axis decomposition into near-equal parts, each processed by one
kernel instance; the invocation finishes when the largest part finishes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.grid import Grid, GridDecomposition
from repro.errors import ConfigurationError
from repro.kernel.config import KernelConfig
from repro.kernel.cycle_model import KernelCycleModel

__all__ = ["MultiKernel"]


@dataclass(frozen=True)
class MultiKernel:
    """A bank of identical advection kernels sharing one device.

    Parameters
    ----------
    config:
        The per-kernel design (applied to each part's sub-grid).
    num_kernels:
        Kernel instances on the device (paper: 6 on U280, 5 on Stratix 10).
    """

    config: KernelConfig
    num_kernels: int

    def __post_init__(self) -> None:
        if self.num_kernels < 1:
            raise ConfigurationError(
                f"num_kernels must be >= 1, got {self.num_kernels}"
            )

    def decomposition(self, grid: Grid | None = None) -> GridDecomposition:
        grid = grid or self.config.grid
        parts = min(self.num_kernels, grid.nx)
        return GridDecomposition(grid, parts)

    def cycles(self, grid: Grid | None = None, *, read_ii: int = 1) -> int:
        """Cycles until the slowest kernel instance finishes."""
        grid = grid or self.config.grid
        decomp = self.decomposition(grid)
        worst = 0
        for part in range(decomp.parts):
            sub = decomp.subgrid(part)
            model = KernelCycleModel(self.config.for_grid(sub), read_ii=read_ii)
            worst = max(worst, model.cycles())
        return worst

    def runtime_seconds(self, clock_hz: float, grid: Grid | None = None, *,
                        read_ii: int = 1) -> float:
        if clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {clock_hz}")
        return self.cycles(grid, read_ii=read_ii) / clock_hz

    def speedup_over_single(self, grid: Grid | None = None) -> float:
        """Parallel speedup versus one kernel instance on the same grid.

        Sub-linear: each part re-reads its own halos and refills its own
        pipelines, so six kernels deliver a bit less than 6x.
        """
        grid = grid or self.config.grid
        single = KernelCycleModel(self.config.for_grid(grid)).cycles()
        return single / self.cycles(grid)
