"""The buoyancy-smoothing kernel on the general-purpose shift buffer.

The third kernel of the scenario suite, assembled from the same parts as
diffusion: :class:`~repro.shiftbuffer.general.GeneralShiftBuffer` windows
streamed one value per cycle, interior cells evaluated from their own
window, and the one-sided vertical boundary cells resolved from the
adjacent interior window (the burst-absorbed-by-FIFOs trick).  The result
is bit-identical to :func:`repro.core.buoyancy.buoyancy_reference`.

The filter only has vertical neighbours, so it is the cheapest stencil
in the suite — 15 operations per cell against advection's 63 — which is
exactly why it is worth carrying: the derived ops-per-cycle model must
hold at both ends of the intensity range.
"""

from __future__ import annotations

from repro.core.buoyancy import (  # noqa: F401 (re-export)
    DEFAULT_FILTER_WEIGHT,
    buoyancy_reference,
)
from repro.core.fields import FieldSet, SourceSet
from repro.errors import ConfigurationError
from repro.shiftbuffer.general import GeneralShiftBuffer, GeneralWindow
from repro.shiftbuffer.ports import MemoryPortTracker

__all__ = ["buoyancy_from_window", "buoyancy_boundary_from_window",
           "buoyancy_shiftbuffer"]


def buoyancy_from_window(window: GeneralWindow, alpha: float) -> float:
    """Smoothed value of the window's centre cell (interior k)."""
    return (alpha * window.at(0, 0, -1)
            + (1.0 - 2.0 * alpha) * window.at(0, 0, 0)
            + alpha * window.at(0, 0, 1))


def buoyancy_boundary_from_window(window: GeneralWindow, alpha: float, *,
                                  top: bool) -> float:
    """Boundary-cell value computed from the adjacent interior window.

    For ``top=False`` the window must be centred at ``k = 1`` and the
    ``k = 0`` cell is evaluated through the ``dk = -1`` plane; for
    ``top=True`` the window is centred at ``k = nz - 2`` and the top
    cell uses the ``dk = +1`` plane.
    """
    dk = 1 if top else -1
    return (1.0 - alpha) * window.at(0, 0, dk) + alpha * window.at(0, 0, 0)


def buoyancy_shiftbuffer(fields: FieldSet,
                         alpha: float = DEFAULT_FILTER_WEIGHT, *,
                         tracker: MemoryPortTracker | None = None
                         ) -> SourceSet:
    """Smoothing of all three fields through general shift buffers.

    Streams each field once (x/y halo included), evaluating interior
    cells from their windows and the vertical boundary cells from the
    adjacent windows.  Must agree bit for bit with
    :func:`repro.core.buoyancy.buoyancy_reference`.
    """
    grid = fields.grid
    if grid.nz < 3:
        raise ConfigurationError(
            f"shift-buffer smoothing needs nz >= 3, got {grid.nz}"
        )
    if not 0.0 < alpha <= 0.5:
        raise ConfigurationError(
            f"filter weight must be in (0, 0.5], got {alpha}"
        )

    out = SourceSet.zeros(grid)
    nx_buf, ny_buf = grid.nx + 2, grid.ny + 2

    for name, target in (("u", out.su), ("v", out.sv), ("w", out.sw)):
        buffer = GeneralShiftBuffer(
            nx_buf, ny_buf, grid.nz, radius=1,
            tracker=tracker if tracker is not None
            else MemoryPortTracker(enforce=False),
            name=f"buoyancy.{name}",
        )
        block = getattr(fields, name)
        for window in buffer.feed_block(block):
            cx, cy, cz = window.center
            if not (1 <= cx <= grid.nx and 1 <= cy <= grid.ny):
                continue
            target[cx - 1, cy - 1, cz] = buoyancy_from_window(window, alpha)
            if cz == 1:
                target[cx - 1, cy - 1, 0] = buoyancy_boundary_from_window(
                    window, alpha, top=False)
            if cz == grid.nz - 2:
                target[cx - 1, cy - 1, grid.nz - 1] = \
                    buoyancy_boundary_from_window(window, alpha, top=True)
    return out
