"""Cycle-accurate simulation of the full advection kernel.

Runs the Fig. 2 dataflow graph chunk by chunk through the cycle engine,
producing both the numerical result and the measured cycle counts.  Used
on small grids to validate the closed-form
:class:`~repro.kernel.cycle_model.KernelCycleModel` that the paper-scale
benchmarks rely on.

Checkpoint/restart
------------------
Chunk seams are natural checkpoints: each chunk's graph is rebuilt from
the (immutable) input fields and only writes its own slab of the output.
With a :class:`~repro.faults.plan.FaultPlan` or
:class:`~repro.faults.retry.RetryPolicy` supplied, the simulation
snapshots the output arrays before each chunk, verifies the chunk wrote
its full complement of cells, and on any :class:`~repro.errors.FaultError`
or :class:`~repro.errors.DataflowError` restores the snapshot and retries
*that chunk only* — completed chunks are never replayed.  Transient
faults (the plan default) therefore cost one chunk re-run and leave the
result bit-identical; persistent faults exhaust the retry budget and
raise :class:`~repro.errors.RetryExhaustedError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet
from repro.dataflow.engine import DataflowEngine, RunStats
from repro.errors import DataflowError, FaultError, RetryExhaustedError
from repro.kernel.builder import build_advection_graph
from repro.kernel.config import KernelConfig
from repro.shiftbuffer.ports import MemoryPortTracker

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.faults.retry import RetryPolicy
    from repro.observe.metrics import MetricRegistry
    from repro.observe.trace import Tracer

__all__ = ["KernelSimResult", "simulate_kernel"]


@dataclass
class KernelSimResult:
    """Outcome of a cycle-accurate kernel run."""

    sources: SourceSet
    total_cycles: int
    chunk_stats: list[RunStats] = field(default_factory=list)
    port_tracker: MemoryPortTracker | None = None
    #: chunk re-runs performed by the checkpoint/restart machinery.
    chunk_retries: int = 0

    @property
    def cells_per_cycle(self) -> float:
        """Interior cells produced per cycle (steady-state ideal ~= 1)."""
        grid = self.sources.grid
        return grid.num_cells / self.total_cycles if self.total_cycles else 0.0

    def runtime_seconds(self, clock_hz: float) -> float:
        """Wall time of this invocation at a given kernel clock."""
        if clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {clock_hz}")
        return self.total_cycles / clock_hz

    def aggregate_stats(self) -> RunStats:
        """All chunk runs folded into one :class:`RunStats` summary."""
        return RunStats.merge(self.chunk_stats)


def simulate_kernel(config: KernelConfig, fields: FieldSet,
                    coeffs: AdvectionCoefficients | None = None, *,
                    read_ii: int = 1, enforce_ports: bool = True,
                    max_cycles_per_chunk: int = 10_000_000,
                    mode: str = "exact",
                    batched: bool = True,
                    fault_plan: "FaultPlan | None" = None,
                    retry: "RetryPolicy | None" = None,
                    watchdog: int | None = None,
                    tracer: "Tracer | None" = None,
                    metrics: "MetricRegistry | None" = None,
                    ) -> KernelSimResult:
    """Simulate one kernel invocation cycle by cycle.

    Parameters
    ----------
    config:
        Kernel design parameters; ``config.grid`` must match ``fields``.
    fields:
        Input wind fields with valid halos.
    coeffs:
        Advection coefficients (default: uniform atmosphere).
    read_ii:
        Initiation interval of the read stage (*1* = memory keeps up).
    enforce_ports:
        Raise on any dual-port violation (the paper's partitioning claim
        is then checked on every simulated cycle).
    mode:
        ``"exact"`` ticks every cycle; ``"fast"`` fast-forwards periodic
        steady-state phases analytically — same results, same cycle
        counts, far less wall time on paper-scale grids (see
        :mod:`repro.dataflow.engine`).
    batched:
        Exact mode only: let the engine advance proved-safe steady-state
        windows analytically while keeping every observable cycle scalar
        (bit-identical stats, default on).  ``False`` forces the pure
        per-cycle loop — the escape hatch and the benchmark baseline.
    fault_plan:
        Optional fault-injection plan, threaded into every chunk's engine
        run (FIFO word faults, stage freezes) and enabling the
        checkpoint/restart path described in the module docstring.
    retry:
        Retry budget for faulted chunks; defaults to
        ``RetryPolicy()`` when a fault plan is given.  Supplying either
        argument turns checkpointing on.
    watchdog:
        Per-chunk cycle watchdog passed to the engine (typed
        :class:`~repro.errors.WatchdogTimeout` instead of spinning).
    tracer:
        Optional :class:`~repro.observe.trace.Tracer`.  Each chunk's
        engine spans are shifted onto one global cycle axis (chunks run
        back to back), topped by a per-chunk span on the ``kernel`` track
        carrying seam geometry and halo-read overhead, plus retry
        markers when the checkpoint/restart path re-runs a chunk.
    metrics:
        Optional :class:`~repro.observe.metrics.MetricRegistry`, threaded
        into every chunk's engine run and fed kernel-level counters
        (``kernel_chunks``, ``kernel_chunk_retries``,
        ``kernel_halo_read_cells``).

    Notes
    -----
    The kernel processes chunks back to back; each chunk refills the
    pipeline, which is exactly the per-chunk overhead the closed-form
    cycle model charges.
    """
    grid = config.grid
    if fields.grid.interior_shape != grid.interior_shape:
        raise ValueError(
            f"fields are on grid {fields.grid.interior_shape}, config "
            f"expects {grid.interior_shape}"
        )
    if coeffs is None:
        coeffs = AdvectionCoefficients.uniform(grid)

    resilient = fault_plan is not None or retry is not None
    if resilient and retry is None:
        from repro.faults.retry import RetryPolicy as _RetryPolicy

        retry = _RetryPolicy()

    out = SourceSet.zeros(grid)
    tracker = MemoryPortTracker(enforce=enforce_ports)
    chunk_stats: list[RunStats] = []
    total_cycles = 0
    chunk_retries = 0
    trace_on = tracer is not None and tracer.enabled

    plan = config.chunk_plan()
    for chunk in plan.chunks:
        # Chunk-seam checkpoint: the output slabs of every *completed*
        # chunk.  A failed attempt restores it, so retries never see the
        # partial writes of the attempt that died.
        checkpoint = (
            (out.su.copy(), out.sv.copy(), out.sw.copy())
            if resilient else None
        )
        # One write firing per (x, y) column and z level above the
        # surface — the surface level rides along with level 1, so a
        # healthy chunk fires exactly nx * write_width * (nz - 1) times.
        expected_cells = grid.nx * chunk.write_width * (grid.nz - 1)
        attempt = 0
        while True:
            graph = build_advection_graph(
                config, fields, chunk, coeffs, out, read_ii=read_ii,
                tracker=tracker,
            )
            engine = DataflowEngine(
                graph, max_cycles=max_cycles_per_chunk, mode=mode,
                batched=batched, fault_plan=fault_plan, watchdog=watchdog,
                tracer=tracer, metrics=metrics,
            )
            try:
                if trace_on:
                    assert tracer is not None
                    # Chunks run back to back: shift this chunk's engine
                    # spans from local cycle 0 onto the global axis.
                    with tracer.shifted(total_cycles):
                        stats = engine.run()
                else:
                    stats = engine.run()
                if resilient:
                    written = graph.stage("write_data").cells_written  # type: ignore[attr-defined]
                    if written != expected_cells:
                        raise FaultError(
                            f"chunk {chunk.index}: wrote {written} of "
                            f"{expected_cells} cells (words lost in flight)"
                        )
            except (FaultError, DataflowError) as error:
                if not resilient:
                    raise
                assert retry is not None and checkpoint is not None
                attempt += 1
                if attempt >= retry.max_attempts:
                    raise RetryExhaustedError(
                        f"chunk {chunk.index} failed after {attempt} "
                        f"attempts (last error: {error})"
                    ) from error
                np.copyto(out.su, checkpoint[0])
                np.copyto(out.sv, checkpoint[1])
                np.copyto(out.sw, checkpoint[2])
                chunk_retries += 1
                if trace_on:
                    assert tracer is not None
                    tracer.instant(
                        "chunk retry", "kernel", ts=float(total_cycles),
                        chunk=chunk.index, attempt=attempt,
                        error=str(error))
                continue
            break
        chunk_stats.append(stats)
        if trace_on:
            assert tracer is not None
            halo_cells = chunk.read_width - chunk.write_width
            tracer.add_span(
                f"chunk {chunk.index}", "kernel", total_cycles,
                total_cycles + stats.cycles, category="chunk",
                read_width=chunk.read_width, write_width=chunk.write_width,
                halo_overhead=round(halo_cells / chunk.read_width, 4),
                retries=attempt)
        total_cycles += stats.cycles

    if metrics is not None and metrics.enabled:
        metrics.counter(
            "kernel_chunks", "chunks simulated per kernel invocation",
        ).inc(len(plan.chunks))
        metrics.counter(
            "kernel_chunk_retries", "chunk re-runs by checkpoint/restart",
        ).inc(chunk_retries)
        metrics.counter(
            "kernel_halo_read_cells",
            "redundant cells streamed for chunk-seam halos",
        ).inc(plan.overlap_cells * (grid.nx + 2) * grid.nz)

    return KernelSimResult(
        sources=out,
        total_cycles=total_cycles,
        chunk_stats=chunk_stats,
        port_tracker=tracker,
        chunk_retries=chunk_retries,
    )
