"""Cycle-accurate simulation of the full advection kernel.

Runs the Fig. 2 dataflow graph chunk by chunk through the cycle engine,
producing both the numerical result and the measured cycle counts.  Used
on small grids to validate the closed-form
:class:`~repro.kernel.cycle_model.KernelCycleModel` that the paper-scale
benchmarks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet
from repro.dataflow.engine import DataflowEngine, RunStats
from repro.kernel.builder import build_advection_graph
from repro.kernel.config import KernelConfig
from repro.shiftbuffer.ports import MemoryPortTracker

__all__ = ["KernelSimResult", "simulate_kernel"]


@dataclass
class KernelSimResult:
    """Outcome of a cycle-accurate kernel run."""

    sources: SourceSet
    total_cycles: int
    chunk_stats: list[RunStats] = field(default_factory=list)
    port_tracker: MemoryPortTracker | None = None

    @property
    def cells_per_cycle(self) -> float:
        """Interior cells produced per cycle (steady-state ideal ~= 1)."""
        grid = self.sources.grid
        return grid.num_cells / self.total_cycles if self.total_cycles else 0.0

    def runtime_seconds(self, clock_hz: float) -> float:
        """Wall time of this invocation at a given kernel clock."""
        if clock_hz <= 0:
            raise ValueError(f"clock must be positive, got {clock_hz}")
        return self.total_cycles / clock_hz

    def aggregate_stats(self) -> RunStats:
        """All chunk runs folded into one :class:`RunStats` summary."""
        return RunStats.merge(self.chunk_stats)


def simulate_kernel(config: KernelConfig, fields: FieldSet,
                    coeffs: AdvectionCoefficients | None = None, *,
                    read_ii: int = 1, enforce_ports: bool = True,
                    max_cycles_per_chunk: int = 10_000_000,
                    mode: str = "exact",
                    ) -> KernelSimResult:
    """Simulate one kernel invocation cycle by cycle.

    Parameters
    ----------
    config:
        Kernel design parameters; ``config.grid`` must match ``fields``.
    fields:
        Input wind fields with valid halos.
    coeffs:
        Advection coefficients (default: uniform atmosphere).
    read_ii:
        Initiation interval of the read stage (*1* = memory keeps up).
    enforce_ports:
        Raise on any dual-port violation (the paper's partitioning claim
        is then checked on every simulated cycle).
    mode:
        ``"exact"`` ticks every cycle; ``"fast"`` fast-forwards periodic
        steady-state phases analytically — same results, same cycle
        counts, far less wall time on paper-scale grids (see
        :mod:`repro.dataflow.engine`).

    Notes
    -----
    The kernel processes chunks back to back; each chunk refills the
    pipeline, which is exactly the per-chunk overhead the closed-form
    cycle model charges.
    """
    grid = config.grid
    if fields.grid.interior_shape != grid.interior_shape:
        raise ValueError(
            f"fields are on grid {fields.grid.interior_shape}, config "
            f"expects {grid.interior_shape}"
        )
    if coeffs is None:
        coeffs = AdvectionCoefficients.uniform(grid)

    out = SourceSet.zeros(grid)
    tracker = MemoryPortTracker(enforce=enforce_ports)
    chunk_stats: list[RunStats] = []
    total_cycles = 0

    for chunk in config.chunk_plan().chunks:
        graph = build_advection_graph(
            config, fields, chunk, coeffs, out, read_ii=read_ii,
            tracker=tracker,
        )
        stats = DataflowEngine(graph, max_cycles=max_cycles_per_chunk,
                               mode=mode).run()
        chunk_stats.append(stats)
        total_cycles += stats.cycles

    return KernelSimResult(
        sources=out,
        total_cycles=total_cycles,
        chunk_stats=chunk_stats,
        port_tracker=tracker,
    )
