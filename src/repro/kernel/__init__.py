"""The PW advection FPGA kernel, assembled per Fig. 2 of the paper.

This subpackage turns the generic dataflow machinery and the shift buffer
into the paper's actual kernel:

* :mod:`repro.kernel.config` — kernel configuration (grid, chunking, stream
  depths, pipeline latencies),
* :mod:`repro.kernel.compute` — the per-cell source-term arithmetic
  evaluated on 27-point stencil windows (identical expression trees to the
  golden scalar code),
* :mod:`repro.kernel.stages` — the dataflow stages of Fig. 2 (read data,
  shift buffer, replicate, advect U/V/W, write data),
* :mod:`repro.kernel.builder` — wires the stages into a
  :class:`~repro.dataflow.graph.DataflowGraph`,
* :mod:`repro.kernel.functional` — fast functional execution (chunked,
  vectorised) and full-fidelity shift-buffer execution,
* :mod:`repro.kernel.cycle_model` — the closed-form cycle count validated
  against the cycle simulator, used for paper-scale problem sizes,
* :mod:`repro.kernel.multi` — multi-kernel domain decomposition
  (Section IV).
"""

from repro.kernel.builder import build_advection_graph
from repro.kernel.config import KernelConfig
from repro.kernel.cycle_model import CycleBreakdown, KernelCycleModel
from repro.kernel.functional import execute_chunked, execute_shiftbuffer
from repro.kernel.multi import MultiKernel
from repro.kernel.multi_simulate import simulate_multi_kernel
from repro.kernel.report import synthesis_report
from repro.kernel.simulate import simulate_kernel

__all__ = [
    "KernelConfig",
    "build_advection_graph",
    "simulate_kernel",
    "simulate_multi_kernel",
    "execute_chunked",
    "execute_shiftbuffer",
    "KernelCycleModel",
    "CycleBreakdown",
    "MultiKernel",
    "synthesis_report",
]
