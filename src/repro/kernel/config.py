"""Kernel configuration.

A :class:`KernelConfig` captures the design parameters a developer would
set when building the HLS kernel: the grid it processes, the Y chunk width
(which sizes the on-chip shift buffers), FIFO depths, and pipeline
latencies of the stages.  Device-level parameters (clock frequency, memory
system) live in :mod:`repro.hardware` — the same kernel design is placed on
different devices, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.grid import Grid
from repro.errors import ConfigurationError
from repro.shiftbuffer.chunking import ChunkPlan, plan_chunks

__all__ = ["KernelConfig"]

#: Default interior Y cells per chunk.  Large enough that the chunk-size
#: memory-efficiency penalty (paper: chunk <= 8 hurts) is irrelevant, small
#: enough that three shift buffers fit comfortably in BRAM.
DEFAULT_CHUNK_WIDTH: int = 64

#: Pipeline depth of one advection stage: the ~21-op double precision
#: expression tree schedules to roughly this many cycles at 300 MHz
#: (double-precision add ~5 cycles, multiply ~6, tree depth ~5 ops).
DEFAULT_ADVECT_LATENCY: int = 28

#: Latency of external memory read/write stages (burst setup + AXI depth).
DEFAULT_MEMORY_LATENCY: int = 16


@dataclass(frozen=True)
class KernelConfig:
    """Design-time parameters of one advection kernel instance.

    Parameters
    ----------
    grid:
        The (sub)domain this kernel instance processes.
    chunk_width:
        Interior Y cells per chunk; the shift buffers hold
        ``chunk_width + 2`` Y positions.
    stream_depth:
        FIFO depth of inter-stage streams.  Must be >= 2 so the double
        emission at each column top can be absorbed (see
        :meth:`repro.shiftbuffer.buffer3d.ShiftBuffer3D.feed`).
    shift_buffer_ii:
        Initiation interval of the shift-buffer stage.  1 with correctly
        partitioned BRAM; 2 models the URAM experiment of section III-A.
    advect_latency, memory_latency:
        Pipeline depths used by the cycle-accurate simulation and the
        closed-form cycle model.
    partitioned:
        Whether the shift-buffer arrays are partitioned (port-safe).
    word_bytes:
        Bytes per stored value.  8 is the paper's double precision; 4
        models the single-precision variant of the paper's future work —
        halving buffer footprints and every byte of external-memory and
        PCIe traffic (numerical accuracy of narrow datapaths is studied
        separately in :mod:`repro.precision`).
    """

    grid: Grid
    chunk_width: int = DEFAULT_CHUNK_WIDTH
    stream_depth: int = 4
    shift_buffer_ii: int = 1
    advect_latency: int = DEFAULT_ADVECT_LATENCY
    memory_latency: int = DEFAULT_MEMORY_LATENCY
    partitioned: bool = True
    word_bytes: int = 8

    def __post_init__(self) -> None:
        if self.chunk_width < 1:
            raise ConfigurationError(
                f"chunk_width must be >= 1, got {self.chunk_width}"
            )
        if self.stream_depth < 2:
            raise ConfigurationError(
                f"stream_depth must be >= 2 to absorb column-top double "
                f"emissions, got {self.stream_depth}"
            )
        if self.shift_buffer_ii < 1:
            raise ConfigurationError(
                f"shift_buffer_ii must be >= 1, got {self.shift_buffer_ii}"
            )
        if self.advect_latency < 1 or self.memory_latency < 1:
            raise ConfigurationError("stage latencies must be >= 1")
        if self.word_bytes not in (2, 4, 8):
            raise ConfigurationError(
                f"word_bytes must be 2, 4 or 8, got {self.word_bytes}"
            )
        if self.grid.nz < 3:
            raise ConfigurationError(
                f"kernel needs nz >= 3 for the vertical stencil, got "
                f"{self.grid.nz}"
            )

    # -- derived geometry -------------------------------------------------------

    def chunk_plan(self) -> ChunkPlan:
        """The Y chunking this configuration implies."""
        return plan_chunks(self.grid.ny, self.chunk_width)

    @property
    def buffer_ny(self) -> int:
        """Y extent of the on-chip shift buffers (chunk + halo)."""
        return min(self.chunk_width, self.grid.ny) + 2

    @property
    def buffer_words_per_field(self) -> int:
        """On-chip RAM words per field's shift buffer."""
        return 3 * self.buffer_ny * self.grid.nz + 9 * self.grid.nz

    @property
    def buffer_words(self) -> int:
        """On-chip RAM words for all three shift buffers."""
        return 3 * self.buffer_words_per_field

    @property
    def buffer_bytes(self) -> int:
        return self.word_bytes * self.buffer_words

    @property
    def bytes_per_cell_cycle(self) -> int:
        """External memory traffic per processed cell: 3 reads + 3 writes."""
        return 6 * self.word_bytes

    @property
    def in_bytes_per_cell(self) -> int:
        """Bytes read per streamed cell (three field values)."""
        return 3 * self.word_bytes

    @property
    def out_bytes_per_cell(self) -> int:
        """Bytes written per interior cell (three source values)."""
        return 3 * self.word_bytes

    def for_grid(self, grid: Grid) -> "KernelConfig":
        """This configuration applied to a different (sub)grid."""
        return replace(self, grid=grid)
