"""Cycle-accurate co-simulation of multiple kernels sharing a memory.

Section IV scales the design to several kernel instances per device.
On HBM2 each kernel owns its banks; on DDR all kernels contend for a few
banks.  This module simulates that contention at cycle level: the read
stages of all kernel instances draw grants from a shared
:class:`MemoryArbiter` with a fixed issue rate (cell-reads per cycle the
memory system sustains), so starving the arbiter reproduces the DDR
saturation the analytic model charges — and with ample grants the
co-simulation matches the independent-kernels model exactly.

Kernel instances are synchronised per Y-chunk (all instances process
chunk *j* together); real hardware lets them drift, but the drift is
bounded by one chunk's fill and the totals agree with the closed-form
model to within that bound (asserted in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet
from repro.core.grid import GridDecomposition
from repro.dataflow.engine import DataflowEngine, RunStats
from repro.dataflow.graph import DataflowGraph
from repro.errors import (
    ConfigurationError,
    DataflowError,
    FaultError,
    ReplicaLostError,
    RetryExhaustedError,
)
from repro.kernel.builder import build_advection_graph
from repro.kernel.config import KernelConfig
from repro.kernel.stages import CellInput, ReadDataStage

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.faults.retry import RetryPolicy
    from repro.observe.metrics import MetricRegistry
    from repro.observe.trace import Tracer

__all__ = ["MemoryArbiter", "MultiKernelSimResult", "simulate_multi_kernel"]


class MemoryArbiter:
    """Grants cell-read issues at a sustained fractional rate per cycle.

    ``rate`` is the number of cell reads the shared memory can issue per
    kernel clock cycle (e.g. 6 kernels on HBM2 get rate >= 6; two DDR
    banks might sustain 2.5).  A credit accumulator implements fractional
    rates exactly.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"arbiter rate must be positive, got {rate}")
        self.rate = rate
        self._credits = 0.0
        self._cycle = -1
        self.grants = 0
        self.denials = 0

    def tick(self, cycle: int) -> None:
        """Advance to ``cycle``, accruing credits (capped at one cycle's
        worth above the integer part to avoid unbounded bursts)."""
        if cycle != self._cycle:
            self._cycle = cycle
            self._credits = min(self._credits + self.rate,
                                self.rate + 1.0)

    def request(self) -> bool:
        """One stage asks to issue one cell read this cycle."""
        if self._credits >= 1.0:
            self._credits -= 1.0
            self.grants += 1
            return True
        self.denials += 1
        return False


class ArbitratedReadStage(ReadDataStage):
    """A read stage that must win a grant from the shared arbiter."""

    #: Firing is gated by arbiter grants, not just FIFO credits, which
    #: the static occupancy proof cannot see — no compile-time hints.
    unit_rate = False

    def __init__(self, name: str, cells: Iterator[CellInput] | None = None,
                 *, arbiter: MemoryArbiter, block=None, ii: int = 1,
                 latency: int = 16) -> None:
        super().__init__(name, cells, block=block, ii=ii, latency=latency)
        self.arbiter = arbiter

    def _try_fire(self, cycle: int) -> bool:
        self.arbiter.tick(cycle)
        if cycle < self._next_fire_cycle:
            self.stats.ii_waits += 1
            return False
        if len(self._pipeline) >= self.latency:
            self.stats.pipeline_full_stalls += 1
            return False
        if self.exhausted():
            return False
        if not self.arbiter.request():
            self.stats.input_stalls += 1  # starved by the memory system
            return False
        return super()._try_fire(cycle)

    def ff_signature(self, cycle: int) -> tuple | None:
        # A starved arbiter makes firing data-rate-dependent in ways the
        # periodicity proof does not cover once denial history differs
        # between kernels: veto fast-forward for the whole run the moment
        # any request has ever been denied.  With ample credits the
        # accumulator is part of the control state (it decides *when*
        # grants are available), so it joins the signature exactly.
        if self.arbiter.denials > 0:
            return None
        base = super().ff_signature(cycle)
        if base is None:
            return None
        return base + (self.arbiter._credits,)

    def ff_commit(self, old_cycle: int, new_cycle: int, *, fires: int,
                  retired: int, tail_outputs) -> None:
        super().ff_commit(old_cycle, new_cycle, fires=fires,
                          retired=retired, tail_outputs=tail_outputs)
        # Every fast-forwarded firing would have won one grant.
        self.arbiter.grants += fires


@dataclass
class MultiKernelSimResult:
    """Outcome of a multi-kernel co-simulation."""

    sources: SourceSet
    total_cycles: int
    num_kernels: int
    arbiter: MemoryArbiter
    chunk_cycles: list[int] = field(default_factory=list)
    #: replicas killed by fault injection, in quarantine order.
    quarantined: list[int] = field(default_factory=list)
    #: chunk-sized work items re-run on survivors after a quarantine.
    rescheduled_chunks: int = 0
    #: chunk re-runs performed by the checkpoint/restart machinery.
    chunk_retries: int = 0
    #: why fast mode demoted to exact ticking (None when it did not).
    ff_veto_reason: str | None = None

    @property
    def read_starvation_fraction(self) -> float:
        total = self.arbiter.grants + self.arbiter.denials
        return self.arbiter.denials / total if total else 0.0


def simulate_multi_kernel(config: KernelConfig, fields: FieldSet,
                          coeffs: AdvectionCoefficients | None = None, *,
                          num_kernels: int,
                          memory_cells_per_cycle: float | None = None,
                          max_cycles_per_chunk: int = 10_000_000,
                          mode: str = "exact",
                          batched: bool = True,
                          fault_plan: "FaultPlan | None" = None,
                          retry: "RetryPolicy | None" = None,
                          watchdog: int | None = None,
                          tracer: "Tracer | None" = None,
                          metrics: "MetricRegistry | None" = None,
                          ) -> MultiKernelSimResult:
    """Co-simulate ``num_kernels`` kernel instances sharing one memory.

    Parameters
    ----------
    config:
        Per-kernel design; ``config.grid`` is the *global* grid.
    memory_cells_per_cycle:
        Shared memory's sustained issue rate in cell reads per cycle
        across all kernels.  ``None`` means one per kernel per cycle
        (no contention, the HBM2 regime).
    mode:
        Engine mode (``"exact"`` or ``"fast"``); fast-forward disables
        itself automatically the moment the arbiter starves any read
        stage, so a contended memory always simulates exactly.
    batched:
        Exact mode only: batched steady-state execution (default on; the
        same arbiter-starvation veto applies).  ``False`` forces the
        per-cycle loop.
    fault_plan:
        Optional fault-injection plan.  ``replica`` faults are drawn at
        chunk seams: ``slow`` multiplies the replica's read II for that
        chunk, ``kill`` quarantines it — its X-slab is rescheduled onto
        the surviving replicas (run serially after their own chunk work,
        so throughput drops but the result stays bit-identical).  FIFO
        and stage faults are threaded into every engine run.
    retry:
        Retry budget for faulted chunk runs; defaults to
        ``RetryPolicy()`` when a fault plan is given.  Supplying either
        argument turns chunk-seam checkpointing on.
    watchdog:
        Per-run cycle watchdog passed to the engine.
    tracer:
        Optional :class:`~repro.observe.trace.Tracer`.  Stage names carry
        their ``k{p}.`` replica prefix, so each replica's stages land on
        their own lanes automatically; per-chunk spans (including
        rescheduled quarantine work) and quarantine markers go on the
        ``kernel`` track, all shifted onto one global cycle axis.
    metrics:
        Optional :class:`~repro.observe.metrics.MetricRegistry`, threaded
        into every engine run and fed arbiter grant/denial counters and
        the read-starvation fraction at the end.

    Raises
    ------
    ReplicaLostError
        When every replica has been quarantined and no survivor remains
        to take over the work.
    """
    grid = config.grid
    if fields.grid.interior_shape != grid.interior_shape:
        raise ConfigurationError(
            "fields do not match the configured grid"
        )
    if num_kernels < 1:
        raise ConfigurationError(
            f"num_kernels must be >= 1, got {num_kernels}"
        )
    if coeffs is None:
        coeffs = AdvectionCoefficients.uniform(grid)
    rate = (float(num_kernels) if memory_cells_per_cycle is None
            else memory_cells_per_cycle)
    arbiter = MemoryArbiter(rate)

    resilient = fault_plan is not None or retry is not None
    if resilient and retry is None:
        from repro.faults.retry import RetryPolicy as _RetryPolicy

        retry = _RetryPolicy()

    decomp = GridDecomposition(grid, min(num_kernels, grid.nx))
    out = SourceSet.zeros(grid)

    # Per-part halo-extended views and sub-configs.  The chunk plans of
    # all parts are identical (chunking is in Y, the undecomposed axis).
    parts = []
    for p in range(decomp.parts):
        x0, x1 = decomp.bounds[p]
        sub_grid = decomp.subgrid(p)
        sub_fields = FieldSet(
            sub_grid,
            fields.u[x0:x1 + 2, :, :],
            fields.v[x0:x1 + 2, :, :],
            fields.w[x0:x1 + 2, :, :],
        )
        parts.append((x0, sub_grid, sub_fields))

    chunk_plan = config.for_grid(parts[0][1]).chunk_plan()
    total_cycles = 0
    chunk_cycles: list[int] = []
    live = list(range(decomp.parts))
    quarantined: list[int] = []
    rescheduled_chunks = 0
    chunk_retries = 0
    veto_reason: str | None = None
    trace_on = tracer is not None and tracer.enabled
    # A heavily starved arbiter can stall every read stage for
    # ~kernels/rate cycles between grants; widen the engine's
    # deadlock grace accordingly.
    grace = 64 + int(4 * decomp.parts / min(rate, 1.0))

    def build_part(p: int, chunk, read_ii: int = 1) -> DataflowGraph:
        x0, sub_grid, sub_fields = parts[p]
        sub_config = config.for_grid(sub_grid)
        return build_advection_graph(
            sub_config, sub_fields, chunk, coeffs, out,
            x_offset=x0, name_prefix=f"k{p}.", read_ii=read_ii,
            read_stage_cls=lambda name, cells, ii=1, latency=16,
            block=None: (
                ArbitratedReadStage(name, cells, arbiter=arbiter,
                                    block=block, ii=ii,
                                    latency=latency)),
        )

    def run_resilient(build: Callable[[], DataflowGraph],
                      check_parts: list[int], chunk) -> RunStats:
        """One engine run with chunk-seam checkpoint/retry semantics."""
        nonlocal chunk_retries, veto_reason
        attempt = 0
        while True:
            checkpoint = (
                (out.su.copy(), out.sv.copy(), out.sw.copy())
                if resilient else None
            )
            graph = build()
            engine = DataflowEngine(
                graph, max_cycles=max_cycles_per_chunk,
                stall_grace=grace, mode=mode, batched=batched,
                fault_plan=fault_plan, watchdog=watchdog,
                tracer=tracer, metrics=metrics,
            )
            try:
                if trace_on:
                    assert tracer is not None
                    with tracer.shifted(total_cycles):
                        stats = engine.run()
                else:
                    stats = engine.run()
                if resilient:
                    for p in check_parts:
                        sub_grid = parts[p][1]
                        # One firing per (x, y) column and above-surface
                        # z level (see simulate.py).
                        expected = (sub_grid.nx * chunk.write_width
                                    * (sub_grid.nz - 1))
                        written = graph.stage(f"k{p}.write_data").cells_written  # type: ignore[attr-defined]
                        if written != expected:
                            raise FaultError(
                                f"replica {p}, chunk {chunk.index}: wrote "
                                f"{written} of {expected} cells (words "
                                f"lost in flight)"
                            )
            except (FaultError, DataflowError) as error:
                if not resilient:
                    raise
                assert retry is not None and checkpoint is not None
                attempt += 1
                if attempt >= retry.max_attempts:
                    raise RetryExhaustedError(
                        f"chunk {chunk.index} failed after {attempt} "
                        f"attempts (last error: {error})"
                    ) from error
                np.copyto(out.su, checkpoint[0])
                np.copyto(out.sv, checkpoint[1])
                np.copyto(out.sw, checkpoint[2])
                chunk_retries += 1
                if trace_on:
                    assert tracer is not None
                    tracer.instant(
                        "chunk retry", "kernel", ts=float(total_cycles),
                        chunk=chunk.index, attempt=attempt,
                        error=str(error))
                continue
            if stats.ff_veto_reason is not None and veto_reason is None:
                veto_reason = stats.ff_veto_reason
            return stats

    for chunk in chunk_plan.chunks:
        # Replica faults strike at chunk seams: a killed replica is
        # quarantined from this chunk onward, a slowed one reads at a
        # multiplied II for this chunk only.
        slow_ii: dict[int, int] = {}
        if fault_plan is not None:
            for p in list(live):
                spec = fault_plan.replica_fault(p, chunk.index)
                if spec is None:
                    continue
                if spec.kind == "kill":
                    live.remove(p)
                    quarantined.append(p)
                    if trace_on:
                        assert tracer is not None
                        tracer.instant(
                            "replica quarantined", "kernel",
                            ts=float(total_cycles), replica=p,
                            chunk=chunk.index)
                else:
                    slow_ii[p] = max(1, round(spec.factor))
        if not live:
            raise ReplicaLostError(
                f"all {decomp.parts} kernel replicas lost by chunk "
                f"{chunk.index}; no survivor to reschedule onto"
            )

        def build_merged(chunk=chunk, slow_ii=slow_ii) -> DataflowGraph:
            merged = DataflowGraph(f"multi[chunk={chunk.index}]")
            for p in live:
                # Merge the part's stages and streams into one graph so a
                # single engine advances all kernels cycle by cycle.
                merged.merge(build_part(p, chunk, slow_ii.get(p, 1)))
            return merged

        chunk_start = total_cycles
        stats = run_resilient(build_merged, list(live), chunk)
        chunk_cycles.append(stats.cycles)
        total_cycles += stats.cycles
        if trace_on:
            assert tracer is not None
            tracer.add_span(
                f"chunk {chunk.index}", "kernel", chunk_start,
                total_cycles, category="chunk",
                replicas=len(live), write_width=chunk.write_width)

        # Graceful degradation: survivors pick up the quarantined
        # replicas' X-slabs, serialised after their own chunk work.  The
        # rescheduled graph is numerically identical to the one the dead
        # replica would have run, so the output stays bit-identical —
        # only the cycle count grows.
        for p in quarantined:
            resched_start = total_cycles
            extra = run_resilient(
                lambda p=p, chunk=chunk: build_part(p, chunk), [p], chunk)
            total_cycles += extra.cycles
            chunk_cycles[-1] += extra.cycles
            rescheduled_chunks += 1
            if trace_on:
                assert tracer is not None
                tracer.add_span(
                    f"chunk {chunk.index} resched k{p}", "kernel",
                    resched_start, total_cycles, category="reschedule",
                    replica=p)

    if metrics is not None and metrics.enabled:
        metrics.counter(
            "arbiter_grants", "cell-read grants issued by the shared memory",
        ).inc(arbiter.grants)
        metrics.counter(
            "arbiter_denials", "cell-read requests the shared memory denied",
        ).inc(arbiter.denials)
        total_requests = arbiter.grants + arbiter.denials
        metrics.gauge(
            "read_starvation_fraction",
            "fraction of read requests denied by the arbiter",
        ).set(arbiter.denials / total_requests if total_requests else 0.0)
        metrics.counter(
            "replica_quarantines", "kernel replicas lost to faults",
        ).inc(len(quarantined))
        metrics.counter(
            "rescheduled_chunks", "quarantined work re-run on survivors",
        ).inc(rescheduled_chunks)

    return MultiKernelSimResult(
        sources=out,
        total_cycles=total_cycles,
        num_kernels=decomp.parts,
        arbiter=arbiter,
        chunk_cycles=chunk_cycles,
        quarantined=quarantined,
        rescheduled_chunks=rescheduled_chunks,
        chunk_retries=chunk_retries,
        ff_veto_reason=veto_reason,
    )
