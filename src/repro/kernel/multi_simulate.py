"""Cycle-accurate co-simulation of multiple kernels sharing a memory.

Section IV scales the design to several kernel instances per device.
On HBM2 each kernel owns its banks; on DDR all kernels contend for a few
banks.  This module simulates that contention at cycle level: the read
stages of all kernel instances draw grants from a shared
:class:`MemoryArbiter` with a fixed issue rate (cell-reads per cycle the
memory system sustains), so starving the arbiter reproduces the DDR
saturation the analytic model charges — and with ample grants the
co-simulation matches the independent-kernels model exactly.

Kernel instances are synchronised per Y-chunk (all instances process
chunk *j* together); real hardware lets them drift, but the drift is
bounded by one chunk's fill and the totals agree with the closed-form
model to within that bound (asserted in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet
from repro.core.grid import GridDecomposition
from repro.dataflow.engine import DataflowEngine
from repro.dataflow.graph import DataflowGraph
from repro.errors import ConfigurationError
from repro.kernel.builder import build_advection_graph
from repro.kernel.config import KernelConfig
from repro.kernel.stages import CellInput, ReadDataStage

__all__ = ["MemoryArbiter", "MultiKernelSimResult", "simulate_multi_kernel"]


class MemoryArbiter:
    """Grants cell-read issues at a sustained fractional rate per cycle.

    ``rate`` is the number of cell reads the shared memory can issue per
    kernel clock cycle (e.g. 6 kernels on HBM2 get rate >= 6; two DDR
    banks might sustain 2.5).  A credit accumulator implements fractional
    rates exactly.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"arbiter rate must be positive, got {rate}")
        self.rate = rate
        self._credits = 0.0
        self._cycle = -1
        self.grants = 0
        self.denials = 0

    def tick(self, cycle: int) -> None:
        """Advance to ``cycle``, accruing credits (capped at one cycle's
        worth above the integer part to avoid unbounded bursts)."""
        if cycle != self._cycle:
            self._cycle = cycle
            self._credits = min(self._credits + self.rate,
                                self.rate + 1.0)

    def request(self) -> bool:
        """One stage asks to issue one cell read this cycle."""
        if self._credits >= 1.0:
            self._credits -= 1.0
            self.grants += 1
            return True
        self.denials += 1
        return False


class ArbitratedReadStage(ReadDataStage):
    """A read stage that must win a grant from the shared arbiter."""

    def __init__(self, name: str, cells: Iterator[CellInput] | None = None,
                 *, arbiter: MemoryArbiter, block=None, ii: int = 1,
                 latency: int = 16) -> None:
        super().__init__(name, cells, block=block, ii=ii, latency=latency)
        self.arbiter = arbiter

    def _try_fire(self, cycle: int) -> bool:
        self.arbiter.tick(cycle)
        if cycle < self._next_fire_cycle:
            self.stats.ii_waits += 1
            return False
        if len(self._pipeline) >= self.latency:
            self.stats.pipeline_full_stalls += 1
            return False
        if self.exhausted():
            return False
        if not self.arbiter.request():
            self.stats.input_stalls += 1  # starved by the memory system
            return False
        return super()._try_fire(cycle)

    def ff_signature(self, cycle: int) -> tuple | None:
        # A starved arbiter makes firing data-rate-dependent in ways the
        # periodicity proof does not cover once denial history differs
        # between kernels: veto fast-forward for the whole run the moment
        # any request has ever been denied.  With ample credits the
        # accumulator is part of the control state (it decides *when*
        # grants are available), so it joins the signature exactly.
        if self.arbiter.denials > 0:
            return None
        base = super().ff_signature(cycle)
        if base is None:
            return None
        return base + (self.arbiter._credits,)

    def ff_commit(self, old_cycle: int, new_cycle: int, *, fires: int,
                  retired: int, tail_outputs) -> None:
        super().ff_commit(old_cycle, new_cycle, fires=fires,
                          retired=retired, tail_outputs=tail_outputs)
        # Every fast-forwarded firing would have won one grant.
        self.arbiter.grants += fires


@dataclass
class MultiKernelSimResult:
    """Outcome of a multi-kernel co-simulation."""

    sources: SourceSet
    total_cycles: int
    num_kernels: int
    arbiter: MemoryArbiter
    chunk_cycles: list[int] = field(default_factory=list)

    @property
    def read_starvation_fraction(self) -> float:
        total = self.arbiter.grants + self.arbiter.denials
        return self.arbiter.denials / total if total else 0.0


def simulate_multi_kernel(config: KernelConfig, fields: FieldSet,
                          coeffs: AdvectionCoefficients | None = None, *,
                          num_kernels: int,
                          memory_cells_per_cycle: float | None = None,
                          max_cycles_per_chunk: int = 10_000_000,
                          mode: str = "exact",
                          ) -> MultiKernelSimResult:
    """Co-simulate ``num_kernels`` kernel instances sharing one memory.

    Parameters
    ----------
    config:
        Per-kernel design; ``config.grid`` is the *global* grid.
    memory_cells_per_cycle:
        Shared memory's sustained issue rate in cell reads per cycle
        across all kernels.  ``None`` means one per kernel per cycle
        (no contention, the HBM2 regime).
    mode:
        Engine mode (``"exact"`` or ``"fast"``); fast-forward disables
        itself automatically the moment the arbiter starves any read
        stage, so a contended memory always simulates exactly.
    """
    grid = config.grid
    if fields.grid.interior_shape != grid.interior_shape:
        raise ConfigurationError(
            "fields do not match the configured grid"
        )
    if num_kernels < 1:
        raise ConfigurationError(
            f"num_kernels must be >= 1, got {num_kernels}"
        )
    if coeffs is None:
        coeffs = AdvectionCoefficients.uniform(grid)
    rate = (float(num_kernels) if memory_cells_per_cycle is None
            else memory_cells_per_cycle)
    arbiter = MemoryArbiter(rate)

    decomp = GridDecomposition(grid, min(num_kernels, grid.nx))
    out = SourceSet.zeros(grid)

    # Per-part halo-extended views and sub-configs.  The chunk plans of
    # all parts are identical (chunking is in Y, the undecomposed axis).
    parts = []
    for p in range(decomp.parts):
        x0, x1 = decomp.bounds[p]
        sub_grid = decomp.subgrid(p)
        sub_fields = FieldSet(
            sub_grid,
            fields.u[x0:x1 + 2, :, :],
            fields.v[x0:x1 + 2, :, :],
            fields.w[x0:x1 + 2, :, :],
        )
        parts.append((x0, sub_grid, sub_fields))

    chunk_plan = config.for_grid(parts[0][1]).chunk_plan()
    total_cycles = 0
    chunk_cycles: list[int] = []

    for chunk in chunk_plan.chunks:
        merged = DataflowGraph(f"multi[chunk={chunk.index}]")
        for p, (x0, sub_grid, sub_fields) in enumerate(parts):
            sub_config = config.for_grid(sub_grid)
            part_graph = build_advection_graph(
                sub_config, sub_fields, chunk, coeffs, out,
                x_offset=x0, name_prefix=f"k{p}.",
                read_stage_cls=lambda name, cells, ii=1, latency=16,
                block=None: (
                    ArbitratedReadStage(name, cells, arbiter=arbiter,
                                        block=block, ii=ii,
                                        latency=latency)),
            )
            # Merge the part's stages and streams into one graph so a
            # single engine advances all kernels cycle by cycle.
            merged.merge(part_graph)
        # A heavily starved arbiter can stall every read stage for
        # ~kernels/rate cycles between grants; widen the engine's
        # deadlock grace accordingly.
        grace = 64 + int(4 * decomp.parts / min(rate, 1.0))
        stats = DataflowEngine(merged, max_cycles=max_cycles_per_chunk,
                               stall_grace=grace, mode=mode).run()
        chunk_cycles.append(stats.cycles)
        total_cycles += stats.cycles

    return MultiKernelSimResult(
        sources=out,
        total_cycles=total_cycles,
        num_kernels=decomp.parts,
        arbiter=arbiter,
        chunk_cycles=chunk_cycles,
    )
