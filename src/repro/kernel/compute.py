"""Per-cell advection arithmetic on 27-point stencil windows.

These functions are the "advect U/V/W" boxes of Fig. 2: each consumes the
three field windows for one cell and produces that cell's source term.
The expression trees are kept *identical* to the scalar specification in
:mod:`repro.core.golden` (same association, same evaluation order) so the
dataflow simulation reproduces the reference bit-for-bit — the test suite
enforces this.

A window-based implementation cannot cheat: it only sees the 27 values the
shift buffer forwarded, which is precisely the paper's observation that
"typically only 8 unique values of the 27 point 3D stencil are required for
each field advection" while the general-purpose buffer forwards all 27.
"""

from __future__ import annotations

import numpy as np

from repro.core.coefficients import AdvectionCoefficients
from repro.shiftbuffer.window import StencilWindow

__all__ = ["advect_u", "advect_v", "advect_w", "advect_cell_windows",
           "advect_u_block", "advect_v_block", "advect_w_block",
           "UNIQUE_STENCIL_POINTS"]

#: Unique stencil points actually read per field advection (paper: ~8).
UNIQUE_STENCIL_POINTS: dict[str, int] = {"u": 8, "v": 8, "w": 9}


def advect_u(u: StencilWindow, v: StencilWindow, w: StencilWindow,
             coeffs: AdvectionCoefficients, k: int, nz: int) -> float:
    """Source term for the U field at vertical level ``k``."""
    tcx, tcy = coeffs.tcx, coeffs.tcy
    su = tcx * (
        u.at(-1, 0, 0) * (u.at(0, 0, 0) + u.at(-1, 0, 0))
        - u.at(1, 0, 0) * (u.at(0, 0, 0) + u.at(1, 0, 0))
    )
    su += tcy * (
        u.at(0, -1, 0) * (v.at(0, -1, 0) + v.at(1, -1, 0))
        - u.at(0, 1, 0) * (v.at(0, 0, 0) + v.at(1, 0, 0))
    )
    if k < nz - 1:
        su += (
            coeffs.tzc1[k] * u.at(0, 0, -1) * (w.at(0, 0, -1) + w.at(1, 0, -1))
            - coeffs.tzc2[k] * u.at(0, 0, 1) * (w.at(0, 0, 0) + w.at(1, 0, 0))
        )
    else:
        su += coeffs.tzc1[k] * u.at(0, 0, -1) * (w.at(0, 0, -1) + w.at(1, 0, -1))
    return su


def advect_v(u: StencilWindow, v: StencilWindow, w: StencilWindow,
             coeffs: AdvectionCoefficients, k: int, nz: int) -> float:
    """Source term for the V field at vertical level ``k``."""
    tcx, tcy = coeffs.tcx, coeffs.tcy
    sv = tcy * (
        v.at(0, -1, 0) * (v.at(0, 0, 0) + v.at(0, -1, 0))
        - v.at(0, 1, 0) * (v.at(0, 0, 0) + v.at(0, 1, 0))
    )
    sv += tcx * (
        v.at(-1, 0, 0) * (u.at(-1, 0, 0) + u.at(-1, 1, 0))
        - v.at(1, 0, 0) * (u.at(0, 0, 0) + u.at(0, 1, 0))
    )
    if k < nz - 1:
        sv += (
            coeffs.tzc1[k] * v.at(0, 0, -1) * (w.at(0, 0, -1) + w.at(0, 1, -1))
            - coeffs.tzc2[k] * v.at(0, 0, 1) * (w.at(0, 0, 0) + w.at(0, 1, 0))
        )
    else:
        sv += coeffs.tzc1[k] * v.at(0, 0, -1) * (w.at(0, 0, -1) + w.at(0, 1, -1))
    return sv


def advect_w(u: StencilWindow, v: StencilWindow, w: StencilWindow,
             coeffs: AdvectionCoefficients, k: int, nz: int) -> float:
    """Source term for the W field at vertical level ``k``.

    Zero at the column top (no W source there); the top window's stale
    ``dk=+1`` registers are therefore never read.
    """
    if k >= nz - 1:
        return 0.0
    tcx, tcy = coeffs.tcx, coeffs.tcy
    sw = tcx * (
        w.at(-1, 0, 0) * (u.at(-1, 0, 0) + u.at(-1, 0, 1))
        - w.at(1, 0, 0) * (u.at(0, 0, 0) + u.at(0, 0, 1))
    )
    sw += tcy * (
        w.at(0, -1, 0) * (v.at(0, -1, 0) + v.at(0, -1, 1))
        - w.at(0, 1, 0) * (v.at(0, 0, 0) + v.at(0, 0, 1))
    )
    sw += (
        coeffs.tzd1[k] * w.at(0, 0, -1) * (w.at(0, 0, 0) + w.at(0, 0, -1))
        - coeffs.tzd2[k] * w.at(0, 0, 1) * (w.at(0, 0, 0) + w.at(0, 0, 1))
    )
    return sw


def advect_cell_windows(u: StencilWindow, v: StencilWindow, w: StencilWindow,
                        coeffs: AdvectionCoefficients, k: int, nz: int
                        ) -> tuple[float, float, float]:
    """All three source terms for one cell from its stencil windows."""
    return (
        advect_u(u, v, w, coeffs, k, nz),
        advect_v(u, v, w, coeffs, k, nz),
        advect_w(u, v, w, coeffs, k, nz),
    )


# -- batched variants ----------------------------------------------------------
#
# The ``*_block`` functions below evaluate the same expression trees over
# index vectors of cell centres, reading straight from the streamed block
# arrays (window ``at(di, dj, dk)`` is by construction the block value at
# ``(cx+di, cy+dj, cz+dk)``, for top windows too).  Order of operations is
# copied term for term from the scalar forms — numpy's element-wise float64
# arithmetic performs the identical IEEE-754 operations, so the results are
# bit-for-bit equal to looping the scalar functions; the equivalence tests
# enforce this.  The k-branch is expressed with ``np.where`` over terms
# whose per-lane expression matches the scalar branch taken.


def advect_u_block(u: np.ndarray, v: np.ndarray, w: np.ndarray,
                   coeffs: AdvectionCoefficients, cx: np.ndarray,
                   cy: np.ndarray, cz: np.ndarray, nz: int) -> np.ndarray:
    """Vector of U source terms for cell centres ``(cx, cy, cz)``."""
    tcx, tcy = coeffs.tcx, coeffs.tcy
    # Clamped +1 level: the lanes that read it (k < nz-1) never clamp;
    # top lanes gather a discarded in-bounds value instead of faulting.
    kz = np.minimum(cz + 1, nz - 1)
    su = tcx * (
        u[cx - 1, cy, cz] * (u[cx, cy, cz] + u[cx - 1, cy, cz])
        - u[cx + 1, cy, cz] * (u[cx, cy, cz] + u[cx + 1, cy, cz])
    )
    su += tcy * (
        u[cx, cy - 1, cz] * (v[cx, cy - 1, cz] + v[cx + 1, cy - 1, cz])
        - u[cx, cy + 1, cz] * (v[cx, cy, cz] + v[cx + 1, cy, cz])
    )
    below = (coeffs.tzc1[cz] * u[cx, cy, cz - 1]
             * (w[cx, cy, cz - 1] + w[cx + 1, cy, cz - 1]))
    above = (coeffs.tzc2[cz] * u[cx, cy, kz]
             * (w[cx, cy, cz] + w[cx + 1, cy, cz]))
    su += np.where(cz < nz - 1, below - above, below)
    return su


def advect_v_block(u: np.ndarray, v: np.ndarray, w: np.ndarray,
                   coeffs: AdvectionCoefficients, cx: np.ndarray,
                   cy: np.ndarray, cz: np.ndarray, nz: int) -> np.ndarray:
    """Vector of V source terms for cell centres ``(cx, cy, cz)``."""
    tcx, tcy = coeffs.tcx, coeffs.tcy
    kz = np.minimum(cz + 1, nz - 1)
    sv = tcy * (
        v[cx, cy - 1, cz] * (v[cx, cy, cz] + v[cx, cy - 1, cz])
        - v[cx, cy + 1, cz] * (v[cx, cy, cz] + v[cx, cy + 1, cz])
    )
    sv += tcx * (
        v[cx - 1, cy, cz] * (u[cx - 1, cy, cz] + u[cx - 1, cy + 1, cz])
        - v[cx + 1, cy, cz] * (u[cx, cy, cz] + u[cx, cy + 1, cz])
    )
    below = (coeffs.tzc1[cz] * v[cx, cy, cz - 1]
             * (w[cx, cy, cz - 1] + w[cx, cy + 1, cz - 1]))
    above = (coeffs.tzc2[cz] * v[cx, cy, kz]
             * (w[cx, cy, cz] + w[cx, cy + 1, cz]))
    sv += np.where(cz < nz - 1, below - above, below)
    return sv


def advect_w_block(u: np.ndarray, v: np.ndarray, w: np.ndarray,
                   coeffs: AdvectionCoefficients, cx: np.ndarray,
                   cy: np.ndarray, cz: np.ndarray, nz: int) -> np.ndarray:
    """Vector of W source terms for cell centres ``(cx, cy, cz)``.

    Zero at column tops, exactly like the scalar form.
    """
    tcx, tcy = coeffs.tcx, coeffs.tcy
    kz = np.minimum(cz + 1, nz - 1)
    sw = tcx * (
        w[cx - 1, cy, cz] * (u[cx - 1, cy, cz] + u[cx - 1, cy, kz])
        - w[cx + 1, cy, cz] * (u[cx, cy, cz] + u[cx, cy, kz])
    )
    sw += tcy * (
        w[cx, cy - 1, cz] * (v[cx, cy - 1, cz] + v[cx, cy - 1, kz])
        - w[cx, cy + 1, cz] * (v[cx, cy, cz] + v[cx, cy, kz])
    )
    sw += (
        coeffs.tzd1[cz] * w[cx, cy, cz - 1]
        * (w[cx, cy, cz] + w[cx, cy, cz - 1])
        - coeffs.tzd2[cz] * w[cx, cy, kz]
        * (w[cx, cy, cz] + w[cx, cy, kz])
    )
    return np.where(cz < nz - 1, sw, 0.0)
