"""The dataflow stages of the advection kernel (the boxes of Fig. 2).

``read data -> shift buffer -> replicate -> advect U/V/W -> write data``

Each stage is a :class:`~repro.dataflow.stage.Stage`, so the cycle engine
gives us the machine behaviour (II, pipeline fill, backpressure) while the
functional behaviour lives in :mod:`repro.kernel.compute` and
:mod:`repro.shiftbuffer.buffer3d` — the same separation the HLS code keeps
between pragmas and arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

import numpy as np

from repro.core.coefficients import AdvectionCoefficients
from repro.dataflow.bulk import (
    Bulk,
    ChainBulk,
    FireBulkResult,
    ListBulk,
    ListFireResult,
    UniformFireResult,
)
from repro.dataflow.stage import SourceStage, Stage
from repro.errors import DataflowError
from repro.shiftbuffer.buffer3d import ShiftBuffer3D
from repro.shiftbuffer.ports import MemoryPortTracker
from repro.shiftbuffer.window import StencilWindow

__all__ = [
    "CellInput",
    "StencilBundle",
    "CellBlockBulk",
    "StencilBulk",
    "AdvectResultBulk",
    "ReadDataStage",
    "ShiftBufferStage",
    "ReplicateStage",
    "AdvectStage",
    "WriteDataStage",
]


@dataclass(frozen=True)
class CellInput:
    """One grid cell's worth of input data (a 3-field packed word)."""

    u: float
    v: float
    w: float


@dataclass(frozen=True)
class StencilBundle:
    """The three 27-point windows for one output cell."""

    u: StencilWindow
    v: StencilWindow
    w: StencilWindow
    center: tuple[int, int, int]
    top: bool


class CellBlockBulk(Bulk):
    """A run of :class:`CellInput` items backed by flat block arrays.

    ``start``/``stop`` index into the streaming order of the chunk block;
    cells are only built as objects when a FIFO leftover materialises.
    """

    def __init__(self, flats: tuple[np.ndarray, np.ndarray, np.ndarray],
                 start: int, stop: int) -> None:
        self.flats = flats
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def slice(self, start: int, stop: int) -> "CellBlockBulk":
        self._check_range(start, stop)
        return CellBlockBulk(self.flats, self.start + start,
                             self.start + stop)

    def materialize(self) -> list[CellInput]:
        u, v, w = self.flats
        return [
            CellInput(float(u[i]), float(v[i]), float(w[i]))
            for i in range(self.start, self.stop)
        ]


class StencilBulk(Bulk):
    """A run of :class:`StencilBundle` emissions addressed by flat index.

    Backed by the chunk's block arrays; windows are only cut
    (:meth:`ShiftBuffer3D.window_at`) for the handful of bundles that end
    up inside FIFOs or stage pipelines when exact ticking resumes — the
    bulk of them flow straight into the batched advect compute.
    """

    def __init__(self, buffers: Mapping[str, ShiftBuffer3D],
                 blocks: Mapping[str, np.ndarray], start: int,
                 stop: int) -> None:
        self.buffers = dict(buffers)
        self.blocks = dict(blocks)
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def slice(self, start: int, stop: int) -> "StencilBulk":
        self._check_range(start, stop)
        return StencilBulk(self.buffers, self.blocks, self.start + start,
                           self.start + stop)

    def bundle_at(self, index: int) -> StencilBundle:
        wu = self.buffers["u"].window_at(index, self.blocks["u"])
        wv = self.buffers["v"].window_at(index, self.blocks["v"])
        ww = self.buffers["w"].window_at(index, self.blocks["w"])
        return StencilBundle(u=wu, v=wv, w=ww, center=wu.center, top=wu.top)

    def materialize(self) -> list[StencilBundle]:
        return [self.bundle_at(i) for i in range(self.start, self.stop)]

    def centers(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Centre coordinate vectors of every bundle in this run."""
        buf = self.buffers["u"]
        ny, nz = buf.ny, buf.nz
        indices = np.arange(self.start, self.stop)
        column, j = np.divmod(indices, nz - 1)
        cx = column // (ny - 2) + 1
        cy = column % (ny - 2) + 1
        cz = j + 1
        return cx, cy, cz


class AdvectResultBulk(Bulk):
    """A run of ``(center, value)`` advect results backed by arrays."""

    def __init__(self, cx: np.ndarray, cy: np.ndarray, cz: np.ndarray,
                 values: np.ndarray) -> None:
        self.cx = cx
        self.cy = cy
        self.cz = cz
        self.values = values

    def __len__(self) -> int:
        return len(self.values)

    def slice(self, start: int, stop: int) -> "AdvectResultBulk":
        self._check_range(start, stop)
        return AdvectResultBulk(self.cx[start:stop], self.cy[start:stop],
                                self.cz[start:stop],
                                self.values[start:stop])

    def materialize(self) -> list[tuple[tuple[int, int, int], float]]:
        return [
            ((int(self.cx[i]), int(self.cy[i]), int(self.cz[i])),
             float(self.values[i]))
            for i in range(len(self.values))
        ]


class ReadDataStage(SourceStage):
    """Streams `CellInput` values for one chunk from "external memory".

    The memory system's sustained throughput is modelled by the ``ii``
    parameter: an external memory that can only supply a cell every other
    cycle is a read stage with II = 2 (the device model computes this from
    bandwidth; see :mod:`repro.hardware.memory`).

    Parameters
    ----------
    cells:
        Legacy item-by-item input, any iterator of :class:`CellInput`.
    block:
        The three ``(nx, ny, nz)`` field blocks of the chunk, in streaming
        layout.  When given, cells are cut from the arrays on demand —
        value-identical to the iterator path — and batched firings
        (``fire_bulk``) hand whole runs downstream without building cell
        objects at all.
    """

    def __init__(self, name: str, cells: Iterator[CellInput] | None = None,
                 *, block: tuple[np.ndarray, ...] | None = None, ii: int = 1,
                 latency: int = 16) -> None:
        if block is not None:
            self._flats: tuple[np.ndarray, ...] | None = tuple(
                np.ascontiguousarray(b, dtype=float).reshape(-1)
                for b in block
            )
            if len(self._flats) != 3:
                raise DataflowError(
                    f"read stage {name!r}: block must hold the three "
                    f"(u, v, w) field arrays, got {len(self._flats)}"
                )
            self._total = len(self._flats[0])
            self._cursor = 0
            cells = iter(())
        else:
            if cells is None:
                raise DataflowError(
                    f"read stage {name!r} needs either cells or block"
                )
            self._flats = None
        super().__init__(name, items=cells, ii=ii, latency=latency)

    def _cell_at(self, index: int) -> CellInput:
        u, v, w = self._flats  # type: ignore[misc]
        return CellInput(float(u[index]), float(v[index]), float(w[index]))

    def exhausted(self) -> bool:
        if self._flats is None:
            return super().exhausted()
        return self._cursor >= self._total

    def _try_fire(self, cycle: int) -> bool:
        if self._flats is None:
            return super()._try_fire(cycle)
        if cycle < self._next_fire_cycle:
            self.stats.ii_waits += 1
            return False
        if len(self._pipeline) >= self.latency:
            self.stats.pipeline_full_stalls += 1
            return False
        if self._cursor >= self._total:
            return False
        item = self._cell_at(self._cursor)
        self._cursor += 1
        self.stats.fires += 1
        self._next_fire_cycle = cycle + self.ii
        self._pipeline.append(
            (cycle + self.latency, {"out": [item]}, (("out", 1),)))
        return True

    def ff_signature(self, cycle: int) -> tuple | None:
        if self._flats is None:
            return super().ff_signature(cycle)
        base = Stage.ff_signature(self, cycle)
        return base + (self._cursor < self._total,) if base is not None \
            else None

    def ff_fire_capacity(self, want: int) -> int:
        if self._flats is None:
            return super().ff_fire_capacity(want)
        return min(want, self._total - self._cursor)

    def fire_bulk(self, count: int, inputs: dict[str, Bulk],
                  cycle: int) -> FireBulkResult:
        if self._flats is None:
            return super().fire_bulk(count, inputs, cycle)
        if count > self._total - self._cursor:
            raise DataflowError(
                f"read stage {self.name!r}: fast-forward wants {count} "
                f"cells, only {self._total - self._cursor} remain"
            )
        start = self._cursor
        self._cursor += count
        return UniformFireResult(
            {"out": CellBlockBulk(self._flats, start, self._cursor)})


def _producing_index(emission: int, nz: int) -> int:
    """Index of the producing feed that emitted flat emission ``emission``.

    Producing feeds are numbered per interior column: ``nz - 2`` of them,
    the last of which (the column top) emits two windows — emissions
    ``nz - 3`` and ``nz - 2`` of its column share one feed.
    """
    column, j = divmod(emission, nz - 1)
    return column * (nz - 2) + min(j, nz - 3)


def _emission_stop_of_feed(feed: int, nz: int) -> int:
    """One past the last flat emission index of producing feed ``feed``."""
    column, j = divmod(feed, nz - 2)
    stop = column * (nz - 1) + j + 1
    if j == nz - 3:
        stop += 1  # column top: the double emission
    return stop


class _ShiftFireResult(FireBulkResult):
    """Fire-bulk result of the shift-buffer stage.

    Emissions ``[first, stop)`` map to producing feeds by closed-form
    arithmetic (column tops emit two bundles per feed); bundles are
    materialised individually only for the tail that re-enters the stage
    pipeline.
    """

    def __init__(self, bulk: StencilBulk, nz: int) -> None:
        self._bulk = bulk
        self._nz = nz
        if bulk.stop == bulk.start:
            self.producing_firings = 0
            self._first_feed = 0
        else:
            self._first_feed = _producing_index(bulk.start, nz)
            self.producing_firings = (
                _producing_index(bulk.stop - 1, nz) - self._first_feed + 1)

    def port_total(self, port: str) -> int:
        return len(self._bulk) if port == "out" else 0

    def head_bulk(self, port: str, count: int) -> Bulk:
        if count == 0:
            return ListBulk([])
        stop = min(
            _emission_stop_of_feed(self._first_feed + count - 1, self._nz),
            self._bulk.stop,
        )
        return self._bulk.slice(0, stop - self._bulk.start)

    def tail_firings(self, count: int) -> list[dict[str, list[Any]]]:
        firings: list[dict[str, list[Any]]] = []
        for feed in range(self._first_feed + self.producing_firings - count,
                          self._first_feed + self.producing_firings):
            stop = min(_emission_stop_of_feed(feed, self._nz),
                       self._bulk.stop)
            start = max(_emission_stop_of_feed(feed - 1, self._nz)
                        if feed > 0 else 0, self._bulk.start)
            firings.append({
                "out": [self._bulk.bundle_at(e) for e in range(start, stop)]
            })
        return firings


class ShiftBufferStage(Stage):
    """Feeds the three per-field shift buffers; emits stencil bundles.

    One :class:`CellInput` is consumed per firing; zero, one, or two
    bundles are produced (two at column tops — the burst the downstream
    FIFO absorbs, see the shift-buffer docs).

    ``backing`` (the three chunk blocks in streaming layout) unlocks the
    batched firing path: the buffers jump ahead analytically
    (:meth:`ShiftBuffer3D.feed_bulk`) and emissions travel as a
    :class:`StencilBulk` instead of materialised windows.
    """

    input_ports = ("in",)
    output_ports = ("out",)

    #: Bursts at column tops (0, 1, or 2 bundles per firing) break the
    #: one-word-in/one-word-out premise of the static occupancy proof;
    #: runtime recurrence detection still batches this stage because
    #: :meth:`ff_signature` carries the streaming position.
    unit_rate = False

    def __init__(self, name: str, nx: int, ny: int, nz: int, *,
                 ii: int = 1, latency: int = 2, partitioned: bool = True,
                 tracker: MemoryPortTracker | None = None,
                 backing: tuple[np.ndarray, ...] | None = None) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self.tracker = tracker if tracker is not None else MemoryPortTracker(
            enforce=False
        )
        self._buffers = {
            field: ShiftBuffer3D(
                nx, ny, nz, partitioned=partitioned, tracker=self.tracker,
                name=f"{name}.{field}",
            )
            for field in ("u", "v", "w")
        }
        self.nz = nz
        if backing is not None and len(backing) != 3:
            raise DataflowError(
                f"shift stage {name!r}: backing must hold the three "
                f"(u, v, w) field blocks, got {len(backing)}"
            )
        self._backing = None if backing is None else {
            field: np.ascontiguousarray(arr, dtype=float)
            for field, arr in zip(("u", "v", "w"), backing)
        }
        #: Cycle of the first window emission — the prime/steady boundary
        #: the observability plane splits this stage's activity span at.
        #: ``None`` until the buffers first produce (and after reset).
        self.first_emit_cycle: int | None = None

    def fire(self, cycle: int, inputs: Mapping[str, list]) -> Mapping[str, list]:
        (cell,) = inputs["in"]
        wins_u = self._buffers["u"].feed(cell.u)
        wins_v = self._buffers["v"].feed(cell.v)
        wins_w = self._buffers["w"].feed(cell.w)
        if not (len(wins_u) == len(wins_v) == len(wins_w)):
            raise DataflowError(
                f"shift buffers desynchronised: emitted "
                f"{len(wins_u)}/{len(wins_v)}/{len(wins_w)} windows"
            )
        bundles = [
            StencilBundle(u=wu, v=wv, w=ww, center=wu.center, top=wu.top)
            for wu, wv, ww in zip(wins_u, wins_v, wins_w)
        ]
        if bundles and self.first_emit_cycle is None:
            self.first_emit_cycle = cycle
        return {"out": bundles} if bundles else {}

    def ff_signature(self, cycle: int) -> tuple | None:
        base = super().ff_signature(cycle)
        if base is None:
            return None
        # Emission control depends on the streaming position only; X
        # positions >= 2 all behave alike, so clamping X makes every
        # steady-state plane comparable and the fundamental period one
        # full (ny * nz) plane of feeds.
        x, y, z = self._buffers["u"].position
        return base + (min(x, 2), y, z)

    def ff_fire_capacity(self, want: int) -> int:
        buffer = self._buffers["u"]
        return min(want, buffer.expected_feeds - buffer.fed)

    def fire_bulk(self, count: int, inputs: dict[str, Bulk],
                  cycle: int) -> FireBulkResult:
        if self._backing is None:
            return super().fire_bulk(count, inputs, cycle)
        if len(inputs.get("in", ())) != count:
            raise DataflowError(
                f"shift stage {self.name!r}: fast-forward consumed "
                f"{len(inputs.get('in', ()))} cells for {count} firings"
            )
        # The input run must be the block's own cells, in streaming
        # order, continuing exactly where the buffers stand — verify the
        # alignment of every part before discarding item identity.
        position = self._buffers["u"].fed
        flat = {f: self._backing[f].reshape(-1) for f in ("u", "v", "w")}
        for part in inputs["in"].parts():
            if isinstance(part, CellBlockBulk):
                if part.start != position:
                    raise DataflowError(
                        f"shift stage {self.name!r}: cell block starts at "
                        f"{part.start}, buffers have consumed {position}"
                    )
            elif len(part):
                cell = part.materialize()[0]
                if (cell.u != flat["u"][position]
                        or cell.v != flat["v"][position]
                        or cell.w != flat["w"][position]):
                    raise DataflowError(
                        f"shift stage {self.name!r}: stream cell at "
                        f"position {position} does not match the backing "
                        f"block"
                    )
            position += len(part)
        first = stop = 0
        for field in ("u", "v", "w"):
            first, stop = self._buffers[field].feed_bulk(
                count, self._backing[field])
        if stop > first and self.first_emit_cycle is None:
            self.first_emit_cycle = cycle
        return _ShiftFireResult(
            StencilBulk(self._buffers, self._backing, first, stop), self.nz)

    def reset(self) -> None:
        super().reset()
        self.first_emit_cycle = None
        for buffer in self._buffers.values():
            buffer.reset()


class ReplicateStage(Stage):
    """Replicates each stencil bundle to the three advection stages.

    Advection of every field needs all three input fields (the paper's
    motivation for the replicate stages in Fig. 2).
    """

    input_ports = ("in",)
    output_ports = ("u", "v", "w")

    def __init__(self, name: str, *, ii: int = 1, latency: int = 1) -> None:
        super().__init__(name, ii=ii, latency=latency)

    def fire(self, cycle: int, inputs: Mapping[str, list]) -> Mapping[str, list]:
        (bundle,) = inputs["in"]
        return {"u": [bundle], "v": [bundle], "w": [bundle]}

    def fire_bulk(self, count: int, inputs: dict[str, Bulk],
                  cycle: int) -> FireBulkResult:
        bulk = inputs["in"]
        if len(bulk) != count:
            raise DataflowError(
                f"replicate {self.name!r}: fast-forward consumed "
                f"{len(bulk)} bundles for {count} firings"
            )
        return UniformFireResult({"u": bulk, "v": bulk, "w": bulk})


class AdvectStage(Stage):
    """Computes one field's source term per cycle from a stencil bundle.

    This stage is where the 21 double-precision operations per cycle live;
    ``latency`` models the depth of the scheduled floating-point pipeline.
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(self, name: str, field: str,
                 coeffs: AdvectionCoefficients, nz: int, *, ii: int = 1,
                 latency: int = 28) -> None:
        super().__init__(name, ii=ii, latency=latency)
        if field not in ("u", "v", "w"):
            raise DataflowError(f"unknown field {field!r}")
        self.field = field
        self.coeffs = coeffs
        self.nz = nz
        # Import here to avoid a cycle at package import time.
        from repro.kernel import compute
        from repro.core.flops import field_flops

        self._fn = {
            "u": compute.advect_u,
            "v": compute.advect_v,
            "w": compute.advect_w,
        }[field]
        #: Per-cell operation count of this stage, from the paper's 63/55
        #: model; the accounting lint rules cross-check these against
        #: :mod:`repro.core.flops` (AC303).
        self.flops_per_cell = field_flops(field=field)
        self.flops_per_cell_top = field_flops(top=True, field=field)

    def fire(self, cycle: int, inputs: Mapping[str, list]) -> Mapping[str, list]:
        (bundle,) = inputs["in"]
        k = bundle.center[2]
        value = self._fn(bundle.u, bundle.v, bundle.w, self.coeffs, k, self.nz)
        return {"out": [(bundle.center, value)]}

    def fire_bulk(self, count: int, inputs: dict[str, Bulk],
                  cycle: int) -> FireBulkResult:
        from repro.kernel import compute

        block_fn = {
            "u": compute.advect_u_block,
            "v": compute.advect_v_block,
            "w": compute.advect_w_block,
        }[self.field]
        bulk = inputs["in"]
        if len(bulk) != count:
            raise DataflowError(
                f"advect {self.name!r}: fast-forward consumed "
                f"{len(bulk)} bundles for {count} firings"
            )
        out_parts: list[Bulk] = []
        for part in bulk.parts():
            if isinstance(part, StencilBulk):
                cx, cy, cz = part.centers()
                values = block_fn(
                    part.blocks["u"], part.blocks["v"], part.blocks["w"],
                    self.coeffs, cx, cy, cz, self.nz,
                )
                out_parts.append(AdvectResultBulk(cx, cy, cz, values))
            elif len(part):
                out_parts.append(ListBulk([
                    (bundle.center,
                     self._fn(bundle.u, bundle.v, bundle.w, self.coeffs,
                              bundle.center[2], self.nz))
                    for bundle in part.materialize()
                ]))
        return UniformFireResult({"out": ChainBulk(out_parts)})


class WriteDataStage(Stage):
    """Collects the three source streams and writes them to "external memory".

    Results for one cell arrive on the three ports in lock step (the
    advect stages share II and latency); the stage consumes one result per
    port per firing and scatters them into the output arrays at the
    chunk's global offset.
    """

    input_ports = ("su", "sv", "sw")
    output_ports: tuple[str, ...] = ()

    def __init__(self, name: str, su: np.ndarray, sv: np.ndarray,
                 sw: np.ndarray, *, x_offset: int = 0, y_offset: int = 0,
                 ii: int = 1, latency: int = 16) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self._arrays = {"su": su, "sv": sv, "sw": sw}
        self.x_offset = x_offset
        self.y_offset = y_offset
        self.cells_written = 0

    def fire(self, cycle: int, inputs: Mapping[str, list]) -> Mapping[str, list]:
        for port in ("su", "sv", "sw"):
            ((center, value),) = inputs[port]
            cx, cy, cz = center
            self._arrays[port][
                cx - 1 + self.x_offset, cy - 1 + self.y_offset, cz
            ] = value
        self.cells_written += 1
        return {}

    def fire_bulk(self, count: int, inputs: dict[str, Bulk],
                  cycle: int) -> FireBulkResult:
        for port in ("su", "sv", "sw"):
            bulk = inputs[port]
            if len(bulk) != count:
                raise DataflowError(
                    f"write {self.name!r}: fast-forward consumed "
                    f"{len(bulk)} results on {port!r} for {count} firings"
                )
            array = self._arrays[port]
            for part in bulk.parts():
                if isinstance(part, AdvectResultBulk):
                    array[part.cx - 1 + self.x_offset,
                          part.cy - 1 + self.y_offset,
                          part.cz] = part.values
                elif len(part):
                    for (cx, cy, cz), value in part.materialize():
                        array[cx - 1 + self.x_offset,
                              cy - 1 + self.y_offset, cz] = value
        self.cells_written += count
        # A write firing produces nothing: it never enters the pipeline
        # (side effects land at fire time), matching the exact path.
        return ListFireResult([])
