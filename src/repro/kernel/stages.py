"""The dataflow stages of the advection kernel (the boxes of Fig. 2).

``read data -> shift buffer -> replicate -> advect U/V/W -> write data``

Each stage is a :class:`~repro.dataflow.stage.Stage`, so the cycle engine
gives us the machine behaviour (II, pipeline fill, backpressure) while the
functional behaviour lives in :mod:`repro.kernel.compute` and
:mod:`repro.shiftbuffer.buffer3d` — the same separation the HLS code keeps
between pragmas and arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.core.coefficients import AdvectionCoefficients
from repro.dataflow.stage import SourceStage, Stage
from repro.errors import DataflowError
from repro.shiftbuffer.buffer3d import ShiftBuffer3D
from repro.shiftbuffer.ports import MemoryPortTracker
from repro.shiftbuffer.window import StencilWindow

__all__ = [
    "CellInput",
    "StencilBundle",
    "ReadDataStage",
    "ShiftBufferStage",
    "ReplicateStage",
    "AdvectStage",
    "WriteDataStage",
]


@dataclass(frozen=True)
class CellInput:
    """One grid cell's worth of input data (a 3-field packed word)."""

    u: float
    v: float
    w: float


@dataclass(frozen=True)
class StencilBundle:
    """The three 27-point windows for one output cell."""

    u: StencilWindow
    v: StencilWindow
    w: StencilWindow
    center: tuple[int, int, int]
    top: bool


class ReadDataStage(SourceStage):
    """Streams `CellInput` values for one chunk from "external memory".

    The memory system's sustained throughput is modelled by the ``ii``
    parameter: an external memory that can only supply a cell every other
    cycle is a read stage with II = 2 (the device model computes this from
    bandwidth; see :mod:`repro.hardware.memory`).
    """

    def __init__(self, name: str, cells: Iterator[CellInput], *, ii: int = 1,
                 latency: int = 16) -> None:
        super().__init__(name, items=cells, ii=ii, latency=latency)


class ShiftBufferStage(Stage):
    """Feeds the three per-field shift buffers; emits stencil bundles.

    One :class:`CellInput` is consumed per firing; zero, one, or two
    bundles are produced (two at column tops — the burst the downstream
    FIFO absorbs, see the shift-buffer docs).
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(self, name: str, nx: int, ny: int, nz: int, *,
                 ii: int = 1, latency: int = 2, partitioned: bool = True,
                 tracker: MemoryPortTracker | None = None) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self.tracker = tracker if tracker is not None else MemoryPortTracker(
            enforce=False
        )
        self._buffers = {
            field: ShiftBuffer3D(
                nx, ny, nz, partitioned=partitioned, tracker=self.tracker,
                name=f"{name}.{field}",
            )
            for field in ("u", "v", "w")
        }
        self.nz = nz

    def fire(self, cycle: int, inputs: Mapping[str, list]) -> Mapping[str, list]:
        (cell,) = inputs["in"]
        wins_u = self._buffers["u"].feed(cell.u)
        wins_v = self._buffers["v"].feed(cell.v)
        wins_w = self._buffers["w"].feed(cell.w)
        if not (len(wins_u) == len(wins_v) == len(wins_w)):
            raise DataflowError(
                f"shift buffers desynchronised: emitted "
                f"{len(wins_u)}/{len(wins_v)}/{len(wins_w)} windows"
            )
        bundles = [
            StencilBundle(u=wu, v=wv, w=ww, center=wu.center, top=wu.top)
            for wu, wv, ww in zip(wins_u, wins_v, wins_w)
        ]
        return {"out": bundles} if bundles else {}

    def reset(self) -> None:
        super().reset()
        for buffer in self._buffers.values():
            buffer.reset()


class ReplicateStage(Stage):
    """Replicates each stencil bundle to the three advection stages.

    Advection of every field needs all three input fields (the paper's
    motivation for the replicate stages in Fig. 2).
    """

    input_ports = ("in",)
    output_ports = ("u", "v", "w")

    def __init__(self, name: str, *, ii: int = 1, latency: int = 1) -> None:
        super().__init__(name, ii=ii, latency=latency)

    def fire(self, cycle: int, inputs: Mapping[str, list]) -> Mapping[str, list]:
        (bundle,) = inputs["in"]
        return {"u": [bundle], "v": [bundle], "w": [bundle]}


class AdvectStage(Stage):
    """Computes one field's source term per cycle from a stencil bundle.

    This stage is where the 21 double-precision operations per cycle live;
    ``latency`` models the depth of the scheduled floating-point pipeline.
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(self, name: str, field: str,
                 coeffs: AdvectionCoefficients, nz: int, *, ii: int = 1,
                 latency: int = 28) -> None:
        super().__init__(name, ii=ii, latency=latency)
        if field not in ("u", "v", "w"):
            raise DataflowError(f"unknown field {field!r}")
        self.field = field
        self.coeffs = coeffs
        self.nz = nz
        # Import here to avoid a cycle at package import time.
        from repro.kernel import compute
        from repro.core.flops import field_flops

        self._fn = {
            "u": compute.advect_u,
            "v": compute.advect_v,
            "w": compute.advect_w,
        }[field]
        #: Per-cell operation count of this stage, from the paper's 63/55
        #: model; the accounting lint rules cross-check these against
        #: :mod:`repro.core.flops` (AC303).
        self.flops_per_cell = field_flops(field=field)
        self.flops_per_cell_top = field_flops(top=True, field=field)

    def fire(self, cycle: int, inputs: Mapping[str, list]) -> Mapping[str, list]:
        (bundle,) = inputs["in"]
        k = bundle.center[2]
        value = self._fn(bundle.u, bundle.v, bundle.w, self.coeffs, k, self.nz)
        return {"out": [(bundle.center, value)]}


class WriteDataStage(Stage):
    """Collects the three source streams and writes them to "external memory".

    Results for one cell arrive on the three ports in lock step (the
    advect stages share II and latency); the stage consumes one result per
    port per firing and scatters them into the output arrays at the
    chunk's global offset.
    """

    input_ports = ("su", "sv", "sw")
    output_ports: tuple[str, ...] = ()

    def __init__(self, name: str, su: np.ndarray, sv: np.ndarray,
                 sw: np.ndarray, *, x_offset: int = 0, y_offset: int = 0,
                 ii: int = 1, latency: int = 16) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self._arrays = {"su": su, "sv": sv, "sw": sw}
        self.x_offset = x_offset
        self.y_offset = y_offset
        self.cells_written = 0

    def fire(self, cycle: int, inputs: Mapping[str, list]) -> Mapping[str, list]:
        for port in ("su", "sv", "sw"):
            ((center, value),) = inputs[port]
            cx, cy, cz = center
            self._arrays[port][
                cx - 1 + self.x_offset, cy - 1 + self.y_offset, cz
            ] = value
        self.cells_written += 1
        return {}
