"""A generic cycle-level stencil kernel over the general shift buffer.

The advection kernel's dataflow shape — ``read -> shift buffer ->
compute -> write`` — is not specific to advection.  This module provides
that shape for *any* per-window computation, so new stencil kernels (the
diffusion kernel, or a user's own) get a cycle-accurate dataflow
simulation for free:

* :class:`GeneralShiftBufferStage` — streams one value per cycle into a
  :class:`~repro.shiftbuffer.general.GeneralShiftBuffer` and emits its
  windows;
* :class:`WindowComputeStage` — applies a user function mapping one
  window to zero or more ``(center, value)`` results (several, when a
  window also resolves boundary cells — the FIFO-absorbed burst pattern);
* :class:`ScatterWriteStage` — scatters results into an output array;
* :func:`run_stencil_kernel` — wires and runs the whole machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.dataflow.engine import DataflowEngine, RunStats
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import SourceStage, Stage
from repro.errors import ConfigurationError
from repro.shiftbuffer.general import GeneralShiftBuffer, GeneralWindow
from repro.shiftbuffer.ports import MemoryPortTracker

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.observe.metrics import MetricRegistry
    from repro.observe.trace import Tracer

__all__ = [
    "GeneralShiftBufferStage",
    "WindowComputeStage",
    "ScatterWriteStage",
    "run_stencil_kernel",
]

#: A window computation: one window -> [(center, value), ...].
WindowFn = Callable[[GeneralWindow], Sequence[tuple[tuple[int, int, int],
                                                    float]]]


class GeneralShiftBufferStage(Stage):
    """Feeds a radius-``r`` shift buffer; emits its windows."""

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(self, name: str, nx: int, ny: int, nz: int, *,
                 radius: int = 1, ii: int = 1, latency: int = 2,
                 tracker: MemoryPortTracker | None = None) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self.buffer = GeneralShiftBuffer(
            nx, ny, nz, radius=radius,
            tracker=tracker if tracker is not None
            else MemoryPortTracker(enforce=False),
            name=name,
        )

    #: Window emission depends on the buffer's fill position, which the
    #: base control-state fingerprint cannot see: veto steady-state
    #: detection outright so neither fast-forward nor batched exact
    #: execution can match a false period across priming states.
    unit_rate = False

    def ff_signature(self, at_cycle: int) -> None:
        return None

    def fire(self, cycle: int, inputs: Mapping[str, list]):
        (value,) = inputs["in"]
        windows = self.buffer.feed(float(value))
        return {"out": windows} if windows else {}


class WindowComputeStage(Stage):
    """Applies a window function; forwards its (center, value) results."""

    input_ports = ("in",)
    output_ports = ("out",)

    #: The user function decides how many results a window yields, so
    #: the output count is data-dependent: veto steady-state detection.
    unit_rate = False

    def __init__(self, name: str, fn: WindowFn, *, ii: int = 1,
                 latency: int = 8) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self._fn = fn

    def ff_signature(self, at_cycle: int) -> None:
        return None

    def fire(self, cycle: int, inputs: Mapping[str, list]):
        (window,) = inputs["in"]
        results = list(self._fn(window))
        return {"out": results} if results else {}


class ScatterWriteStage(Stage):
    """Writes (center, value) results into an interior output array.

    Centres arrive in the streamed block's halo coordinates; the stage
    shifts them by the halo depth before scattering.
    """

    input_ports = ("in",)
    output_ports: tuple[str, ...] = ()

    def __init__(self, name: str, out: np.ndarray, *, halo: int = 1,
                 ii: int = 1, latency: int = 4) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self._out = out
        self._halo = halo
        self.cells_written = 0

    def fire(self, cycle: int, inputs: Mapping[str, list]):
        ((center, value),) = inputs["in"]
        cx, cy, cz = center
        self._out[cx - self._halo, cy - self._halo, cz] = value
        self.cells_written += 1
        return {}


def run_stencil_kernel(block: np.ndarray, fn: WindowFn, out: np.ndarray, *,
                       radius: int = 1, stream_depth: int = 4,
                       tracker: MemoryPortTracker | None = None,
                       max_cycles: int = 10_000_000,
                       mode: str = "exact", batched: bool = True,
                       fault_plan: "FaultPlan | None" = None,
                       watchdog: int | None = None,
                       tracer: "Tracer | None" = None,
                       metrics: "MetricRegistry | None" = None) -> RunStats:
    """Run one stencil kernel pass, cycle-accurately.

    Parameters
    ----------
    block:
        The halo-extended input block, streamed Z-fastest.
    fn:
        Window computation; may return several results per window (the
        downstream FIFO must absorb the burst: ``stream_depth`` >= the
        largest burst + 1).
    out:
        Interior output array, shape ``(nx - 2r, ny - 2r, nz)`` in the
        x/y axes with the full z extent of ``block``.
    mode, batched:
        Engine execution mode.  The shift-buffer and window-compute
        stages are data-dependent (``unit_rate = False``, no
        ``ff_signature``), so ``mode="fast"`` always demotes to exact
        ticking with a veto recorded on
        :attr:`~repro.dataflow.engine.RunStats.ff_veto_reason`, and
        batched exact execution falls back to the scalar loop — both by
        design, both bit-identical to forced-scalar execution.
    fault_plan, watchdog, tracer, metrics:
        Passed straight to the :class:`~repro.dataflow.engine.
        DataflowEngine` (FIFO word faults, stage freezes, cycle
        watchdog, observability sinks).
    """
    if block.ndim != 3:
        raise ConfigurationError(
            f"expected a 3-D block, got shape {block.shape}"
        )
    nx, ny, nz = block.shape
    expected = (nx - 2 * radius, ny - 2 * radius, nz)
    if out.shape != expected:
        raise ConfigurationError(
            f"output shape {out.shape} does not match expected {expected}"
        )

    graph = DataflowGraph("stencil")
    graph.add(SourceStage("read", iter(block.reshape(-1))))
    shift = graph.add(GeneralShiftBufferStage(
        "shift", nx, ny, nz, radius=radius, tracker=tracker))
    compute = graph.add(WindowComputeStage("compute", fn))
    write = graph.add(ScatterWriteStage("write", out, halo=radius))
    graph.connect("read", "out", shift, "in", depth=stream_depth)
    graph.connect(shift, "out", compute, "in", depth=stream_depth)
    graph.connect(compute, "out", write, "in", depth=stream_depth)
    return DataflowEngine(graph, max_cycles=max_cycles, mode=mode,
                          batched=batched, fault_plan=fault_plan,
                          watchdog=watchdog, tracer=tracer,
                          metrics=metrics).run()
