"""The diffusion kernel on the general-purpose shift buffer.

Demonstrates the paper's central design point — the shift buffer is
*general purpose* — by driving a second, different stencil kernel
(7-point diffusion) from :class:`~repro.shiftbuffer.general.
GeneralShiftBuffer` windows, with the same one-value-per-cycle streaming
protocol the advection kernel uses.

Vertical boundary cells are computed from their neighbouring interior
window (the window centred at ``k=1`` contains everything the one-sided
``k=0`` update needs, and likewise at the top), the same
burst-absorbed-by-FIFOs trick the advection kernel's column tops use.
The result is bit-identical to :func:`repro.core.diffusion.
diffuse_reference`.
"""

from __future__ import annotations

from repro.core.diffusion import diffuse_reference  # noqa: F401 (re-export)
from repro.core.fields import FieldSet, SourceSet
from repro.core.grid import Grid
from repro.errors import ConfigurationError
from repro.shiftbuffer.general import GeneralShiftBuffer, GeneralWindow
from repro.shiftbuffer.ports import MemoryPortTracker

__all__ = ["diffusion_from_window", "diffusion_boundary_from_window",
           "diffuse_shiftbuffer"]


def diffusion_from_window(window: GeneralWindow, grid: Grid,
                          nu: float) -> float:
    """Diffusion source of the window's centre cell (interior k)."""
    rdx2 = 1.0 / (grid.dx * grid.dx)
    rdy2 = 1.0 / (grid.dy * grid.dy)
    rdz2 = 1.0 / (grid.dz * grid.dz)
    c = window.at(0, 0, 0)
    lap = (window.at(-1, 0, 0) + window.at(1, 0, 0) - 2.0 * c) * rdx2
    lap += (window.at(0, -1, 0) + window.at(0, 1, 0) - 2.0 * c) * rdy2
    lap += (window.at(0, 0, -1) + window.at(0, 0, 1) - 2.0 * c) * rdz2
    return nu * lap


def diffusion_boundary_from_window(window: GeneralWindow, grid: Grid,
                                   nu: float, *, top: bool) -> float:
    """Boundary-cell source computed from the adjacent interior window.

    For ``top=False`` the window must be centred at ``k = 1`` and the
    ``k = 0`` cell is evaluated through the ``dk = -1`` plane; for
    ``top=True`` the window is centred at ``k = nz - 2`` and the top cell
    uses the ``dk = +1`` plane.
    """
    rdx2 = 1.0 / (grid.dx * grid.dx)
    rdy2 = 1.0 / (grid.dy * grid.dy)
    rdz2 = 1.0 / (grid.dz * grid.dz)
    dk = 1 if top else -1
    c = window.at(0, 0, dk)
    lap = (window.at(-1, 0, dk) + window.at(1, 0, dk) - 2.0 * c) * rdx2
    lap += (window.at(0, -1, dk) + window.at(0, 1, dk) - 2.0 * c) * rdy2
    lap += (window.at(0, 0, 0) - c) * rdz2  # one-sided vertical term
    return nu * lap


def diffuse_shiftbuffer(fields: FieldSet, nu: float = 1.0, *,
                        tracker: MemoryPortTracker | None = None
                        ) -> SourceSet:
    """Diffusion of all three fields through general shift buffers.

    Streams each field once (x/y halo included), evaluating interior
    cells from their windows and the vertical boundary cells from the
    adjacent windows.  Must agree bit for bit with
    :func:`repro.core.diffusion.diffuse_reference`.
    """
    grid = fields.grid
    if grid.nz < 3:
        raise ConfigurationError(
            f"shift-buffer diffusion needs nz >= 3, got {grid.nz}"
        )
    if not nu >= 0.0:
        raise ConfigurationError(f"viscosity must be >= 0, got {nu}")

    out = SourceSet.zeros(grid)
    nx_buf, ny_buf = grid.nx + 2, grid.ny + 2

    for name, target in (("u", out.su), ("v", out.sv), ("w", out.sw)):
        buffer = GeneralShiftBuffer(
            nx_buf, ny_buf, grid.nz, radius=1,
            tracker=tracker if tracker is not None
            else MemoryPortTracker(enforce=False),
            name=f"diffusion.{name}",
        )
        block = getattr(fields, name)
        for window in buffer.feed_block(block):
            cx, cy, cz = window.center
            # Skip windows centred in the x/y halo rows.
            if not (1 <= cx <= grid.nx and 1 <= cy <= grid.ny):
                continue
            target[cx - 1, cy - 1, cz] = diffusion_from_window(
                window, grid, nu)
            if cz == 1:
                target[cx - 1, cy - 1, 0] = diffusion_boundary_from_window(
                    window, grid, nu, top=False)
            if cz == grid.nz - 2:
                target[cx - 1, cy - 1, grid.nz - 1] = \
                    diffusion_boundary_from_window(window, grid, nu,
                                                   top=True)
    return out
