"""Wires the Fig. 2 dataflow graph for one chunk pass of the kernel."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet
from repro.dataflow.graph import DataflowGraph
from repro.kernel.config import KernelConfig
from repro.kernel.stages import (
    AdvectStage,
    CellInput,
    ReadDataStage,
    ReplicateStage,
    ShiftBufferStage,
    WriteDataStage,
)
from repro.shiftbuffer.chunking import Chunk
from repro.shiftbuffer.ports import MemoryPortTracker

__all__ = ["build_advection_graph", "chunk_cell_stream"]


def chunk_cell_stream(fields: FieldSet, chunk: Chunk) -> Iterator[CellInput]:
    """Yield the chunk's cells in kernel streaming order (Z, then Y, then X).

    The streamed block spans the full (halo-extended) X axis and the
    chunk's read range in Y — what the *read data* stage fetches from
    external memory for this chunk.
    """
    u = fields.u[:, chunk.read_start:chunk.read_stop, :]
    v = fields.v[:, chunk.read_start:chunk.read_stop, :]
    w = fields.w[:, chunk.read_start:chunk.read_stop, :]
    nx, ny, nz = u.shape
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                yield CellInput(float(u[i, j, k]), float(v[i, j, k]),
                                float(w[i, j, k]))


def build_advection_graph(config: KernelConfig, fields: FieldSet,
                          chunk: Chunk, coeffs: AdvectionCoefficients,
                          out: SourceSet, *, read_ii: int = 1,
                          tracker: MemoryPortTracker | None = None,
                          x_offset: int = 0, name_prefix: str = "",
                          read_stage_cls: type[ReadDataStage] | None = None,
                          ) -> DataflowGraph:
    """Build the dataflow graph of Fig. 2 for one chunk.

    Parameters
    ----------
    config:
        Kernel design parameters (latencies, FIFO depths, II).
    fields:
        Input wind fields (halo coordinates).
    chunk:
        The Y chunk to process.
    coeffs:
        Advection coefficients.
    out:
        Source set the write stage scatters results into (interior
        coordinates of the full grid).
    read_ii:
        Initiation interval of the read stage; >1 models a
        bandwidth-limited external memory.
    tracker:
        Optional port tracker shared with the caller for port-pressure
        assertions.
    x_offset:
        Global X offset of this (sub)grid's results — non-zero when the
        kernel is one instance of a multi-kernel decomposition.
    name_prefix:
        Prefix for stage names (multi-kernel co-simulation merges several
        kernels' stages into one graph and needs unique names).
    read_stage_cls:
        Alternative read-stage class (e.g. an arbitrated one modelling a
        shared external memory).
    """
    grid = config.grid
    nx_buf = grid.nx + 2  # full halo-extended X extent
    ny_buf = chunk.read_width
    nz = grid.nz

    graph = DataflowGraph(f"{name_prefix}advection[chunk={chunk.index}]")
    read_cls = read_stage_cls or ReadDataStage

    # The chunk's field blocks in streaming layout, shared by the read
    # stage (cells cut on demand) and the shift stage (batched feeds and
    # window reconstruction in fast-forward mode).
    blocks = tuple(
        np.ascontiguousarray(
            arr[:, chunk.read_start:chunk.read_stop, :], dtype=float)
        for arr in (fields.u, fields.v, fields.w)
    )

    read = graph.add(read_cls(
        f"{name_prefix}read_data", chunk_cell_stream(fields, chunk),
        block=blocks, ii=read_ii, latency=config.memory_latency,
    ))
    shift = graph.add(ShiftBufferStage(
        f"{name_prefix}shift_buffer", nx_buf, ny_buf, nz,
        ii=config.shift_buffer_ii,
        latency=2, partitioned=config.partitioned, tracker=tracker,
        backing=blocks,
    ))
    replicate = graph.add(ReplicateStage(f"{name_prefix}replicate"))
    advects = {
        field: graph.add(AdvectStage(
            f"{name_prefix}advect_{field}", field, coeffs, nz,
            latency=config.advect_latency,
        ))
        for field in ("u", "v", "w")
    }
    write = graph.add(WriteDataStage(
        f"{name_prefix}write_data", out.su, out.sv, out.sw,
        x_offset=x_offset, y_offset=chunk.write_start - 1,
        latency=config.memory_latency,
    ))

    depth = config.stream_depth
    graph.connect(read, "out", shift, "in", depth=depth)
    graph.connect(shift, "out", replicate, "in", depth=depth)
    for field in ("u", "v", "w"):
        graph.connect(replicate, field, advects[field], "in", depth=depth)
        graph.connect(advects[field], "out", write, f"s{field}", depth=depth)
    return graph
