"""HLS-style synthesis report for a kernel configuration.

Section III-C of the paper contrasts the insight the two tool chains
give: loop initiation intervals, scheduled latencies, resource tables,
and memory-dependency warnings.  :func:`synthesis_report` produces the
same kind of report from the models — including the two issues the paper
hit (URAM access latency forcing II=2; unpartitioned dimension-3 arrays
breaking the dual-port budget on Intel) — so a developer can sanity-check
a configuration before "building" it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.kernel.config import KernelConfig
from repro.kernel.cycle_model import KernelCycleModel
from repro.perf.theoretical import theoretical_gflops
from repro.shiftbuffer.chunking import MIN_EFFICIENT_CHUNK

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.device import FPGADevice

__all__ = ["SynthesisReport", "synthesis_report"]


@dataclass
class SynthesisReport:
    """A tool-style summary of one kernel design on one device."""

    device: str
    achieved_ii: int
    pipeline_depth: int
    kernels_fit: int
    clock_mhz: float
    theoretical_gflops: float
    buffer_bytes: int
    utilisation: dict[str, float]
    warnings: list[str] = field(default_factory=list)

    @property
    def timing_met(self) -> bool:
        """II = 1 with no blocking warnings."""
        return self.achieved_ii == 1

    def render(self) -> str:
        lines = [
            f"== synthesis report: {self.device} ==",
            f"  loop initiation interval (II) : {self.achieved_ii}",
            f"  pipeline depth                : {self.pipeline_depth} cycles",
            f"  kernel clock                  : {self.clock_mhz:.0f} MHz",
            f"  theoretical peak              : "
            f"{self.theoretical_gflops:.2f} GFLOPS",
            f"  shift-buffer footprint        : "
            f"{self.buffer_bytes / 1024:.1f} KiB on-chip",
            f"  replicas that fit             : {self.kernels_fit}",
            "  resource utilisation (one kernel):",
        ]
        for axis, fraction in sorted(self.utilisation.items()):
            lines.append(f"    {axis:<12} {100 * fraction:5.1f}%")
        if self.warnings:
            lines.append("  warnings:")
            for warning in self.warnings:
                lines.append(f"    ! {warning}")
        else:
            lines.append("  warnings: none")
        return "\n".join(lines)


def synthesis_report(config: KernelConfig,
                     device: "FPGADevice") -> SynthesisReport:
    """Analyse ``config`` as the vendor tooling would."""
    warnings: list[str] = []

    achieved_ii = config.shift_buffer_ii
    if not config.partitioned:
        # The §III-B Intel finding: the dimension-3 arrays must be split
        # or the dual-ported memory limits the II.  Five accesses per
        # cycle against two ports -> II 3.
        achieved_ii = max(achieved_ii, 3)
        warnings.append(
            "shift-buffer arrays are not partitioned: 5 accesses/cycle on "
            "a dual-ported memory limits II to 3 (split the dimension-3 "
            "arrays / apply array_partition)"
        )
    if config.shift_buffer_ii > 1:
        warnings.append(
            f"shift buffer declares II={config.shift_buffer_ii} (e.g. "
            f"URAM's 2-cycle access, section III-A): throughput divided "
            f"by {config.shift_buffer_ii}"
        )
    if config.chunk_width <= MIN_EFFICIENT_CHUNK:
        warnings.append(
            f"chunk width {config.chunk_width} <= {MIN_EFFICIENT_CHUNK}: "
            f"short external-memory bursts will degrade bandwidth "
            f"(section III)"
        )
    if config.stream_depth < 2:  # pragma: no cover - config already rejects
        warnings.append("stream depth < 2 cannot absorb column-top bursts")

    resources = device.kernel_resources(config)
    kernels_fit = device.max_kernels(config)
    if kernels_fit == 0:
        warnings.append("design does not fit the device at all")
    clock_mhz = device.clock.frequency_mhz(max(1, kernels_fit))
    model = KernelCycleModel(config)

    return SynthesisReport(
        device=device.name,
        achieved_ii=achieved_ii,
        pipeline_depth=model.pipeline_depth,
        kernels_fit=kernels_fit,
        clock_mhz=clock_mhz,
        theoretical_gflops=theoretical_gflops(
            clock_mhz, column_height=config.grid.nz) / achieved_ii,
        buffer_bytes=config.buffer_bytes,
        utilisation=resources.utilisation(device.capacity),
        warnings=warnings,
    )
