"""Functional (non-cycle-accurate) execution of the chunked kernel.

Two modes, both producing exactly the reference result:

* :func:`execute_chunked` — per chunk, runs the vectorised reference on the
  chunk's read slab and scatters its interior back.  Fast; this is what the
  host :class:`~repro.runtime.session.AdvectionSession` executes "on the
  device" and what the chunking correctness tests compare against the
  unchunked reference.
* :func:`execute_shiftbuffer` — per chunk, streams every cell through the
  three real :class:`~repro.shiftbuffer.buffer3d.ShiftBuffer3D` instances
  and evaluates the window arithmetic of :mod:`repro.kernel.compute`.
  Slow but full fidelity: this path exercises the exact data structures of
  Fig. 3 without the cycle engine's overhead and must agree bit-for-bit
  with the reference.
"""

from __future__ import annotations

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet
from repro.core.reference import advect_reference
from repro.kernel.compute import advect_cell_windows
from repro.kernel.config import KernelConfig
from repro.shiftbuffer.buffer3d import ShiftBuffer3D
from repro.shiftbuffer.ports import MemoryPortTracker

__all__ = ["execute_chunked", "execute_shiftbuffer"]


def execute_chunked(config: KernelConfig, fields: FieldSet,
                    coeffs: AdvectionCoefficients | None = None) -> SourceSet:
    """Run the kernel chunk by chunk with vectorised per-chunk compute."""
    grid = config.grid
    if coeffs is None:
        coeffs = AdvectionCoefficients.uniform(grid)
    out = SourceSet.zeros(grid)
    for chunk in config.chunk_plan().chunks:
        sub_grid = grid.with_size(ny=chunk.write_width)
        # The chunk's read slab is already a valid halo-extended array for
        # the sub-grid: full X halo, one Y halo cell each side.
        sub_fields = FieldSet(
            sub_grid,
            fields.u[:, chunk.read_start:chunk.read_stop, :],
            fields.v[:, chunk.read_start:chunk.read_stop, :],
            fields.w[:, chunk.read_start:chunk.read_stop, :],
        )
        sub_out = advect_reference(sub_fields, _sub_coeffs(coeffs))
        y0 = chunk.write_start - 1  # halo -> interior coordinate
        out.su[:, y0:y0 + chunk.write_width, :] = sub_out.su
        out.sv[:, y0:y0 + chunk.write_width, :] = sub_out.sv
        out.sw[:, y0:y0 + chunk.write_width, :] = sub_out.sw
    return out


def _sub_coeffs(coeffs: AdvectionCoefficients) -> AdvectionCoefficients:
    """Coefficients are Y-independent; chunks reuse them unchanged."""
    return coeffs


def execute_shiftbuffer(config: KernelConfig, fields: FieldSet,
                        coeffs: AdvectionCoefficients | None = None, *,
                        tracker: MemoryPortTracker | None = None) -> SourceSet:
    """Run the kernel through the real shift-buffer data structures.

    Every chunk's read slab is streamed value-by-value through three
    :class:`ShiftBuffer3D` instances; emitted windows are evaluated with the
    window arithmetic.  A shared ``tracker`` records the port pressure of
    the whole pass.
    """
    grid = config.grid
    if coeffs is None:
        coeffs = AdvectionCoefficients.uniform(grid)
    out = SourceSet.zeros(grid)
    nx_buf = grid.nx + 2
    nz = grid.nz

    for chunk in config.chunk_plan().chunks:
        ny_buf = chunk.read_width
        buffers = {
            name: ShiftBuffer3D(
                nx_buf, ny_buf, nz, partitioned=config.partitioned,
                tracker=tracker if tracker is not None
                else MemoryPortTracker(enforce=False),
                name=f"chunk{chunk.index}.{name}",
            )
            for name in ("u", "v", "w")
        }
        blocks = {
            name: getattr(fields, name)[:, chunk.read_start:chunk.read_stop, :]
            for name in ("u", "v", "w")
        }
        y_offset = chunk.write_start - 1
        flat = {name: block.reshape(-1) for name, block in blocks.items()}
        for idx in range(nx_buf * ny_buf * nz):
            wins_u = buffers["u"].feed(float(flat["u"][idx]))
            wins_v = buffers["v"].feed(float(flat["v"][idx]))
            wins_w = buffers["w"].feed(float(flat["w"][idx]))
            for wu, wv, ww in zip(wins_u, wins_v, wins_w):
                cx, cy, cz = wu.center
                su, sv, sw = advect_cell_windows(wu, wv, ww, coeffs, cz, nz)
                out.su[cx - 1, cy - 1 + y_offset, cz] = su
                out.sv[cx - 1, cy - 1 + y_offset, cz] = sv
                out.sw[cx - 1, cy - 1 + y_offset, cz] = sw
    return out
