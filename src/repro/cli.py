"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments [ids...]``
    Regenerate the paper's tables and figures (default: all).
``run --device u280 --cells 16M [--no-overlap] [--memory ddr]``
    One end-to-end run on a device model, with a Gantt timeline.
``validate [--nx 6 --ny 9 --nz 5]``
    Cross-check every kernel execution path against the reference.
``simulate [--nx 32 --ny 32 --nz 32] [--mode fast] [--kernels N]``
    Cycle-accurate simulation of one kernel invocation; ``--mode fast``
    fast-forwards steady-state phases (identical cycle counts and data).
    ``--scenario NAME`` runs a registered workload-suite scenario
    (diffusion, buoyancy, grid/boundary/batch variants of advection)
    instead, with a bitwise reference check and the scenario's derived
    ops-per-cycle roofline.
``scenarios [names...] [--conformance] [--check-cli] [--json]``
    The workload suite: list the scenario registry, run the cross-mode
    conformance harness (forced-scalar vs batched vs fast vs NumPy
    reference, plus an injected-fault leg, lint and static-analysis
    coverage, per scenario), and verify every kernel reachable from the
    CLI is registered (non-zero exit on any failure).
``devices``
    Print the device catalog with kernel fits and clocks.
``lint [specs...] [--device u280] [--kernels 6] [--json]``
    Synthesis-time static diagnostics over dataflow graphs, kernel
    configurations, and device budgets (non-zero exit on errors).
``analyze [specs...] [--tokens N] [--json] [--check] [--fix-depths P]``
    Static dataflow verification without running the engine: proves
    deadlock-freedom, minimal stall-free FIFO depths, start cycles,
    prime latency and the steady-state period; ``--check`` replays the
    proof against the exact engine, ``--fix-depths`` writes a patched
    spec with minimal safe depths (non-zero exit on proved collapse).
``chaos [--seeds 4] [--families fifo-corrupt,rank-drop] [--json]``
    Seeded fault-injection sweep asserting the resilience invariant:
    every run completes bit-identical to the fault-free golden output or
    raises a typed error within its watchdog budget (non-zero exit on
    any violation).
``trace --out trace.json [--nx 64 ...] [--device u280]``
    Cycle-accurate run under the observability tracer, merged with the
    device's command-queue schedule into one Chrome/Perfetto JSON:
    engine-stage spans, shift-buffer prime/steady phases, kernel chunk
    spans and host transfer/compute events, all in one file.
``metrics [--nx 64 ...] [--json]``
    Metric-registry dump of one cycle-accurate run plus the
    achieved-vs-theoretical ops-per-cycle roofline report (the paper's
    62.875 figure at the default column height).
``tune --device u280 [--strategy anneal] [--budget N] [--json]``
    Design-space exploration over chunk width, kernel replicas, FIFO
    depth, precision, memory space and host schedule; prints the best
    deployment and the (GFLOPS, utilisation, watts) Pareto front, with
    optional simulation-backed refinement of the top candidates.
    ``--backend versal_aie`` explores the AI-engine array axes instead
    (tile columns x engines x vector lanes x buffering) and adds the
    cross-architecture front spanning U280 / Stratix 10 / Versal /
    CPU / GPU.  ``simulate``, ``lint``, ``analyze`` and ``scenarios``
    accept the same ``--backend`` flag (see docs/backends.md).
``serve [--fleet 2xu280+1xstratix10] [--jobs 24] [--rate 300] [--chaos]``
    Advection-as-a-service fleet scheduler under a seeded Poisson load:
    admission-priced jobs, exact->fast degradation, per-device circuit
    breakers, and device-loss resharding with bit-identical results;
    ``--chaos`` injects device/transfer faults, ``--trace`` writes the
    per-lane Perfetto timeline (non-zero exit if a chaos leg breaks the
    bit-identity-or-typed-error invariant).
"""

from __future__ import annotations

import argparse
import sys

from repro import constants
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Accelerating advection for "
                    "atmospheric modelling on Xilinx and Intel FPGAs' "
                    "(CLUSTER 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments",
                           help="regenerate paper tables/figures")
    p_exp.add_argument("ids", nargs="*",
                       help="experiment ids (default: all)")

    p_run = sub.add_parser("run", help="simulate one end-to-end run")
    p_run.add_argument("--device", default="u280",
                       help="u280 | stratix10 | cpu | v100")
    p_run.add_argument("--cells", default="16M",
                       help="problem size label "
                            f"({', '.join(constants.PAPER_GRID_LABELS)})")
    p_run.add_argument("--memory", default=None,
                       help="force a memory space (hbm2 | ddr)")
    p_run.add_argument("--no-overlap", action="store_true",
                       help="use the sequential (Fig. 5) schedule")
    p_run.add_argument("--kernels", type=int, default=None,
                       help="kernel replicas (default: as many as fit)")
    p_run.add_argument("--trace", default=None, metavar="PATH",
                       help="write a chrome://tracing JSON of the schedule")

    p_val = sub.add_parser("validate",
                           help="cross-check all kernel paths vs reference")
    p_val.add_argument("--nx", type=int, default=6)
    p_val.add_argument("--ny", type=int, default=9)
    p_val.add_argument("--nz", type=int, default=5)
    p_val.add_argument("--seed", type=int, default=0)

    p_sim = sub.add_parser("simulate",
                           help="cycle-accurate kernel simulation")
    p_sim.add_argument("--scenario", default=None, metavar="NAME",
                       help="run a registered workload-suite scenario "
                            "(see 'repro scenarios'); grid defaults to "
                            "the scenario's grid family")
    p_sim.add_argument("--backend", default=None, metavar="ID",
                       help="target a registered hardware backend; "
                            "non-default backends print the analytic "
                            "invocation summary and the roofline "
                            "cross-check instead of a cycle-accurate run")
    p_sim.add_argument("--nx", type=int, default=None)
    p_sim.add_argument("--ny", type=int, default=None)
    p_sim.add_argument("--nz", type=int, default=None)
    p_sim.add_argument("--chunk-width", type=int, default=None)
    p_sim.add_argument("--read-ii", type=int, default=1,
                       help="read-stage initiation interval")
    p_sim.add_argument("--mode", choices=("exact", "fast"), default="exact",
                       help="'fast' fast-forwards steady-state phases "
                            "(same results, far less wall time)")
    p_sim.add_argument("--no-batched", action="store_true",
                       help="disable batched exact execution (escape "
                            "hatch: force the pure per-cycle loop)")
    p_sim.add_argument("--kernels", type=int, default=None,
                       help="co-simulate N kernels sharing one memory")
    p_sim.add_argument("--memory-rate", type=float, default=None,
                       help="shared-memory cell reads per cycle "
                            "(multi-kernel only)")
    p_sim.add_argument("--seed", type=int, default=0)

    sub.add_parser("devices", help="print the device catalog")

    p_scen = sub.add_parser(
        "scenarios",
        help="workload suite: registry listing, cross-mode conformance, "
             "CLI kernel coverage",
    )
    p_scen.add_argument("names", nargs="*", metavar="NAME",
                        help="scenario subset (default: the whole "
                             "registry)")
    p_scen.add_argument("--conformance", action="store_true",
                        help="run the cross-mode conformance harness "
                             "(scalar/batched/fast/reference + fault "
                             "leg + lint + static analysis)")
    p_scen.add_argument("--check-cli", action="store_true",
                        help="fail if any kernel reachable from the CLI "
                             "has no registered scenario")
    p_scen.add_argument("--backend", default=None, metavar="ID",
                        help="price every listed scenario on a registered "
                             "hardware backend (adds a backend_pricing "
                             "section; non-zero exit if any scenario has "
                             "no feasible deployment)")
    p_scen.add_argument("--seed", type=int, default=0)
    p_scen.add_argument("--json", action="store_true",
                        help="emit the listing (and any results) as "
                             "JSON")

    p_score = sub.add_parser("scorecard",
                             help="overall paper-reproduction scorecard")
    p_score.add_argument("--json", default=None, metavar="PATH",
                         help="also write the full summary JSON")
    p_score.add_argument("--tolerance", type=float, default=15.0,
                         help="quantitative tolerance in percent")

    p_report = sub.add_parser("report",
                              help="regenerate the markdown "
                                   "reproduction report")
    p_report.add_argument("path", nargs="?", default=None,
                          help="output file (default: stdout)")

    p_lint = sub.add_parser(
        "lint",
        help="static diagnostics over graphs, configs and device budgets",
    )
    p_lint.add_argument("specs", nargs="*", metavar="SPEC",
                        help="JSON design specs (see docs/linting.md); "
                             "default: lint the kernel built from the flags")
    p_lint.add_argument("--scenario", default=None, metavar="NAME",
                        help="lint a registered workload-suite scenario's "
                             "dataflow graph instead")
    p_lint.add_argument("--backend", default=None, metavar="ID",
                        help="lint through a registered hardware backend "
                             "(fpga_shiftbuffer | versal_aie); the "
                             "default path is the fpga_shiftbuffer family")
    p_lint.add_argument("--device", default=None,
                        help="target device (u280 | stratix10 | vc1902; "
                             "default: the backend's default device)")
    p_lint.add_argument("--cells", default="16M",
                        help="problem size label "
                             f"({', '.join(constants.PAPER_GRID_LABELS)})")
    p_lint.add_argument("--nx", type=int, default=None)
    p_lint.add_argument("--ny", type=int, default=None)
    p_lint.add_argument("--nz", type=int, default=None)
    p_lint.add_argument("--chunk-width", type=int, default=None)
    p_lint.add_argument("--kernels", type=int, default=None,
                        help="kernel replicas to budget-check")
    p_lint.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes/prefixes/families "
                             "to run (e.g. DF,RS201)")
    p_lint.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes/prefixes/families "
                             "to skip")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    p_lint.add_argument("--strict", action="store_true",
                        help="non-zero exit on warnings too")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")

    p_ana = sub.add_parser(
        "analyze",
        help="static dataflow verification: deadlock proofs, minimal "
             "FIFO depths, cycle/period bounds",
    )
    p_ana.add_argument("specs", nargs="*", metavar="SPEC",
                       help="JSON design specs (see docs/static-analysis.md)"
                            "; default: analyze the kernel graph built "
                            "from the flags")
    p_ana.add_argument("--scenario", default=None, metavar="NAME",
                       help="analyze a registered workload-suite "
                            "scenario's dataflow graph instead")
    p_ana.add_argument("--backend", default=None, metavar="ID",
                       help="analyze a hardware backend's lowered graph "
                            "(fpga_shiftbuffer | versal_aie)")
    p_ana.add_argument("--cells", default="16M",
                       help="problem size label "
                            f"({', '.join(constants.PAPER_GRID_LABELS)})")
    p_ana.add_argument("--nx", type=int, default=None)
    p_ana.add_argument("--ny", type=int, default=None)
    p_ana.add_argument("--nz", type=int, default=None)
    p_ana.add_argument("--chunk-width", type=int, default=None)
    p_ana.add_argument("--read-ii", type=int, default=1,
                       help="read-stage initiation interval")
    p_ana.add_argument("--tokens", type=int, default=None,
                       help="tokens to push through the abstract machine "
                            "(default: enough to reach steady state)")
    p_ana.add_argument("--check", action="store_true",
                       help="cross-check every proved total against the "
                            "exact DataflowEngine on the token twin")
    p_ana.add_argument("--fix-depths", default=None, metavar="PATH",
                       help="write a patched copy of the (single) spec "
                            "with minimal safe FIFO depths")
    p_ana.add_argument("--json", action="store_true",
                       help="emit the reports as JSON")
    p_ana.add_argument("--strict", action="store_true",
                       help="non-zero exit on transient stalls too, not "
                            "just proved collapse/deadlock")

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection sweep over the resilient runtime",
    )
    p_chaos.add_argument("--seeds", type=int, default=4,
                         help="seeds per scenario family (default 4)")
    p_chaos.add_argument("--seed-base", type=int, default=0,
                         help="first seed of the sweep (CI shards "
                              "disjoint bases; default 0)")
    p_chaos.add_argument("--families", default=None, metavar="NAMES",
                         help="comma-separated family subset "
                              "(default: all families)")
    p_chaos.add_argument("--nx", type=int, default=6)
    p_chaos.add_argument("--ny", type=int, default=9)
    p_chaos.add_argument("--nz", type=int, default=5)
    p_chaos.add_argument("--json", action="store_true",
                         help="emit the report as JSON")
    p_chaos.add_argument("--smoke", action="store_true",
                         help="quick sweep: 2 seeds over the smoke "
                              "family subset")

    p_trace = sub.add_parser(
        "trace",
        help="emit one Chrome/Perfetto JSON of engine spans + schedule",
    )
    p_trace.add_argument("--out", default="trace.json", metavar="PATH",
                         help="output JSON path (default trace.json)")
    p_trace.add_argument("--nx", type=int, default=64)
    p_trace.add_argument("--ny", type=int, default=64)
    p_trace.add_argument("--nz", type=int, default=64)
    p_trace.add_argument("--chunk-width", type=int, default=None)
    p_trace.add_argument("--mode", choices=("exact", "fast"),
                         default="fast",
                         help="engine mode (fast keeps 64^3 tractable; "
                              "identical spans modulo fast-forward marks)")
    p_trace.add_argument("--device", default="u280",
                         help="device whose schedule and clock to trace "
                              "(u280 | stratix10)")
    p_trace.add_argument("--no-overlap", action="store_true",
                         help="trace the sequential (Fig. 5) schedule")
    p_trace.add_argument("--seed", type=int, default=0)

    p_metrics = sub.add_parser(
        "metrics",
        help="metric-registry dump + ops-per-cycle roofline report",
    )
    p_metrics.add_argument("--nx", type=int, default=64)
    p_metrics.add_argument("--ny", type=int, default=64)
    p_metrics.add_argument("--nz", type=int, default=64)
    p_metrics.add_argument("--chunk-width", type=int, default=None)
    p_metrics.add_argument("--mode", choices=("exact", "fast"),
                          default="fast")
    p_metrics.add_argument("--clock-mhz", type=float, default=None,
                           help="also report achieved GFLOPS at this "
                                "kernel clock")
    p_metrics.add_argument("--seed", type=int, default=0)
    p_metrics.add_argument("--json", action="store_true",
                           help="emit the registry snapshot and roofline "
                                "report as JSON")

    p_tune = sub.add_parser(
        "tune",
        help="design-space exploration over deployment parameters",
    )
    p_tune.add_argument("--backend", default=None, metavar="ID",
                        help="hardware backend (fpga_shiftbuffer | "
                             "versal_aie; default fpga_shiftbuffer)")
    p_tune.add_argument("--device", default=None,
                        help="target device (u280 | stratix10 | vc1902; "
                             "default: the backend's default device)")
    p_tune.add_argument("--scenario", default=None, metavar="NAME",
                        help="tune for a registered workload-suite "
                             "scenario: its default grid and its "
                             "operation-intensity scale")
    p_tune.add_argument("--strategy", default="greedy",
                        choices=("grid", "greedy", "anneal"),
                        help="search strategy (default greedy)")
    p_tune.add_argument("--objective", default="kernel",
                        choices=("kernel", "end_to_end", "efficiency"),
                        help="scalar the search maximises")
    p_tune.add_argument("--budget", type=int, default=None,
                        help="max distinct evaluations "
                             "(default: the full space)")
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument("--cells", default=None,
                        help="problem size label "
                             f"({', '.join(constants.PAPER_GRID_LABELS)})")
    p_tune.add_argument("--nx", type=int, default=64)
    p_tune.add_argument("--ny", type=int, default=64)
    p_tune.add_argument("--nz", type=int, default=64)
    p_tune.add_argument("--wide-precision", action="store_true",
                        help="open the float32/bfloat16 axis")
    p_tune.add_argument("--measure", type=int, default=0, metavar="K",
                        help="re-score the top K candidates with the "
                             "fast-forward simulator")
    p_tune.add_argument("--cache", default=None, metavar="PATH",
                        help="persistent JSON evaluation cache")
    p_tune.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Perfetto JSON of the search")
    p_tune.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")
    p_tune.add_argument("--pareto", default=None, metavar="PATH",
                        help="also write the Pareto front as JSON")
    p_tune.add_argument("--expect-kernels", type=int, default=None,
                        help="non-zero exit unless the best point uses "
                             "exactly this many replicas (CI anchor)")

    p_serve = sub.add_parser(
        "serve",
        help="fault-tolerant fleet scheduler under a seeded Poisson load",
    )
    p_serve.add_argument("--fleet", default=None, metavar="SPEC",
                         help="fleet spec like 2xu280+1xstratix10+cpu "
                              "(default 2xu280+1xstratix10)")
    p_serve.add_argument("--jobs", type=int, default=24,
                         help="jobs in the offered load (default 24)")
    p_serve.add_argument("--rate", type=float, default=300.0,
                         help="mean arrivals per modelled second")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="load seed (arrivals, tenants, tier mix)")
    p_serve.add_argument("--scenario", default=None, metavar="NAME",
                         help="serve a registered workload-suite scenario "
                              "instead of plain advection (admission "
                              "quotes scale by the scenario's operation "
                              "intensity)")
    p_serve.add_argument("--nx", type=int, default=8)
    p_serve.add_argument("--ny", type=int, default=9)
    p_serve.add_argument("--nz", type=int, default=8)
    p_serve.add_argument("--exact-fraction", type=float, default=0.25,
                         help="fraction of jobs requesting the exact tier")
    p_serve.add_argument("--deadline-ms", type=float, default=None,
                         help="per-job deadline in modelled milliseconds")
    p_serve.add_argument("--chaos", action="store_true",
                         help="inject device-loss/blip and transfer faults")
    p_serve.add_argument("--chaos-seed", type=int, default=0,
                         help="fault-plan seed for --chaos")
    p_serve.add_argument("--json", action="store_true",
                         help="emit the full serve report as JSON")
    p_serve.add_argument("--trace", default=None, metavar="PATH",
                         help="write the per-lane fleet Perfetto JSON")
    p_serve.add_argument("--metrics", action="store_true",
                         help="also print the per-tenant metric registry")
    return parser


def _cmd_experiments(args) -> int:
    from repro.experiments.run_all import main as run_all_main

    return run_all_main(args.ids)


def _cmd_run(args) -> int:
    from repro.core.grid import Grid
    from repro.hardware import device_by_name
    from repro.kernel.config import KernelConfig
    from repro.runtime.gantt import render_gantt
    from repro.runtime.session import AdvectionSession

    try:
        cells = constants.PAPER_GRID_LABELS[args.cells]
    except KeyError:
        print(f"unknown size {args.cells!r}; known: "
              f"{', '.join(constants.PAPER_GRID_LABELS)}", file=sys.stderr)
        return 2
    grid = Grid.from_cells(cells)
    device = device_by_name(args.device)
    session = AdvectionSession(device, KernelConfig(grid=grid),
                               num_kernels=args.kernels, memory=args.memory)
    result = session.run(grid, overlapped=not args.no_overlap)

    print(f"device:   {result.device}")
    print(f"problem:  {result.grid_cells / 1e6:.1f}M cells "
          f"({grid.interior_shape})")
    print(f"schedule: {'overlapped' if result.overlapped else 'sequential'}"
          f", memory={result.memory}, kernels={result.num_kernels}")
    print(f"runtime:  {result.runtime_seconds * 1e3:.2f} ms")
    print(f"perf:     {result.gflops:.2f} GFLOPS overall")
    print(f"power:    {result.average_watts:.1f} W "
          f"({result.gflops_per_watt:.3f} GFLOPS/W)")
    if result.schedule is not None:
        print()
        print(render_gantt(result.schedule, title="engine timeline"))
        if args.trace:
            from repro.runtime.trace_export import write_chrome_trace

            path = write_chrome_trace(
                result.schedule, args.trace,
                process_name=f"{args.device}-{args.cells}")
            print(f"\nwrote chrome://tracing file: {path}")
    return 0


def _cmd_validate(args) -> int:
    from repro.core.coefficients import AdvectionCoefficients
    from repro.core.grid import Grid
    from repro.core.reference import advect_reference
    from repro.core.golden import advect_golden
    from repro.core.wind import random_wind
    from repro.kernel.config import KernelConfig
    from repro.kernel.functional import execute_chunked, execute_shiftbuffer
    from repro.kernel.simulate import simulate_kernel

    grid = Grid(nx=args.nx, ny=args.ny, nz=args.nz)
    fields = random_wind(grid, seed=args.seed, magnitude=2.0)
    coeffs = AdvectionCoefficients.isothermal(grid)
    config = KernelConfig(grid=grid, chunk_width=max(2, grid.ny // 3))
    reference = advect_reference(fields, coeffs)

    checks = {
        "scalar golden": advect_golden(fields, coeffs),
        "chunked functional": execute_chunked(config, fields, coeffs),
        "shift-buffer functional": execute_shiftbuffer(config, fields,
                                                       coeffs),
        "cycle-accurate simulation": simulate_kernel(config, fields,
                                                     coeffs).sources,
    }
    failed = 0
    for name, sources in checks.items():
        diff = sources.max_abs_difference(reference)
        status = "OK (bitwise)" if diff == 0.0 else f"FAIL (max diff {diff:g})"
        print(f"{name:>28}: {status}")
        failed += diff != 0.0
    return 1 if failed else 0


def _cmd_simulate_scenario(args) -> int:
    from repro.core.grid import Grid
    from repro.observe import ops_per_cycle_report
    from repro.scenarios import get

    scenario = get(args.scenario)
    if any(dim is not None for dim in (args.nx, args.ny, args.nz)):
        if None in (args.nx, args.ny, args.nz):
            print("error: --nx/--ny/--nz must be given together",
                  file=sys.stderr)
            return 2
        grid = Grid(nx=args.nx, ny=args.ny, nz=args.nz)
    else:
        grid = scenario.default_grid()

    batched = not args.no_batched
    result = scenario.run(grid, seed=args.seed, mode=args.mode,
                          batched=batched)
    references = scenario.reference(grid, seed=args.seed)
    diff = max(out.max_abs_difference(ref)
               for out, ref in zip(result.batches, references))

    model = scenario.kernel.op_model
    report = ops_per_cycle_report(
        result.stats, nz=grid.nz, cycles=result.total_cycles,
        flops=scenario.batch * scenario.grid_flops(grid),
        ops_per_cell=model.ops_per_cell,
        ops_per_top_cell=model.ops_per_top_cell)

    print(f"scenario: {scenario.name} — {scenario.title}")
    print(f"grid:     {grid.interior_shape} "
          f"[{scenario.grids.name}], boundary={scenario.boundary}, "
          f"wind={scenario.wind}, batch={scenario.batch}, "
          f"mode={args.mode}")
    print(f"cycles:   {result.total_cycles} "
          f"({result.cells_per_cycle:.3f} cells/cycle)")
    stats = result.stats
    if stats.ff_veto_reason:
        print(f"demoted:  {stats.ff_veto_reason}")
    if stats.batch_fallback_reason:
        print(f"fallback: {stats.batch_fallback_reason}")
    print(report.summary())
    status = "OK (bitwise)" if diff == 0.0 else f"FAIL (max diff {diff:g})"
    print(f"reference: {status}")
    return 0 if diff == 0.0 else 1


def _cmd_simulate_backend(args, backend) -> int:
    """Analytic invocation summary for a backend with no cycle engine."""
    from repro.core.grid import Grid

    grid = Grid(nx=args.nx or 64, ny=args.ny or 64, nz=args.nz or 64)
    device = backend.resolve_device()
    model = backend.cost_model(device, grid)
    if hasattr(backend, "canonical_point"):
        point = backend.canonical_point(device, tile_columns=args.kernels)
    else:  # pragma: no cover - no such backend registered today
        point = next(iter(backend.scenario_candidates(device, grid)))
    evaluation = model.evaluate(point)
    roofline = backend.roofline(grid.nz)

    print(f"backend:  {backend.id} ({backend.title})")
    print(f"device:   {device.name}")
    print(f"grid:     {grid.interior_shape}, point {point.key()}")
    if not evaluation.feasible:
        print(f"rejected: {evaluation.reject_reason}")
        return 1
    bound = "feed-bound" if evaluation.memory_bound else "compute-bound"
    print(f"kernel:   {evaluation.kernel_gflops:.2f} GFLOPS analytic "
          f"({evaluation.kernel_seconds * 1e3:.3f} ms, {bound})")
    print(f"host:     {evaluation.runtime_seconds * 1e3:.3f} ms "
          f"end-to-end ({evaluation.end_to_end_gflops:.2f} GFLOPS "
          f"incl. transfers)")
    print(f"power:    {evaluation.watts:.1f} W "
          f"({evaluation.gflops_per_watt:.3f} GFLOPS/W)")
    line = f"roofline: {roofline['attainable_gflops']:.2f} GFLOPS attainable"
    if "projection_attainable_gflops" in roofline:
        verdict = ("consistent" if roofline["projection_consistent"]
                   else "INCONSISTENT")
        line += (f"; projection "
                 f"{roofline['projection_attainable_gflops']:.2f} "
                 f"[{verdict}]")
    print(line)
    return 0


def _cmd_simulate(args) -> int:
    import time

    from repro.core.grid import Grid
    from repro.core.wind import random_wind
    from repro.kernel.config import KernelConfig
    from repro.kernel.multi_simulate import simulate_multi_kernel
    from repro.kernel.simulate import simulate_kernel

    if args.backend:
        from repro.backend import DEFAULT_BACKEND, get_backend

        backend = get_backend(args.backend)
        if backend.id != DEFAULT_BACKEND:
            if args.scenario:
                print("error: --backend and --scenario are mutually "
                      "exclusive on simulate", file=sys.stderr)
                return 2
            return _cmd_simulate_backend(args, backend)
        # The default backend *is* the cycle-accurate shift-buffer
        # path below; naming it explicitly changes nothing.
    if args.scenario:
        return _cmd_simulate_scenario(args)
    grid = Grid(nx=args.nx or 32, ny=args.ny or 32, nz=args.nz or 32)
    fields = random_wind(grid, seed=args.seed, magnitude=2.0)
    config = (KernelConfig(grid=grid, chunk_width=args.chunk_width)
              if args.chunk_width else KernelConfig(grid=grid))

    start = time.perf_counter()
    batched = not args.no_batched
    if args.kernels:
        multi = simulate_multi_kernel(
            config, fields, num_kernels=args.kernels,
            memory_cells_per_cycle=args.memory_rate, mode=args.mode,
            batched=batched)
        elapsed = time.perf_counter() - start
        print(f"grid:     {grid.interior_shape}, "
              f"{args.kernels} kernels, mode={args.mode}")
        print(f"cycles:   {multi.total_cycles} "
              f"(chunks: {multi.chunk_cycles})")
        print(f"memory:   {multi.arbiter.grants} grants, "
              f"{multi.arbiter.denials} denials "
              f"({multi.read_starvation_fraction:.1%} starved)")
        if multi.ff_veto_reason:
            print(f"demoted:  {multi.ff_veto_reason}")
    else:
        result = simulate_kernel(config, fields, read_ii=args.read_ii,
                                 mode=args.mode, batched=batched)
        elapsed = time.perf_counter() - start
        stats = result.aggregate_stats()
        print(f"grid:     {grid.interior_shape}, mode={args.mode}")
        print(f"cycles:   {result.total_cycles} "
              f"({result.cells_per_cycle:.3f} cells/cycle)")
        if stats.ff_advances:
            print(f"forward:  {stats.ff_cycles} cycles skipped in "
                  f"{stats.ff_advances} analytic advances "
                  f"({stats.ff_cycles / result.total_cycles:.1%} of the run)")
        if stats.ff_veto_reason:
            print(f"demoted:  {stats.ff_veto_reason}")
        if stats.batched_windows:
            scalar = result.total_cycles - stats.batched_cycles
            print(f"batched:  {stats.batched_cycles} cycles in "
                  f"{stats.batched_windows} windows "
                  f"({stats.batched_cycles / result.total_cycles:.1%} of "
                  f"the run), {scalar} scalar")
        if stats.batch_fallback_reason:
            print(f"fallback: {stats.batch_fallback_reason}")
    print(f"wall:     {elapsed:.2f} s")
    return 0


def _cmd_devices() -> int:
    from repro.core.grid import Grid
    from repro.hardware import (
        ALVEO_U280,
        STRATIX10_GX2800,
        TESLA_V100,
        XEON_8260M,
    )
    from repro.kernel.config import KernelConfig

    config = KernelConfig(grid=Grid.from_cells(16 * 1024 * 1024))
    for device in (ALVEO_U280, STRATIX10_GX2800):
        kernels = device.max_kernels(config)
        print(f"{device.name}: {kernels} kernels fit, "
              f"{device.clock.frequency_mhz(kernels):.0f} MHz at that "
              f"count, memories: "
              + ", ".join(f"{name} ({m.spec.capacity_bytes / 2**30:.0f} GiB)"
                          for name, m in device.memories.items()))
    print(f"{XEON_8260M.name}: {XEON_8260M.cores} cores, "
          f"{XEON_8260M.gflops():.1f} GFLOPS on this kernel")
    print(f"{TESLA_V100.name}: {TESLA_V100.kernel_gflops:.1f} GFLOPS "
          f"kernel-only, "
          f"{TESLA_V100.memory_capacity_bytes / 2**30:.0f} GiB HBM2")
    return 0


def _cmd_scenarios(args) -> int:
    import json as json_module

    from repro.scenarios import (
        get,
        names,
        run_suite,
        unregistered_cli_kernels,
    )

    selected = tuple(args.names) if args.names else names()
    listing = [get(name) for name in selected]  # validates names

    payload: dict = {
        "scenarios": [scenario.to_dict() for scenario in listing],
    }
    ok = True

    if args.check_cli:
        uncovered = unregistered_cli_kernels()
        payload["unregistered_cli_kernels"] = list(uncovered)
        if uncovered:
            ok = False

    pricing = None
    if args.backend:
        from repro.backend import get_backend
        from repro.errors import BackendError

        backend = get_backend(args.backend)
        pricing = []
        for scenario in listing:
            entry: dict = {"scenario": scenario.name,
                           "backend": backend.id,
                           "flops_scale": scenario.flops_scale}
            try:
                evaluation = backend.price_scenario(scenario)
            except BackendError as error:
                entry["feasible"] = False
                entry["error"] = str(error)
                ok = False
            else:
                entry["feasible"] = True
                entry["point"] = evaluation.point.key()
                entry["kernel_gflops"] = round(evaluation.kernel_gflops, 6)
                entry["watts"] = round(evaluation.watts, 6)
            pricing.append(entry)
        payload["backend_pricing"] = pricing

    report = None
    if args.conformance:
        report = run_suite(selected, seed=args.seed)
        payload["conformance"] = report.to_dict()
        if not report.ok:
            ok = False
    payload["ok"] = ok

    if args.json:
        print(json_module.dumps(payload, indent=2))
        return 0 if ok else 1

    header = (f"{'name':>20}  {'kind':<10} {'grid':<14} {'bc':<9} "
              f"{'batch':>5}  {'ops/cycle':>9}")
    print(header)
    print("-" * len(header))
    for scenario in listing:
        nx, ny, nz = scenario.grids.default
        print(f"{scenario.name:>20}  {scenario.kernel.kind:<10} "
              f"{f'{nx}x{ny}x{nz}':<14} {scenario.boundary:<9} "
              f"{scenario.batch:>5}  {scenario.ops_per_cycle:>9.3f}")
    if args.check_cli:
        uncovered = payload["unregistered_cli_kernels"]
        print()
        if uncovered:
            print("CLI kernels with no registered scenario: "
                  + ", ".join(uncovered))
        else:
            print("CLI kernel coverage: every reachable kernel is "
                  "registered")
    if pricing is not None:
        print()
        print(f"backend pricing ({args.backend}):")
        for entry in pricing:
            if entry["feasible"]:
                print(f"  {entry['scenario']:>20}  "
                      f"{entry['point']:<26} "
                      f"{entry['kernel_gflops']:9.2f} GFLOPS "
                      f"{entry['watts']:6.1f} W")
            else:
                print(f"  {entry['scenario']:>20}  INFEASIBLE "
                      f"({entry['error']})")
    if report is not None:
        print()
        print(report.render_text())
    return 0 if ok else 1


def _cmd_lint(args) -> int:
    import json as json_module

    from repro.core.grid import Grid
    from repro.errors import ConfigurationError, LintError
    from repro.hardware import device_by_name
    from repro.kernel.config import KernelConfig
    from repro.lint import load_builtin_rules
    from repro.lint.runner import lint_kernel, run_lint
    from repro.lint.spec import load_spec

    registry = load_builtin_rules()
    if args.list_rules:
        for rule in registry:
            print(f"{rule.code}  {rule.default_severity.value:<7}  "
                  f"[{rule.family}] {rule.name}: {rule.description}")
        return 0

    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None

    if args.backend and (args.scenario or args.specs):
        print("error: --backend lints the kernel built from the flags, "
              "not specs or scenarios", file=sys.stderr)
        return 2

    targets = []
    try:
        if args.scenario:
            import dataclasses

            from repro.scenarios import get as get_scenario

            scenario = get_scenario(args.scenario)
            targets = [dataclasses.replace(
                scenario.lint(), subject=f"scenario:{scenario.name}")]
        elif args.specs:
            targets = [load_spec(path) for path in args.specs]
        else:
            if any(dim is not None for dim in (args.nx, args.ny, args.nz)):
                if None in (args.nx, args.ny, args.nz):
                    print("error: --nx/--ny/--nz must be given together",
                          file=sys.stderr)
                    return 2
                grid = Grid(nx=args.nx, ny=args.ny, nz=args.nz)
            else:
                try:
                    grid = Grid.from_cells(
                        constants.PAPER_GRID_LABELS[args.cells])
                except KeyError:
                    print(f"unknown size {args.cells!r}; known: "
                          f"{', '.join(constants.PAPER_GRID_LABELS)}",
                          file=sys.stderr)
                    return 2
            if args.backend:
                from repro.backend import DEFAULT_BACKEND, get_backend

                backend = get_backend(args.backend)
            else:
                backend = None
            if backend is not None and backend.id != DEFAULT_BACKEND:
                # Non-default families lint their canonical deployment
                # (--kernels maps to the backend's replica axis, e.g.
                # Versal tile columns); --chunk-width has no analogue.
                report = backend.lint(
                    grid, device=args.device, num_kernels=args.kernels,
                    select=select, ignore=ignore)
                targets = [report]
            else:
                device_name = args.device or "u280"
                try:
                    device = device_by_name(device_name)
                except ConfigurationError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 2
                if not hasattr(device, "capacity"):
                    print(f"error: {device.name} is not an FPGA model; "
                          f"lint needs a fabric capacity", file=sys.stderr)
                    return 2
                config = (KernelConfig(grid=grid,
                                       chunk_width=args.chunk_width)
                          if args.chunk_width else KernelConfig(grid=grid))
                report = lint_kernel(config, device, args.kernels,
                                     select=select, ignore=ignore,
                                     subject=f"{device_name}:{args.cells}")
                targets = [report]
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    reports = []
    for target in targets:
        if hasattr(target, "context"):  # a loaded spec
            reports.append(run_lint(target.context, select=select,
                                    ignore=ignore, subject=target.name))
        else:  # already a report
            reports.append(target)

    if args.json:
        payload = {
            "ok": all(r.exit_code(strict=args.strict) == 0 for r in reports),
            "reports": [r.to_dict() for r in reports],
        }
        print(json_module.dumps(payload, indent=2))
    else:
        for i, report in enumerate(reports):
            if i:
                print()
            print(report.render_text())
    return max(r.exit_code(strict=args.strict) for r in reports)


def _cmd_analyze(args) -> int:
    import json as json_module
    import pathlib
    from typing import Any

    from repro.analyze import analyze_graph, build_token_twin, \
        patch_spec_depths
    from repro.core.grid import Grid
    from repro.dataflow.engine import DataflowEngine
    from repro.errors import LintError
    from repro.kernel.config import KernelConfig
    from repro.lint.builders import build_structural_graph
    from repro.lint.spec import load_spec

    if args.fix_depths and len(args.specs) != 1:
        print("error: --fix-depths needs exactly one spec", file=sys.stderr)
        return 2
    if args.backend and (args.scenario or args.specs):
        print("error: --backend analyzes the graph built from the flags, "
              "not specs or scenarios", file=sys.stderr)
        return 2

    targets: list[tuple[str, Any]] = []  # (name, graph)
    raw_spec: dict | None = None
    try:
        if args.scenario:
            from repro.scenarios import get as get_scenario

            scenario = get_scenario(args.scenario)
            targets.append((
                f"scenario:{scenario.name}",
                scenario.kernel.structural_graph(scenario.default_grid())))
        elif args.specs:
            for path in args.specs:
                target = load_spec(path)
                if target.context.graph is None:
                    print(f"error: {path} declares no dataflow graph",
                          file=sys.stderr)
                    return 2
                targets.append((target.name, target.context.graph))
            if args.fix_depths:
                raw_spec = json_module.loads(
                    pathlib.Path(args.specs[0]).read_text())
        else:
            if any(dim is not None for dim in (args.nx, args.ny, args.nz)):
                if None in (args.nx, args.ny, args.nz):
                    print("error: --nx/--ny/--nz must be given together",
                          file=sys.stderr)
                    return 2
                grid = Grid(nx=args.nx, ny=args.ny, nz=args.nz)
            else:
                try:
                    grid = Grid.from_cells(
                        constants.PAPER_GRID_LABELS[args.cells])
                except KeyError:
                    print(f"unknown size {args.cells!r}; known: "
                          f"{', '.join(constants.PAPER_GRID_LABELS)}",
                          file=sys.stderr)
                    return 2
            if args.backend:
                from repro.backend import get_backend

                backend = get_backend(args.backend)
                targets.append((
                    f"backend:{backend.id}",
                    backend.structural_graph(grid, read_ii=args.read_ii)))
            else:
                config = (KernelConfig(grid=grid,
                                       chunk_width=args.chunk_width)
                          if args.chunk_width else KernelConfig(grid=grid))
                targets.append((
                    "advection",
                    build_structural_graph(config, read_ii=args.read_ii)))
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    records = []
    failed = False
    for name, graph in targets:
        report = analyze_graph(graph, tokens=args.tokens)
        record: dict[str, Any] = report.to_dict()
        if args.check:
            twin = build_token_twin(graph, report.tokens)
            stats = DataflowEngine(twin).run()
            record["engine_cycles"] = stats.cycles
            record["check"] = stats.cycles == report.schedule.total_cycles
            if not record["check"]:
                failed = True
        if not report.ok:
            failed = True
        elif args.strict and not report.occupancy.stall_free:
            failed = True
        records.append((name, report, record))

    if args.fix_depths and raw_spec is not None:
        _, report, _ = records[0]
        patched = patch_spec_depths(
            raw_spec, report.occupancy.minimal_depths())
        pathlib.Path(args.fix_depths).write_text(
            json_module.dumps(patched, indent=2) + "\n")
        print(f"wrote patched spec with minimal safe depths: "
              f"{args.fix_depths}", file=sys.stderr)

    if args.json:
        payload = {
            "ok": not failed,
            "reports": [record for _, _, record in records],
        }
        print(json_module.dumps(payload, indent=2))
    else:
        for i, (name, report, record) in enumerate(records):
            if i:
                print()
            print(report.render_text())
            if args.check:
                verdict = "MATCH" if record["check"] else "MISMATCH"
                print(f"  engine cross-check: {record['engine_cycles']} "
                      f"cycle(s) [{verdict}]")
    return 1 if failed else 0


def _cmd_chaos(args) -> int:
    import json as json_module

    from repro.faults.chaos import SMOKE_FAMILIES, run_chaos

    families = None
    if args.families:
        families = tuple(name.strip() for name in args.families.split(",")
                         if name.strip())
    seeds = args.seeds
    if args.smoke:
        families = families or SMOKE_FAMILIES
        seeds = min(seeds, 2)
    report = run_chaos(families=families, seeds=seeds,
                       seed_base=args.seed_base,
                       nx=args.nx, ny=args.ny, nz=args.nz)
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_trace(args) -> int:
    from repro.core.grid import Grid
    from repro.core.wind import random_wind
    from repro.hardware import device_by_name
    from repro.kernel.config import KernelConfig
    from repro.kernel.simulate import simulate_kernel
    from repro.observe import Tracer, write_trace
    from repro.runtime.session import AdvectionSession

    grid = Grid(nx=args.nx, ny=args.ny, nz=args.nz)
    fields = random_wind(grid, seed=args.seed, magnitude=2.0)
    config = (KernelConfig(grid=grid, chunk_width=args.chunk_width)
              if args.chunk_width else KernelConfig(grid=grid))
    device = device_by_name(args.device)

    tracer = Tracer()
    result = simulate_kernel(config, fields, mode=args.mode, tracer=tracer)

    session = AdvectionSession(device, config)
    run = session.run(grid, overlapped=not args.no_overlap)
    clock_mhz = device.clock.frequency_mhz(run.num_kernels)

    path = write_trace(
        args.out, tracer, run.schedule,
        process_name=f"{args.device}-{grid.nx}x{grid.ny}x{grid.nz}",
        cycle_time_us=1.0 / clock_mhz)
    schedule_events = len(run.schedule.timeline) if run.schedule else 0
    print(f"grid:     {grid.interior_shape}, mode={args.mode}, "
          f"device={args.device}")
    print(f"engine:   {result.total_cycles} cycles, "
          f"{len(tracer.spans)} spans on {len(tracer.tracks())} tracks")
    print(f"schedule: {schedule_events} transfer/compute events "
          f"at {clock_mhz:.0f} MHz")
    print(f"wrote chrome://tracing / Perfetto file: {path}")
    return 0


def _cmd_metrics(args) -> int:
    import json as json_module

    from repro.core.grid import Grid
    from repro.core.wind import random_wind
    from repro.kernel.config import KernelConfig
    from repro.kernel.simulate import simulate_kernel
    from repro.observe import MetricRegistry, ops_per_cycle_report

    grid = Grid(nx=args.nx, ny=args.ny, nz=args.nz)
    fields = random_wind(grid, seed=args.seed, magnitude=2.0)
    config = (KernelConfig(grid=grid, chunk_width=args.chunk_width)
              if args.chunk_width else KernelConfig(grid=grid))

    registry = MetricRegistry()
    result = simulate_kernel(config, fields, mode=args.mode,
                             metrics=registry)
    report = ops_per_cycle_report(result.aggregate_stats(), nz=grid.nz,
                                  cycles=result.total_cycles)

    if args.json:
        payload = {
            "grid": list(grid.interior_shape),
            "mode": args.mode,
            "ops_per_cycle": report.to_dict(),
            "metrics": registry.snapshot(),
        }
        if args.clock_mhz:
            payload["achieved_gflops"] = round(
                report.achieved_gflops(args.clock_mhz), 3)
        print(json_module.dumps(payload, indent=2))
    else:
        print(f"grid:     {grid.interior_shape}, mode={args.mode}")
        print(report.summary())
        if args.clock_mhz:
            print(f"at {args.clock_mhz:.0f} MHz: "
                  f"{report.achieved_gflops(args.clock_mhz):.2f} GFLOPS")
        print()
        print(registry.render_text())
    return 0


def _cmd_tune(args) -> int:
    import json as json_module

    from repro.core.grid import Grid
    from repro.observe import MetricRegistry, Tracer, write_trace
    from repro.tune import render_text, tune

    flops_scale = 1.0
    if args.scenario:
        from repro.scenarios import get as get_scenario

        scenario = get_scenario(args.scenario)
        grid = scenario.default_grid()
        flops_scale = scenario.flops_scale
        print(f"scenario {scenario.name}: grid {grid.interior_shape}, "
              f"flops scale {flops_scale:g}", file=sys.stderr)
    elif args.cells is not None:
        try:
            grid = Grid.from_cells(constants.PAPER_GRID_LABELS[args.cells])
        except KeyError:
            print(f"unknown size {args.cells!r}; known: "
                  f"{', '.join(constants.PAPER_GRID_LABELS)}",
                  file=sys.stderr)
            return 2
    else:
        grid = Grid(nx=args.nx, ny=args.ny, nz=args.nz)

    tracer = Tracer(enabled=args.trace is not None)
    metrics = MetricRegistry(enabled=args.trace is not None)
    report = tune(
        args.device, grid, backend=args.backend,
        strategy=args.strategy, objective=args.objective,
        budget=args.budget, seed=args.seed,
        wide_precision=args.wide_precision, flops_scale=flops_scale,
        cache_path=args.cache, measure_top_k=args.measure,
        tracer=tracer, metrics=metrics,
    )

    # A tuned Versal deployment lands on one front with the paper's
    # four measured platforms (U280, Stratix 10, Xeon 8260M, V100).
    cross = None
    if report.backend == "versal_aie":
        from repro.backend.compare import cross_architecture_front

        cross = cross_architecture_front(report.best, grid,
                                         flops_scale=flops_scale)

    if args.trace:
        path = write_trace(args.trace, tracer,
                           process_name=f"tune-{args.device or report.device}")
        print(f"wrote Perfetto search trace: {path}", file=sys.stderr)
    if args.pareto:
        if cross is None:
            pareto_payload = [e.to_dict() for e in report.front]
        else:
            pareto_payload = {
                "front": [e.to_dict() for e in report.front],
                "cross_architecture": [p.to_dict() for p in cross],
            }
        with open(args.pareto, "w") as handle:
            handle.write(json_module.dumps(
                pareto_payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote Pareto front: {args.pareto}", file=sys.stderr)

    if args.json:
        if cross is None:
            sys.stdout.write(report.to_json())
        else:
            payload = report.to_dict()
            payload["cross_architecture"] = [p.to_dict() for p in cross]
            sys.stdout.write(json_module.dumps(
                payload, indent=2, sort_keys=True) + "\n")
    else:
        print(render_text(report), end="")
        if cross is not None:
            print()
            print("cross-architecture front (kernel GFLOPS vs watts):")
            header = (f"  {'architecture':>12}  {'backend':<16} "
                      f"{'GFLOPS':>9} {'watts':>7} {'GF/W':>7}  front")
            print(header)
            print("  " + "-" * (len(header) - 2))
            for entry in cross:
                print(f"  {entry.architecture:>12}  {entry.backend:<16} "
                      f"{entry.kernel_gflops:9.2f} {entry.watts:7.1f} "
                      f"{entry.gflops_per_watt:7.3f}  "
                      f"{'*' if entry.on_front else '-'}")

    if report.best is None:
        print("error: no feasible deployment in the space",
              file=sys.stderr)
        return 1
    if (args.expect_kernels is not None
            and report.best.point.num_kernels != args.expect_kernels):
        print(f"error: expected the best deployment to use "
              f"{args.expect_kernels} kernels, tuner chose "
              f"{report.best.point.num_kernels} "
              f"({report.best.point.key()})", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import json as json_module

    from repro.faults.plan import FaultPlan, FaultSpec
    from repro.observe import MetricRegistry, Tracer, write_trace
    from repro.serve import (DEFAULT_FLEET_SPEC, Fleet, FleetScheduler,
                             PoissonLoad, run_load)

    fleet_spec = args.fleet or DEFAULT_FLEET_SPEC
    load = PoissonLoad(
        jobs=args.jobs, rate_hz=args.rate, seed=args.seed,
        nx=args.nx, ny=args.ny, nz=args.nz,
        exact_fraction=args.exact_fraction,
        deadline_seconds=(None if args.deadline_ms is None
                          else args.deadline_ms * 1e-3),
        scenario=args.scenario,
    )

    fault_plan = None
    if args.chaos:
        lanes = Fleet.from_spec(fleet_spec).lanes
        first = lanes[0].name
        fault_plan = FaultPlan([
            FaultSpec("device", "loss", match=first, probability=0.5,
                      count=1),
            FaultSpec("device", "blip", match="*", probability=0.1,
                      count=1, seconds=0.01),
            FaultSpec("transfer", "fail", match="*h2d*", probability=0.05,
                      count=4),
        ], seed=args.chaos_seed)

    tracer = Tracer() if args.trace else None
    metrics = MetricRegistry() if args.metrics else None
    scheduler = FleetScheduler(Fleet.from_spec(fleet_spec),
                               fault_plan=fault_plan, tracer=tracer,
                               metrics=metrics)
    report = run_load(scheduler, load)

    # Tri-state: None = no chaos leg ran, so there is nothing to attest.
    invariant_ok: bool | None = True if args.chaos else None
    if args.chaos:
        golden = run_load(FleetScheduler(Fleet.from_spec(fleet_spec)), load)
        golden_sums = {outcome.spec.job_id: outcome.result.checksum
                       for outcome in golden.completed
                       if outcome.result is not None}
        for outcome in report.completed:
            assert outcome.result is not None
            expected = golden_sums.get(outcome.spec.job_id)
            if expected is not None and outcome.result.checksum != expected:
                invariant_ok = False
                print(f"INVARIANT VIOLATION: job {outcome.spec.job_id} "
                      "diverged from the fault-free fleet run",
                      file=sys.stderr)

    if args.json:
        payload = report.to_dict()
        payload["invariant_ok"] = invariant_ok
        print(json_module.dumps(payload, indent=2))
    else:
        print(report.render_text())
        if args.chaos:
            verdict = "holds" if invariant_ok else "VIOLATED"
            print(f"bit-identity-or-typed-error invariant: {verdict}")
    if metrics is not None:
        print()
        print(metrics.render_text())
    if tracer is not None and args.trace:
        path = write_trace(args.trace, serve_tracer=tracer,
                           process_name="serve")
        print(f"fleet trace written to {path}")
    return 0 if invariant_ok is not False else 1


def _cmd_scorecard(args) -> int:
    from repro.experiments.summary import (
        build_scorecard,
        build_summary,
        write_summary,
    )

    summary = build_summary()
    card = build_scorecard(summary, tolerance_pct=args.tolerance)
    print(card.summary_line())
    if args.json:
        path = write_summary(args.json)
        print(f"full summary written to {path}")
    return 0 if card.match_fraction == 1.0 else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "experiments":
            return _cmd_experiments(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "validate":
            return _cmd_validate(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "devices":
            return _cmd_devices()
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        if args.command == "scorecard":
            return _cmd_scorecard(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "tune":
            return _cmd_tune(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "report":
            from repro.experiments.markdown_report import main as report_main

            return report_main([args.path] if args.path else [])
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
