"""Cross-mode conformance: every scenario, every engine mode, bitwise.

The repo's core claim is that its three execution modes — forced-scalar
exact, batched exact, and fast (steady-state fast-forward) — are
*indistinguishable*: same outputs byte for byte, same cycle counts,
same stats, same fault traces.  PR 7 proved that for the advection
kernel; this harness re-proves it for **every registered scenario**, so
no kernel can join the suite without inheriting the guarantee.

Per scenario, six checks run on the grid family's small shape:

``reference``
    Forced-scalar exact output equals the NumPy reference bitwise, for
    every batch.
``batched``
    Batched exact equals forced-scalar: outputs, cycle counts, and the
    full stats dict minus the batching bookkeeping keys
    (``batched_windows``/``batched_cycles``/``batch_fallback_reason``).
``fast``
    Fast mode equals forced-scalar on outputs and cycles; kernels whose
    stages are data-dependent (``fast_admissible = False``) must
    additionally *record a veto* — a silent pretend-fast-forward would
    be a correctness bug, not a feature.
``fault``
    One injected fault plan per scenario, identical seed, run under
    forced-scalar and batched execution: both legs must end in the same
    state (bit-identical outputs after recovery, or the same typed
    error) with identical fault traces.
``lint``
    The scenario's dataflow graph and config raise no lint errors.
``analyze``
    The static verifier proves the graph deadlock-free at the ideal
    steady-state rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.fields import SOURCE_NAMES, SourceSet
from repro.core.grid import Grid
from repro.errors import ReproError
from repro.scenarios.base import Scenario, ScenarioResult

__all__ = [
    "CheckResult",
    "ScenarioConformance",
    "ConformanceReport",
    "run_conformance",
    "run_suite",
    "STATS_BATCH_KEYS",
]

#: Stats keys that legitimately differ between scalar and batched runs
#: (the batching bookkeeping itself).
STATS_BATCH_KEYS: frozenset[str] = frozenset(
    {"batched_windows", "batched_cycles", "batch_fallback_reason"})

#: The check names, in execution order.
CHECKS: tuple[str, ...] = ("reference", "batched", "fast", "fault",
                           "lint", "analyze")


@dataclass(frozen=True)
class CheckResult:
    """One check's verdict for one scenario."""

    scenario: str
    check: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"scenario": self.scenario, "check": self.check,
                "ok": self.ok, "detail": self.detail}


@dataclass
class ScenarioConformance:
    """All of one scenario's check results."""

    scenario: str
    grid: Grid
    results: list[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "grid": [self.grid.nx, self.grid.ny, self.grid.nz],
            "ok": self.ok,
            "checks": [result.to_dict() for result in self.results],
        }


@dataclass
class ConformanceReport:
    """The whole suite's verdict (one entry per scenario)."""

    entries: list[ScenarioConformance] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    def to_dict(self) -> dict[str, Any]:
        return {"ok": self.ok,
                "scenarios": [entry.to_dict() for entry in self.entries]}

    def render_text(self) -> str:
        lines = []
        for entry in self.entries:
            verdict = "ok" if entry.ok else "FAIL"
            checks = " ".join(
                f"{result.check}={'ok' if result.ok else 'FAIL'}"
                for result in entry.results)
            lines.append(f"{entry.scenario:>20}  [{verdict}]  {checks}")
            for result in entry.results:
                if not result.ok:
                    lines.append(f"{'':>22}  {result.check}: "
                                 f"{result.detail}")
        lines.append("")
        good = sum(entry.ok for entry in self.entries)
        lines.append(f"conformance: {good}/{len(self.entries)} scenarios "
                     f"bit-identical across modes")
        return "\n".join(lines)


def _identical(a: SourceSet, b: SourceSet) -> bool:
    """Byte-for-byte equality of two source sets."""
    return all(np.array_equal(getattr(a, name), getattr(b, name))
               for name in SOURCE_NAMES)


def _batches_identical(a: ScenarioResult, b: ScenarioResult) -> bool:
    return len(a.batches) == len(b.batches) and all(
        _identical(x, y) for x, y in zip(a.batches, b.batches))


def _stats_minus_batching(result: ScenarioResult) -> dict[str, Any]:
    return {key: value for key, value in result.stats.to_dict().items()
            if key not in STATS_BATCH_KEYS}


def _faulted_leg(scenario: Scenario, grid: Grid, seed: int, *,
                 batched: bool) -> tuple[ScenarioResult | None,
                                         str | None, tuple]:
    """One faulted run: (result, error string, fault trace key)."""
    plan = scenario.fault_plan(seed)
    try:
        result = scenario.run(grid, seed=seed, mode="exact",
                              batched=batched, fault_plan=plan)
        return result, None, plan.trace_key()
    except ReproError as error:
        return None, f"{type(error).__name__}: {error}", plan.trace_key()


def run_conformance(scenario: Scenario, *, grid: Grid | None = None,
                    seed: int = 0) -> ScenarioConformance:
    """Run every conformance check for one scenario."""
    if grid is None:
        grid = scenario.small_grid()
    entry = ScenarioConformance(scenario=scenario.name, grid=grid)

    def record(check: str, ok: bool, detail: str = "") -> None:
        entry.results.append(CheckResult(
            scenario=scenario.name, check=check, ok=ok,
            detail=detail if not ok else ""))

    # The baseline every mode is held to: the forced-scalar exact run.
    scalar = scenario.run(grid, seed=seed, mode="exact", batched=False)

    references = scenario.reference(grid, seed=seed)
    ref_ok = len(references) == len(scalar.batches) and all(
        _identical(out, ref)
        for out, ref in zip(scalar.batches, references))
    record("reference", ref_ok,
           "forced-scalar output differs from the NumPy reference")

    batched = scenario.run(grid, seed=seed, mode="exact", batched=True)
    problems = []
    if not _batches_identical(scalar, batched):
        problems.append("outputs differ")
    if scalar.total_cycles != batched.total_cycles:
        problems.append(f"cycles differ ({scalar.total_cycles} vs "
                        f"{batched.total_cycles})")
    if _stats_minus_batching(scalar) != _stats_minus_batching(batched):
        problems.append("stats differ beyond batching bookkeeping")
    record("batched", not problems, "; ".join(problems))

    fast = scenario.run(grid, seed=seed, mode="fast", batched=False)
    problems = []
    if not _batches_identical(scalar, fast):
        problems.append("outputs differ")
    if scalar.total_cycles != fast.total_cycles:
        problems.append(f"cycles differ ({scalar.total_cycles} vs "
                        f"{fast.total_cycles})")
    if not scenario.kernel.fast_admissible and not fast.stats.ff_veto_reason:
        problems.append("data-dependent kernel fast-forwarded without "
                        "recording a veto")
    record("fast", not problems, "; ".join(problems))

    scalar_f, scalar_err, scalar_trace = _faulted_leg(
        scenario, grid, seed, batched=False)
    batched_f, batched_err, batched_trace = _faulted_leg(
        scenario, grid, seed, batched=True)
    problems = []
    if scalar_trace != batched_trace:
        problems.append("fault traces diverge between scalar and batched")
    if (scalar_err is None) != (batched_err is None):
        problems.append(f"one leg errored, the other did not "
                        f"({scalar_err!r} vs {batched_err!r})")
    elif scalar_err is not None:
        if scalar_err != batched_err:
            problems.append(f"typed errors differ ({scalar_err!r} vs "
                            f"{batched_err!r})")
    else:
        assert scalar_f is not None and batched_f is not None
        if not _batches_identical(scalar_f, batched_f):
            problems.append("recovered outputs differ")
        # Recovery must also restore the fault-free result bitwise
        # when the kernel has a checkpoint/restart layer.
        if scalar_trace and scenario.kernel.kind == "advection" \
                and not _batches_identical(scalar_f, scalar):
            problems.append("recovered output differs from the "
                            "fault-free golden run")
    record("fault", not problems, "; ".join(problems))

    lint_report = scenario.lint(grid)
    record("lint", not lint_report.errors,
           "; ".join(f"{diag.code}: {diag.message}"
                     for diag in lint_report.errors))

    analysis = scenario.analyze(grid)
    record("analyze", analysis.ok,
           "static analysis did not prove deadlock-freedom at the "
           "ideal rate")
    return entry


def run_suite(names: tuple[str, ...] | None = None, *,
              seed: int = 0) -> ConformanceReport:
    """Run the conformance harness over the (selected) registry."""
    from repro.scenarios import registry

    selected = names if names is not None else registry.names()
    report = ConformanceReport()
    for name in selected:
        report.entries.append(run_conformance(registry.get(name),
                                              seed=seed))
    return report
