"""The scenario suite's concrete kernels, built from existing parts.

Nothing here is a new execution engine: the advection kernel wraps
:func:`repro.kernel.simulate.simulate_kernel` (the Fig. 2 graph with
checkpoint/restart), and the diffusion and buoyancy kernels wrap
:func:`repro.kernel.generic.run_stencil_kernel` (the read -> shift ->
compute -> write machine over :class:`~repro.shiftbuffer.general.
GeneralShiftBuffer` windows).  The scenario layer only *binds* those
paths to op models, structural graphs, and fault specs so the
conformance harness can drive every kernel identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.buoyancy import (
    BUOYANCY_OPS_PER_CELL,
    BUOYANCY_OPS_PER_TOP_CELL,
    DEFAULT_FILTER_WEIGHT,
    buoyancy_reference,
)
from repro.core.coefficients import AdvectionCoefficients
from repro.core.diffusion import DIFFUSION_OPS_PER_CELL, diffuse_reference
from repro.core.fields import FieldSet, SourceSet
from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.dataflow.engine import RunStats
from repro.dataflow.graph import DataflowGraph
from repro.kernel.buoyancy import (
    buoyancy_boundary_from_window,
    buoyancy_from_window,
)
from repro.kernel.config import KernelConfig
from repro.kernel.diffusion import (
    diffusion_boundary_from_window,
    diffusion_from_window,
)
from repro.kernel.generic import run_stencil_kernel
from repro.kernel.simulate import simulate_kernel
from repro.lint.spec import SpecStage
from repro.scenarios.base import OpModel, ScenarioKernel

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.shiftbuffer.general import GeneralWindow

__all__ = [
    "AdvectionKernel",
    "DiffusionKernel",
    "BuoyancyKernel",
    "build_stencil_structural_graph",
]

#: A per-window result list, as run_stencil_kernel consumes.
_WindowFn = Callable[["GeneralWindow"],
                     Sequence[tuple[tuple[int, int, int], float]]]


def build_stencil_structural_graph(grid: Grid, *, name: str,
                                   stream_depth: int = 4) -> DataflowGraph:
    """The generic stencil machine's topology, data-free.

    Mirrors :func:`repro.kernel.generic.run_stencil_kernel` stage for
    stage and stream for stream — same names, same ports, same depths —
    so lint's graph family and the static analyzer see exactly the
    shape the simulator runs.  No per-stage FLOP declarations: the
    63/55 accounting cross-check (AC303) is advection-specific.
    """
    graph = DataflowGraph(name)
    read = graph.add(SpecStage("read", outputs=("out",), ii=1, latency=2))
    shift = graph.add(SpecStage("shift", inputs=("in",), outputs=("out",),
                                ii=1, latency=2))
    compute = graph.add(SpecStage("compute", inputs=("in",),
                                  outputs=("out",), ii=1, latency=8))
    write = graph.add(SpecStage("write", inputs=("in",), latency=4))
    graph.connect(read, "out", shift, "in", depth=stream_depth)
    graph.connect(shift, "out", compute, "in", depth=stream_depth)
    graph.connect(compute, "out", write, "in", depth=stream_depth)
    return graph


class AdvectionKernel(ScenarioKernel):
    """The paper's PW advection kernel (Fig. 2 graph, chunked)."""

    kind = "advection"
    op_model = OpModel(63, 55)
    #: The Fig. 2 stages are unit-rate with closed-form signatures, so
    #: the steady-state periodicity proof holds and fast mode actually
    #: fast-forwards.
    fast_admissible = True

    def __init__(self, *, chunk_width: int | None = None) -> None:
        self._chunk_width = chunk_width

    def config(self, grid: Grid) -> KernelConfig:
        if self._chunk_width is not None:
            return KernelConfig(grid=grid, chunk_width=self._chunk_width)
        return KernelConfig(grid=grid)

    def reference(self, fields: FieldSet) -> SourceSet:
        coeffs = AdvectionCoefficients.uniform(fields.grid)
        return advect_reference(fields, coeffs)

    def run(self, fields: FieldSet, *, mode: str = "exact",
            batched: bool = True,
            fault_plan: "FaultPlan | None" = None,
            ) -> tuple[SourceSet, RunStats, int]:
        result = simulate_kernel(
            self.config(fields.grid), fields, mode=mode, batched=batched,
            fault_plan=fault_plan)
        return result.sources, result.aggregate_stats(), result.total_cycles

    def structural_graph(self, grid: Grid) -> DataflowGraph:
        from repro.lint.builders import build_structural_graph

        return build_structural_graph(self.config(grid))

    def lint(self, grid: Grid):
        from repro.lint.runner import lint_kernel

        return lint_kernel(self.config(grid))

    def fault_specs(self) -> tuple:
        # A transient corrupt word inside the shift-buffer feed: the
        # chunk checkpoint/restart retries that chunk and the run ends
        # bit-identical to the fault-free golden output.
        from repro.faults.plan import FaultSpec

        return (FaultSpec("fifo", "corrupt", match="*shift_buffer*",
                          probability=0.02, count=1),)


class _StencilKernel(ScenarioKernel):
    """Shared machinery for kernels on the general stencil machine.

    Runs each of the three wind fields through its own
    ``run_stencil_kernel`` pass (the FPGA design would instantiate one
    pipeline per field); stats merge across the three runs.  Both
    stages of that machine are data-dependent (``unit_rate = False``,
    no fast-forward signature), so fast mode and batched windows demote
    to the scalar loop by design — the conformance harness asserts the
    veto fires rather than pretending a speedup exists.
    """

    fast_admissible = False
    #: Streams carry window bursts of up to three results (interior +
    #: both one-sided boundary cells at nz == 3).
    stream_depth = 4

    def window_fn(self, grid: Grid) -> _WindowFn:
        raise NotImplementedError

    def run(self, fields: FieldSet, *, mode: str = "exact",
            batched: bool = True,
            fault_plan: "FaultPlan | None" = None,
            ) -> tuple[SourceSet, RunStats, int]:
        grid = fields.grid
        out = SourceSet.zeros(grid)
        fn = self.window_fn(grid)
        all_stats: list[RunStats] = []
        total_cycles = 0
        for name, target in (("u", out.su), ("v", out.sv), ("w", out.sw)):
            stats = run_stencil_kernel(
                getattr(fields, name), fn, target,
                stream_depth=self.stream_depth, mode=mode, batched=batched,
                fault_plan=fault_plan)
            all_stats.append(stats)
            total_cycles += stats.cycles
        return out, RunStats.merge(all_stats), total_cycles

    def structural_graph(self, grid: Grid) -> DataflowGraph:
        return build_stencil_structural_graph(
            grid, name=self.kind, stream_depth=self.stream_depth)

    def fault_specs(self) -> tuple:
        # The generic machine has no checkpoint layer: a corrupted feed
        # word surfaces as a typed FaultError at the consuming stage.
        # The conformance fault leg asserts scalar and batched runs
        # raise the *same* error with the *same* fault trace.
        from repro.faults.plan import FaultSpec

        return (FaultSpec("fifo", "corrupt", match="read.out->shift.in",
                          probability=0.01, count=1),)


def _with_boundaries(center: tuple[int, int, int], nz: int,
                     interior: float, bottom: Callable[[], float],
                     top: Callable[[], float],
                     ) -> list[tuple[tuple[int, int, int], float]]:
    """Assemble one window's burst: interior cell plus boundary cells."""
    cx, cy, cz = center
    results = [((cx, cy, cz), interior)]
    if cz == 1:
        results.append(((cx, cy, 0), bottom()))
    if cz == nz - 2:
        results.append(((cx, cy, nz - 1), top()))
    return results


class DiffusionKernel(_StencilKernel):
    """7-point constant-viscosity diffusion (MONC's other big stencil)."""

    kind = "diffusion"
    op_model = OpModel(DIFFUSION_OPS_PER_CELL, DIFFUSION_OPS_PER_CELL)

    def __init__(self, *, nu: float = 1.0) -> None:
        self.nu = nu

    def reference(self, fields: FieldSet) -> SourceSet:
        return diffuse_reference(fields, nu=self.nu)

    def window_fn(self, grid: Grid) -> _WindowFn:
        nu = self.nu

        def fn(window: "GeneralWindow"):
            return _with_boundaries(
                window.center, grid.nz,
                diffusion_from_window(window, grid, nu),
                lambda: diffusion_boundary_from_window(
                    window, grid, nu, top=False),
                lambda: diffusion_boundary_from_window(
                    window, grid, nu, top=True),
            )

        return fn


class BuoyancyKernel(_StencilKernel):
    """Vertical Shapiro 1-2-1 buoyancy smoothing (cheapest stencil)."""

    kind = "buoyancy"
    op_model = OpModel(BUOYANCY_OPS_PER_CELL, BUOYANCY_OPS_PER_TOP_CELL)

    def __init__(self, *, alpha: float = DEFAULT_FILTER_WEIGHT) -> None:
        self.alpha = alpha

    def reference(self, fields: FieldSet) -> SourceSet:
        return buoyancy_reference(fields, self.alpha)

    def window_fn(self, grid: Grid) -> _WindowFn:
        alpha = self.alpha

        def fn(window: "GeneralWindow"):
            return _with_boundaries(
                window.center, grid.nz,
                buoyancy_from_window(window, alpha),
                lambda: buoyancy_boundary_from_window(
                    window, alpha, top=False),
                lambda: buoyancy_boundary_from_window(
                    window, alpha, top=True),
            )

        return fn
