"""Scenario model: a kernel, a grid family, boundaries, and batches.

A *scenario* is one member of the workload suite — the binding of

* a stencil kernel (:class:`ScenarioKernel`: PW advection, diffusion,
  buoyancy smoothing — all assembled from the repo's existing stage and
  shift-buffer parts),
* a grid family (:class:`GridFamily`: cubic, tall-column, flat — which
  turns the paper's quoted 62.875 ops/cycle into the *derived* quantity
  :func:`repro.constants.derived_ops_per_cycle` evaluated at that
  family's column height),
* a boundary-condition variant (periodic or open halos), and
* an optional multi-field batch (several independent field sets run
  back to back through one kernel).

Every scenario knows how to run itself through the cycle-accurate
engine in any execution mode, produce its NumPy reference, lint its
dataflow graph, prove it deadlock-free with the static analyzer, and
draw a deterministic fault plan — which is exactly the surface the
cross-mode conformance harness (:mod:`repro.scenarios.conformance`)
exercises for every registered entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro import constants
from repro.core.fields import FieldSet, SourceSet
from repro.core.grid import Grid
from repro.core.wind import (
    constant_wind,
    gravity_current,
    random_wind,
    shear_layer,
    taylor_green,
    thermal_bubble,
)
from repro.dataflow.engine import RunStats
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.analyze.report import AnalysisReport
    from repro.dataflow.graph import DataflowGraph
    from repro.faults.plan import FaultPlan
    from repro.lint.diagnostics import LintReport

__all__ = [
    "OpModel",
    "GridFamily",
    "ScenarioKernel",
    "ScenarioResult",
    "Scenario",
    "WIND_GENERATORS",
]

#: Wind generator name -> callable(grid, seed); structured flows ignore
#: the seed (they are analytic), random draws use it.
WIND_GENERATORS: dict[str, Callable[[Grid, int], FieldSet]] = {
    "random": lambda grid, seed: random_wind(grid, seed=seed, magnitude=2.0),
    "constant": lambda grid, seed: constant_wind(grid),
    "shear-layer": lambda grid, seed: shear_layer(grid),
    "thermal-bubble": lambda grid, seed: thermal_bubble(grid),
    "gravity-current": lambda grid, seed: gravity_current(grid),
    "taylor-green": lambda grid, seed: taylor_green(grid),
}

#: Legal boundary-condition variants.
BOUNDARIES: tuple[str, ...] = ("periodic", "open")


@dataclass(frozen=True)
class OpModel:
    """A kernel's per-cell operation counts (paper convention).

    The advection kernel's model is 63/55 (section III); diffusion and
    buoyancy smoothing carry their own counts.  The theoretical
    ops/cycle of a scenario *derives* from this model and the grid
    family's column height — the paper's 62.875 is the advection model
    evaluated at the MONC default height of 64, not a constant.
    """

    ops_per_cell: int
    ops_per_top_cell: int

    def __post_init__(self) -> None:
        if self.ops_per_cell < 1 or self.ops_per_top_cell < 1:
            raise ConfigurationError(
                f"operation counts must be >= 1, got "
                f"{self.ops_per_cell}/{self.ops_per_top_cell}"
            )

    def ops_per_cycle(self, column_height: int) -> float:
        """Theoretical per-cycle issue at one column height."""
        return constants.derived_ops_per_cycle(
            column_height, ops_per_cell=self.ops_per_cell,
            ops_per_top_cell=self.ops_per_top_cell)

    def column_flops(self, nz: int) -> int:
        """Operations charged to one column (paper convention)."""
        if nz < 2:
            raise ConfigurationError(
                f"column height must be >= 2, got {nz}")
        return (nz - 1) * self.ops_per_cell + self.ops_per_top_cell

    def grid_flops(self, grid: Grid) -> int:
        """Operations charged to one kernel invocation over ``grid``."""
        return grid.num_columns * self.column_flops(grid.nz)

    @property
    def flops_scale(self) -> float:
        """Operation intensity relative to the advection kernel.

        The tuner's cost model prices the advection kernel; a scenario
        re-scales its GFLOPS axes by this ratio (cells stream at the
        same one-per-cycle rate regardless of the per-cell op count).
        """
        return self.ops_per_cell / constants.OPS_PER_CELL

    def to_dict(self) -> dict[str, Any]:
        return {
            "ops_per_cell": self.ops_per_cell,
            "ops_per_top_cell": self.ops_per_top_cell,
        }


@dataclass(frozen=True)
class GridFamily:
    """A named family of grid shapes a scenario is defined over.

    ``default`` is the shape the CLI runs; ``small`` is the shape the
    conformance harness uses (forced-scalar execution prices every
    cell, so conformance grids stay tiny); ``bounds`` are the inclusive
    per-axis ranges property tests draw random shapes from.
    """

    name: str
    default: tuple[int, int, int]
    small: tuple[int, int, int]
    bounds: tuple[tuple[int, int], tuple[int, int], tuple[int, int]]

    def __post_init__(self) -> None:
        for shape in (self.default, self.small):
            if len(shape) != 3 or any(dim < 1 for dim in shape):
                raise ConfigurationError(
                    f"grid family {self.name!r}: bad shape {shape}")
            if shape[2] < 3:
                raise ConfigurationError(
                    f"grid family {self.name!r}: nz must be >= 3 for the "
                    f"vertical stencils, got {shape[2]}")
        for axis, (lo, hi) in zip("xyz", self.bounds):
            if lo > hi or lo < 1 or (axis == "z" and lo < 3):
                raise ConfigurationError(
                    f"grid family {self.name!r}: bad {axis} bounds "
                    f"({lo}, {hi})")
        # The conformance harness runs the small shape forced-scalar, so
        # it must fall inside the (deliberately tiny) draw bounds; the
        # CLI default may exceed them.
        if not all(lo <= dim <= hi for (lo, hi), dim in
                   zip(self.bounds, self.small)):
            raise ConfigurationError(
                f"grid family {self.name!r}: small shape {self.small} "
                f"outside bounds {self.bounds}")

    def default_grid(self) -> Grid:
        return Grid(nx=self.default[0], ny=self.default[1],
                    nz=self.default[2])

    def small_grid(self) -> Grid:
        return Grid(nx=self.small[0], ny=self.small[1], nz=self.small[2])

    def contains(self, grid: Grid) -> bool:
        """True when ``grid`` falls inside this family's bounds."""
        return all(lo <= dim <= hi for (lo, hi), dim in
                   zip(self.bounds, (grid.nx, grid.ny, grid.nz)))

    @property
    def column_height(self) -> int:
        """The default shape's column height (the ops/cycle input)."""
        return self.default[2]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "default": list(self.default),
            "small": list(self.small),
            "bounds": [list(pair) for pair in self.bounds],
        }


class ScenarioKernel:
    """One stencil kernel the scenario suite can bind to a grid family.

    Concrete kernels (:mod:`repro.scenarios.kernels`) wrap the repo's
    existing execution paths — ``simulate_kernel`` for PW advection,
    ``run_stencil_kernel`` over general shift-buffer windows for
    diffusion and buoyancy — behind one uniform surface the conformance
    harness and the CLI drive.
    """

    #: Kernel kind tag ("advection", "diffusion", "buoyancy").
    kind: str = ""
    #: Per-cell operation model (drives derived ops/cycle and GFLOPS).
    op_model: OpModel
    #: True when the steady-state fast-forward proof applies; kernels
    #: built on data-dependent stages veto it (and the conformance
    #: harness asserts that the veto actually fires).
    fast_admissible: bool = False

    def reference(self, fields: FieldSet) -> SourceSet:
        """The NumPy reference result for one field set."""
        raise NotImplementedError

    def run(self, fields: FieldSet, *, mode: str = "exact",
            batched: bool = True,
            fault_plan: "FaultPlan | None" = None,
            ) -> tuple[SourceSet, RunStats, int]:
        """One cycle-accurate kernel pass.

        Returns ``(sources, merged stats, total cycles)``.  Faulted
        runs either recover bit-identically (kernels with
        checkpoint/restart) or raise the typed error the engine
        surfaces — the conformance harness accepts both, as long as
        scalar and batched execution agree exactly.
        """
        raise NotImplementedError

    def structural_graph(self, grid: Grid) -> "DataflowGraph":
        """The data-free dataflow topology for lint and static analysis."""
        raise NotImplementedError

    def fault_specs(self) -> tuple:
        """The fault specs this kernel's conformance fault leg injects."""
        raise NotImplementedError

    def lint(self, grid: Grid) -> "LintReport":
        """Static diagnostics over this kernel's graph (and config)."""
        from repro.lint.runner import lint_graph

        return lint_graph(self.structural_graph(grid))

    def analyze(self, grid: Grid) -> "AnalysisReport":
        """Static dataflow proof (deadlock freedom, rate, depths)."""
        from repro.analyze import analyze_graph

        return analyze_graph(self.structural_graph(grid))


@dataclass
class ScenarioResult:
    """Outcome of one scenario run: per-batch outputs plus engine stats."""

    scenario: str
    grid: Grid
    batches: tuple[SourceSet, ...]
    stats: RunStats
    total_cycles: int

    @property
    def sources(self) -> SourceSet:
        """The first (often only) batch's output."""
        return self.batches[0]

    @property
    def cells_per_cycle(self) -> float:
        cells = len(self.batches) * self.grid.num_cells
        return cells / self.total_cycles if self.total_cycles else 0.0


@dataclass(frozen=True)
class Scenario:
    """One registered workload: kernel x grid family x boundary x batch."""

    name: str
    title: str
    description: str
    kernel: ScenarioKernel
    grids: GridFamily
    boundary: str = "periodic"
    wind: str = "random"
    batch: int = 1
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() for ch in self.name):
            raise ConfigurationError(
                f"scenario name must be non-empty and spaceless, got "
                f"{self.name!r}")
        if self.boundary not in BOUNDARIES:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown boundary "
                f"{self.boundary!r}; legal: {BOUNDARIES}")
        if self.wind not in WIND_GENERATORS:
            raise ConfigurationError(
                f"scenario {self.name!r}: unknown wind generator "
                f"{self.wind!r}; legal: {sorted(WIND_GENERATORS)}")
        if self.batch < 1:
            raise ConfigurationError(
                f"scenario {self.name!r}: batch must be >= 1, got "
                f"{self.batch}")

    # -- inputs ---------------------------------------------------------------

    def default_grid(self) -> Grid:
        return self.grids.default_grid()

    def small_grid(self) -> Grid:
        return self.grids.small_grid()

    def make_fields(self, grid: Grid | None = None, *, seed: int = 0,
                    batch_index: int = 0) -> FieldSet:
        """One batch's input field set, boundary variant applied.

        Batches differ by seed offset so a multi-field scenario streams
        genuinely distinct data.  The open-boundary variant rebuilds
        the set with zeroed halos (``FieldSet.from_interior`` with
        ``periodic=False``) — same interior, different stencil inputs
        at the domain edge.
        """
        if grid is None:
            grid = self.default_grid()
        fields = WIND_GENERATORS[self.wind](grid, seed + batch_index)
        if self.boundary == "open":
            fields = FieldSet.from_interior(
                grid,
                fields.interior("u").copy(),
                fields.interior("v").copy(),
                fields.interior("w").copy(),
                periodic=False,
            )
        return fields

    # -- execution -------------------------------------------------------------

    def run(self, grid: Grid | None = None, *, seed: int = 0,
            mode: str = "exact", batched: bool = True,
            fault_plan: "FaultPlan | None" = None) -> ScenarioResult:
        """Run every batch through the cycle-accurate engine."""
        if grid is None:
            grid = self.default_grid()
        outputs: list[SourceSet] = []
        all_stats: list[RunStats] = []
        total_cycles = 0
        for index in range(self.batch):
            fields = self.make_fields(grid, seed=seed, batch_index=index)
            sources, stats, cycles = self.kernel.run(
                fields, mode=mode, batched=batched, fault_plan=fault_plan)
            outputs.append(sources)
            all_stats.append(stats)
            total_cycles += cycles
        return ScenarioResult(
            scenario=self.name, grid=grid, batches=tuple(outputs),
            stats=RunStats.merge(all_stats), total_cycles=total_cycles)

    def reference(self, grid: Grid | None = None, *, seed: int = 0,
                  ) -> tuple[SourceSet, ...]:
        """Per-batch NumPy reference results."""
        if grid is None:
            grid = self.default_grid()
        return tuple(
            self.kernel.reference(
                self.make_fields(grid, seed=seed, batch_index=index))
            for index in range(self.batch)
        )

    # -- static surfaces -------------------------------------------------------

    def lint(self, grid: Grid | None = None) -> "LintReport":
        return self.kernel.lint(grid or self.default_grid())

    def analyze(self, grid: Grid | None = None) -> "AnalysisReport":
        return self.kernel.analyze(grid or self.default_grid())

    def fault_plan(self, seed: int = 0) -> "FaultPlan":
        """A fresh deterministic fault plan for this scenario's kernel.

        Plans are stateful (occurrence counters advance), so every
        conformance leg builds its own from the same seed and compares
        :meth:`~repro.faults.plan.FaultPlan.trace_key` afterwards.
        """
        from repro.faults.plan import FaultPlan

        return FaultPlan(self.kernel.fault_specs(), seed=seed)

    # -- derived quantities ----------------------------------------------------

    @property
    def ops_per_cycle(self) -> float:
        """Theoretical ops/cycle at this scenario's default column height."""
        return self.kernel.op_model.ops_per_cycle(self.grids.column_height)

    @property
    def flops_scale(self) -> float:
        return self.kernel.op_model.flops_scale

    def grid_flops(self, grid: Grid | None = None) -> int:
        """Operations one batch is charged on ``grid`` (paper convention)."""
        return self.kernel.op_model.grid_flops(grid or self.default_grid())

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "title": self.title,
            "kind": self.kernel.kind,
            "boundary": self.boundary,
            "wind": self.wind,
            "batch": self.batch,
            "tags": list(self.tags),
            "fast_admissible": self.kernel.fast_admissible,
            "op_model": self.kernel.op_model.to_dict(),
            "ops_per_cycle": self.ops_per_cycle,
            "grid_family": self.grids.to_dict(),
        }
