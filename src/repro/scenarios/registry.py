"""The scenario registry: named workloads plus CLI-coverage accounting.

The registry is the single source of truth for what the reproduction
can run beyond the paper's one advection workload: every entry binds a
kernel to a grid family, boundary variant and batch size
(:class:`~repro.scenarios.base.Scenario`), and every entry is held to
the same bar — lint-clean, statically proved deadlock-free, and
bit-identical across execution modes (the conformance harness runs all
of it, per scenario, in CI).

:func:`unregistered_cli_kernels` closes the loop in the other
direction: it scans the CLI for kernel execution paths and reports any
whose kernel *kind* no registered scenario covers, so a new kernel
cannot be wired into ``repro`` without joining the suite.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ConfigurationError
from repro.scenarios.base import GridFamily, Scenario
from repro.scenarios.kernels import (
    AdvectionKernel,
    BuoyancyKernel,
    DiffusionKernel,
)

__all__ = [
    "register",
    "get",
    "names",
    "scenarios",
    "unregistered_cli_kernels",
    "CLI_KERNEL_MODULES",
]

_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (error on duplicate names)."""
    if not replace and scenario.name in _REGISTRY:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get(name: str) -> Scenario:
    """Look one scenario up by name, with a helpful error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: "
            f"{', '.join(names())}"
        ) from None


def names() -> tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def scenarios() -> Iterator[Scenario]:
    """All registered scenarios, in name order."""
    for name in names():
        yield _REGISTRY[name]


# -- the built-in suite --------------------------------------------------------

#: Grid families: the column height is what the derived ops/cycle model
#: consumes, so the suite deliberately spans cubic, tall and flat.
CUBIC = GridFamily("cubic", default=(16, 16, 16), small=(5, 6, 5),
                   bounds=((3, 10), (3, 10), (3, 10)))
TALL_COLUMN = GridFamily("tall-column", default=(6, 8, 96),
                         small=(3, 4, 12), bounds=((3, 6), (3, 6), (8, 24)))
FLAT = GridFamily("flat", default=(24, 12, 8), small=(6, 5, 4),
                  bounds=((4, 12), (4, 12), (3, 8)))
COMPACT = GridFamily("compact", default=(8, 9, 10), small=(4, 5, 6),
                     bounds=((3, 9), (3, 9), (3, 12)))

register(Scenario(
    name="pw-advection",
    title="PW advection, cubic grid",
    description="The paper's workload: the Piacsek-Williams advection "
                "kernel on a cubic periodic grid, 63/55-op model.",
    kernel=AdvectionKernel(),
    grids=CUBIC,
    wind="random",
    tags=("paper", "advection"),
))

register(Scenario(
    name="pw-advection-tall",
    title="PW advection, tall columns",
    description="Advection on deep atmospheric columns (nz = 96): the "
                "derived ops/cycle rises toward the 63-op interior "
                "asymptote as the one-sided column top amortises.",
    kernel=AdvectionKernel(),
    grids=TALL_COLUMN,
    wind="gravity-current",
    tags=("advection", "grid-family"),
))

register(Scenario(
    name="pw-advection-open",
    title="PW advection, open boundaries",
    description="Advection with open (zero-halo) lateral boundaries on "
                "a flat grid — the boundary-condition variant of the "
                "same kernel.",
    kernel=AdvectionKernel(),
    grids=FLAT,
    boundary="open",
    wind="shear-layer",
    tags=("advection", "boundary"),
))

register(Scenario(
    name="diffusion",
    title="7-point diffusion",
    description="Constant-viscosity 7-point diffusion on the general "
                "shift buffer (45-op model); fast-forward and batched "
                "windows demote by design (data-dependent stages).",
    kernel=DiffusionKernel(nu=0.8),
    grids=COMPACT,
    wind="thermal-bubble",
    tags=("diffusion", "general-buffer"),
))

register(Scenario(
    name="buoyancy",
    title="Buoyancy smoothing",
    description="Vertical Shapiro 1-2-1 buoyancy-term smoothing — the "
                "cheapest stencil in the suite (15/9-op model), probing "
                "the low end of the operational-intensity range.",
    kernel=BuoyancyKernel(),
    grids=COMPACT,
    wind="shear-layer",
    tags=("buoyancy", "general-buffer"),
))

register(Scenario(
    name="diffusion-batch",
    title="7-point diffusion, 3-field batch",
    description="Three independent field sets streamed back to back "
                "through one diffusion kernel — the multi-field batch "
                "variant.",
    kernel=DiffusionKernel(nu=1.0),
    grids=GridFamily("batch", default=(5, 6, 7), small=(4, 4, 5),
                     bounds=((3, 8), (3, 8), (3, 8))),
    wind="random",
    batch=3,
    tags=("diffusion", "batch"),
))


# -- CLI kernel coverage -------------------------------------------------------

#: Kernel-bearing modules the CLI may import -> the kernel kind a
#: registered scenario must cover.  Modules that are pure plumbing
#: (graph building, config) are deliberately absent.
CLI_KERNEL_MODULES: dict[str, str] = {
    "repro.kernel.simulate": "advection",
    "repro.kernel.multi_simulate": "advection",
    "repro.kernel.functional": "advection",
    "repro.kernel.diffusion": "diffusion",
    "repro.kernel.buoyancy": "buoyancy",
    "repro.kernel.generic": "stencil",
}

#: Kinds the generic stencil machine covers when any non-advection
#: scenario is registered on it.
_GENERIC_KINDS = ("diffusion", "buoyancy")


def unregistered_cli_kernels() -> tuple[str, ...]:
    """Kernel kinds reachable from the CLI with no registered scenario.

    Scans the source of :mod:`repro.cli` (and this package's CLI glue)
    for references to kernel-bearing modules, maps each to its kernel
    kind, and subtracts the kinds the registry covers.  Empty means
    every kernel a user can run from ``repro`` is in the suite; CI
    fails otherwise.
    """
    import inspect

    import repro.cli as cli_module
    import repro.scenarios.kernels as kernels_module

    source = inspect.getsource(cli_module) \
        + inspect.getsource(kernels_module)
    reachable = {
        kind for module, kind in CLI_KERNEL_MODULES.items()
        if module.rsplit(".", 1)[-1] in source and kind != "stencil"
    }
    if "repro.kernel.generic".rsplit(".", 1)[-1] in source:
        reachable.update(_GENERIC_KINDS)
    covered = {scenario.kernel.kind for scenario in scenarios()}
    return tuple(sorted(reachable - covered))
