"""The workload suite: a typed scenario registry + conformance harness.

The paper evaluates one kernel (PW advection) on one grid family; the
reproduction generalises both axes.  A :class:`~repro.scenarios.base.
Scenario` binds a stencil kernel (advection, diffusion, buoyancy
smoothing — all built from the existing stage/shift-buffer parts) to a
grid family, boundary-condition variant and optional multi-field batch;
the registry (:mod:`repro.scenarios.registry`) names the built-in
suite; and the conformance harness (:mod:`repro.scenarios.conformance`)
holds every entry to the engine's bit-identity guarantee across
execution modes, including under injected faults.

See ``docs/scenarios.md``.
"""

from repro.scenarios.base import (
    GridFamily,
    OpModel,
    Scenario,
    ScenarioKernel,
    ScenarioResult,
)
from repro.scenarios.conformance import (
    ConformanceReport,
    ScenarioConformance,
    run_conformance,
    run_suite,
)
from repro.scenarios.kernels import (
    AdvectionKernel,
    BuoyancyKernel,
    DiffusionKernel,
)
from repro.scenarios.registry import (
    get,
    names,
    register,
    scenarios,
    unregistered_cli_kernels,
)

__all__ = [
    "OpModel",
    "GridFamily",
    "Scenario",
    "ScenarioKernel",
    "ScenarioResult",
    "AdvectionKernel",
    "DiffusionKernel",
    "BuoyancyKernel",
    "register",
    "get",
    "names",
    "scenarios",
    "unregistered_cli_kernels",
    "run_conformance",
    "run_suite",
    "ConformanceReport",
    "ScenarioConformance",
]
