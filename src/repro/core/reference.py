"""Vectorised NumPy implementation of the PW advection scheme.

This is the fast golden reference used everywhere in the library: the
functional FPGA kernel simulation, the cycle-level dataflow simulation and
the CPU baseline are all validated against it, and it in turn is validated
bit-for-bit against the scalar :mod:`repro.core.golden` specification.

Following the HPC guides bundled with this project, the implementation is a
single pass of whole-array slicing (no Python-level loops over cells), does
the vertical boundary levels with dedicated slices rather than masks, and
avoids temporaries where cheap to do so.
"""

from __future__ import annotations

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet

__all__ = ["advect_reference"]


def advect_reference(fields: FieldSet,
                     coeffs: AdvectionCoefficients | None = None,
                     out: SourceSet | None = None) -> SourceSet:
    """Compute PW advection source terms with vectorised NumPy.

    Parameters
    ----------
    fields:
        Wind components with valid halos.
    coeffs:
        Advection coefficients; defaults to the uniform atmosphere.
    out:
        Optional pre-allocated :class:`SourceSet` to fill in place (its
        contents are overwritten), saving allocations in time-stepping loops.

    Returns
    -------
    SourceSet
        Matches :func:`repro.core.golden.advect_golden` bit-for-bit: the
        expression trees are identical, only the iteration is vectorised.
    """
    grid = fields.grid
    if coeffs is None:
        coeffs = AdvectionCoefficients.uniform(grid)
    if coeffs.nz != grid.nz:
        raise ValueError(
            f"coefficients are for nz={coeffs.nz}, grid has nz={grid.nz}"
        )
    if out is None:
        out = SourceSet.zeros(grid)
    else:
        if out.grid.interior_shape != grid.interior_shape:
            raise ValueError("output SourceSet has a different grid shape")
        out.su.fill(0.0)
        out.sv.fill(0.0)
        out.sw.fill(0.0)

    u, v, w = fields.u, fields.v, fields.w
    tcx, tcy = coeffs.tcx, coeffs.tcy
    nz = grid.nz

    # Halo-coordinate views.  C = centred interior; suffixes denote the
    # stencil offset that each view presents at the interior cell.
    C = (slice(1, -1), slice(1, -1))
    IM1 = (slice(0, -2), slice(1, -1))
    IP1 = (slice(2, None), slice(1, -1))
    JM1 = (slice(1, -1), slice(0, -2))
    JP1 = (slice(1, -1), slice(2, None))
    IP1_JM1 = (slice(2, None), slice(0, -2))
    IM1_JP1 = (slice(0, -2), slice(2, None))

    # Vertical slices over the interior arrays (axis 2).
    K = slice(1, None)          # source levels k = 1 .. nz-1
    K_MID = slice(1, nz - 1)    # levels with both vertical terms

    # ------------------------------------------------------------------ U --
    su = out.su
    su[:, :, K] = tcx * (
        u[IM1][:, :, K] * (u[C][:, :, K] + u[IM1][:, :, K])
        - u[IP1][:, :, K] * (u[C][:, :, K] + u[IP1][:, :, K])
    )
    su[:, :, K] += tcy * (
        u[JM1][:, :, K] * (v[JM1][:, :, K] + v[IP1_JM1][:, :, K])
        - u[JP1][:, :, K] * (v[C][:, :, K] + v[IP1][:, :, K])
    )
    # Both vertical terms for 1 <= k <= nz-2.
    su[:, :, K_MID] += (
        coeffs.tzc1[K_MID] * u[C][:, :, 0:nz - 2]
        * (w[C][:, :, 0:nz - 2] + w[IP1][:, :, 0:nz - 2])
        - coeffs.tzc2[K_MID] * u[C][:, :, 2:nz]
        * (w[C][:, :, K_MID] + w[IP1][:, :, K_MID])
    )
    # One-sided term at the column top, k = nz-1.
    su[:, :, nz - 1] += (
        coeffs.tzc1[nz - 1] * u[C][:, :, nz - 2]
        * (w[C][:, :, nz - 2] + w[IP1][:, :, nz - 2])
    )

    # ------------------------------------------------------------------ V --
    sv = out.sv
    sv[:, :, K] = tcy * (
        v[JM1][:, :, K] * (v[C][:, :, K] + v[JM1][:, :, K])
        - v[JP1][:, :, K] * (v[C][:, :, K] + v[JP1][:, :, K])
    )
    sv[:, :, K] += tcx * (
        v[IM1][:, :, K] * (u[IM1][:, :, K] + u[IM1_JP1][:, :, K])
        - v[IP1][:, :, K] * (u[C][:, :, K] + u[JP1][:, :, K])
    )
    sv[:, :, K_MID] += (
        coeffs.tzc1[K_MID] * v[C][:, :, 0:nz - 2]
        * (w[C][:, :, 0:nz - 2] + w[JP1][:, :, 0:nz - 2])
        - coeffs.tzc2[K_MID] * v[C][:, :, 2:nz]
        * (w[C][:, :, K_MID] + w[JP1][:, :, K_MID])
    )
    sv[:, :, nz - 1] += (
        coeffs.tzc1[nz - 1] * v[C][:, :, nz - 2]
        * (w[C][:, :, nz - 2] + w[JP1][:, :, nz - 2])
    )

    # ------------------------------------------------------------------ W --
    # W sources exist only strictly inside the column: 1 <= k <= nz-2.
    sw = out.sw
    sw[:, :, K_MID] = tcx * (
        w[IM1][:, :, K_MID] * (u[IM1][:, :, K_MID] + u[IM1][:, :, 2:nz])
        - w[IP1][:, :, K_MID] * (u[C][:, :, K_MID] + u[C][:, :, 2:nz])
    )
    sw[:, :, K_MID] += tcy * (
        w[JM1][:, :, K_MID] * (v[JM1][:, :, K_MID] + v[JM1][:, :, 2:nz])
        - w[JP1][:, :, K_MID] * (v[C][:, :, K_MID] + v[C][:, :, 2:nz])
    )
    sw[:, :, K_MID] += (
        coeffs.tzd1[K_MID] * w[C][:, :, 0:nz - 2]
        * (w[C][:, :, K_MID] + w[C][:, :, 0:nz - 2])
        - coeffs.tzd2[K_MID] * w[C][:, :, 2:nz]
        * (w[C][:, :, K_MID] + w[C][:, :, 2:nz])
    )

    return out
