"""Floating-point operation accounting for the PW advection kernel.

The paper reasons about kernel performance through a simple FLOP model:
each advection stage performs 21 double-precision operations per grid cell
(6 for the x-line, 7 for the y-line including the accumulate, 8 for the
z-line including the accumulate), so the three concurrent stages issue 63
operations per cycle, dropping to 55 for a column-top cell where the U and V
stages use a one-sided vertical term.  With the MONC default column height
of 64 this averages 62.875 operations per cycle — which reproduces the
paper's 18.86 GFLOPS (300 MHz) and 25.02 GFLOPS (398 MHz) theoretical
figures exactly.

Two conventions are provided:

* the **paper convention** (:func:`grid_flops`), which charges every cell in
  the column as the pipeline does (the kernel streams all ``nz`` cells and
  one of them is a "top" cell), and
* the **strict convention** (:func:`strict_grid_flops`), which additionally
  discounts the bottom level (no source is computed there) and the missing
  W source at the top — useful when sanity-checking against an operation
  count instrumented out of the numerics.
"""

from __future__ import annotations

from repro import constants
from repro.core.grid import Grid

__all__ = [
    "field_flops",
    "cell_flops",
    "column_flops",
    "grid_flops",
    "strict_grid_flops",
    "strict_cell_flops",
]


def field_flops(*, top: bool = False, field: str = "u") -> int:
    """Operations for one field update at one cell.

    ``top`` selects the column-top variant (one-sided vertical term), which
    only affects the U and V stages; the W stage computes nothing at the top
    but the paper's 55-op figure charges it at full cost, so we do too (see
    :func:`strict_cell_flops` for the discounted variant).
    """
    if field not in ("u", "v", "w"):
        raise ValueError(f"unknown field {field!r}")
    ops = constants.OPS_PER_FIELD
    if top and field in ("u", "v"):
        ops -= constants.OPS_TOP_SAVING_PER_FIELD
    return ops


def cell_flops(*, top: bool = False) -> int:
    """Operations for one full cell (all three fields), paper convention."""
    return sum(field_flops(top=top, field=f) for f in ("u", "v", "w"))


def column_flops(nz: int) -> int:
    """Operations for one full column of height ``nz``, paper convention."""
    if nz < 2:
        raise ValueError(f"column height must be >= 2, got {nz}")
    return (nz - 1) * cell_flops() + cell_flops(top=True)


def grid_flops(grid: Grid) -> int:
    """Operations for one kernel invocation over ``grid``, paper convention.

    This is the numerator of every GFLOPS figure in the reproduction; using
    the paper's own convention keeps our percentages comparable with theirs.
    """
    return grid.num_columns * column_flops(grid.nz)


def strict_cell_flops(k: int, nz: int) -> int:
    """Operations actually executed by the numerics at vertical level ``k``.

    * ``k = 0``: no sources at all -> 0 ops.
    * ``0 < k < nz - 1``: all three fields at full cost.
    * ``k = nz - 1``: U and V with the one-sided vertical term (21 - 4 each)
      and no W source.
    """
    if not 0 <= k < nz:
        raise ValueError(f"level {k} outside column of height {nz}")
    if k == 0:
        return 0
    if k == nz - 1:
        return 2 * (constants.OPS_PER_FIELD - constants.OPS_TOP_SAVING_PER_FIELD)
    return 3 * constants.OPS_PER_FIELD


def strict_grid_flops(grid: Grid) -> int:
    """Operations the numerics execute over ``grid`` (strict convention)."""
    per_column = sum(strict_cell_flops(k, grid.nz) for k in range(grid.nz))
    return grid.num_columns * per_column
