"""The Piacsek-Williams (PW) advection scheme and its supporting numerics.

This subpackage is the *scientific* half of the reproduction: the grid
geometry, the advection coefficients, a scalar loop-nest implementation that
mirrors the MONC Fortran (:mod:`repro.core.golden`), and a fast vectorised
NumPy implementation (:mod:`repro.core.reference`) used as the golden
reference for every simulator path in the library.
"""

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet
from repro.core.flops import (
    cell_flops,
    column_flops,
    field_flops,
    grid_flops,
    strict_grid_flops,
)
from repro.core.golden import advect_golden
from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.timestepping import AdvectionIntegrator
from repro.core.wind import (
    constant_wind,
    gravity_current,
    random_wind,
    shear_layer,
    solid_body_rotation,
    taylor_green,
    thermal_bubble,
)

__all__ = [
    "AdvectionCoefficients",
    "FieldSet",
    "SourceSet",
    "Grid",
    "advect_golden",
    "advect_reference",
    "AdvectionIntegrator",
    "cell_flops",
    "column_flops",
    "field_flops",
    "grid_flops",
    "strict_grid_flops",
    "constant_wind",
    "gravity_current",
    "random_wind",
    "shear_layer",
    "solid_body_rotation",
    "taylor_green",
    "thermal_bubble",
]
