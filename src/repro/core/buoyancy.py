"""Buoyancy-term smoothing of the wind fields (MONC's vertical filter).

MONC's buoyancy term feeds vertical accelerations back into the dynamics;
to keep the forcing stable the model smooths it with a vertical Shapiro
1-2-1 filter.  The FPGA exploration paper for MONC considers exactly this
family of small per-column kernels as follow-on offload candidates, which
is why the scenario suite carries it: it is the *cheapest* stencil in the
workload set (a three-point vertical filter, no horizontal neighbours)
and therefore probes the opposite end of the operations-per-cycle range
from advection.

The scheme, per field and per column::

    s[k]    = alpha * f[k-1] + (1 - 2*alpha) * f[k] + alpha * f[k+1]
    s[0]    = (1 - alpha) * f[0]    + alpha * f[1]        # one-sided
    s[nz-1] = (1 - alpha) * f[nz-1] + alpha * f[nz-2]     # one-sided

with filter weight ``alpha`` (0.25 is the classical 1-2-1 filter).  As
with advection and diffusion there are two implementations — a scalar
loop-nest specification and a vectorised reference — kept bit-identical,
and a kernel-side evaluation on
:class:`~repro.shiftbuffer.general.GeneralShiftBuffer` windows
(:mod:`repro.kernel.buoyancy`).

FLOP accounting: 5 operations per field per interior cell (3 multiplies,
2 adds), 3 at the one-sided column top — 15/9 for all three fields, the
numbers the scenario registry's derived ops-per-cycle model uses.
"""

from __future__ import annotations

import numpy as np

from repro.core.fields import FieldSet, SourceSet
from repro.errors import ConfigurationError

__all__ = [
    "buoyancy_golden",
    "buoyancy_reference",
    "buoyancy_cell",
    "BUOYANCY_OPS_PER_FIELD",
    "BUOYANCY_OPS_PER_CELL",
    "BUOYANCY_OPS_PER_TOP_FIELD",
    "BUOYANCY_OPS_PER_TOP_CELL",
    "DEFAULT_FILTER_WEIGHT",
]

#: Operations per field per interior cell: 3 multiplies + 2 adds.
BUOYANCY_OPS_PER_FIELD: int = 5
BUOYANCY_OPS_PER_CELL: int = 3 * BUOYANCY_OPS_PER_FIELD
#: Operations per field at the one-sided column boundaries: 2 mul + 1 add.
BUOYANCY_OPS_PER_TOP_FIELD: int = 3
BUOYANCY_OPS_PER_TOP_CELL: int = 3 * BUOYANCY_OPS_PER_TOP_FIELD

#: The classical Shapiro 1-2-1 filter weight.
DEFAULT_FILTER_WEIGHT: float = 0.25


def _check_weight(alpha: float) -> None:
    if not 0.0 < alpha <= 0.5:
        raise ConfigurationError(
            f"filter weight must be in (0, 0.5], got {alpha}"
        )


def buoyancy_cell(field: np.ndarray, i: int, j: int, k: int, nz: int,
                  alpha: float) -> float:
    """Smoothed value of one field at halo coordinates ``(i, j, k)``."""
    if k == 0:
        return (1.0 - alpha) * field[i, j, 0] + alpha * field[i, j, 1]
    if k == nz - 1:
        return (1.0 - alpha) * field[i, j, nz - 1] + alpha * field[i, j, nz - 2]
    return (alpha * field[i, j, k - 1]
            + (1.0 - 2.0 * alpha) * field[i, j, k]
            + alpha * field[i, j, k + 1])


def buoyancy_golden(fields: FieldSet,
                    alpha: float = DEFAULT_FILTER_WEIGHT) -> SourceSet:
    """Scalar specification: vertical 1-2-1 smoothing of all three fields."""
    _check_weight(alpha)
    grid = fields.grid
    out = SourceSet.zeros(grid)
    for name, target in (("u", out.su), ("v", out.sv), ("w", out.sw)):
        field = getattr(fields, name)
        for i in range(1, grid.nx + 1):
            for j in range(1, grid.ny + 1):
                for k in range(grid.nz):
                    target[i - 1, j - 1, k] = buoyancy_cell(
                        field, i, j, k, grid.nz, alpha)
    return out


def buoyancy_reference(fields: FieldSet,
                       alpha: float = DEFAULT_FILTER_WEIGHT,
                       out: SourceSet | None = None) -> SourceSet:
    """Vectorised smoothing, bit-identical to :func:`buoyancy_golden`."""
    _check_weight(alpha)
    grid = fields.grid
    if out is None:
        out = SourceSet.zeros(grid)
    elif out.grid.interior_shape != grid.interior_shape:
        raise ConfigurationError("output SourceSet has a different grid")
    nz = grid.nz

    for name, target in (("u", out.su), ("v", out.sv), ("w", out.sw)):
        centre = getattr(fields, name)[1:-1, 1:-1, :]
        # Same expression shapes (and therefore rounding) as the scalar
        # specification, evaluated level-slab by level-slab.
        target[:, :, 1:nz - 1] = (
            alpha * centre[:, :, 0:nz - 2]
            + (1.0 - 2.0 * alpha) * centre[:, :, 1:nz - 1]
            + alpha * centre[:, :, 2:nz]
        )
        target[:, :, 0] = (1.0 - alpha) * centre[:, :, 0] \
            + alpha * centre[:, :, 1]
        target[:, :, nz - 1] = (1.0 - alpha) * centre[:, :, nz - 1] \
            + alpha * centre[:, :, nz - 2]
    return out
