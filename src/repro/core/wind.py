"""Analytic wind-field generators for tests, examples and benchmarks.

Each generator returns a :class:`~repro.core.fields.FieldSet` with periodic
halos already filled.  The fields are chosen to exercise different aspects
of the kernel: constant flow (trivially checkable sources), shear layers
(strong horizontal gradients), a thermal bubble (the classic LES test case
that motivates MONC), a gravity current (density-driven outflow), and
reproducible random fields for fuzzing.
"""

from __future__ import annotations

import numpy as np

from repro.core.fields import FieldSet
from repro.core.grid import Grid

__all__ = [
    "constant_wind",
    "shear_layer",
    "thermal_bubble",
    "gravity_current",
    "random_wind",
    "taylor_green",
    "solid_body_rotation",
]


def _mesh(grid: Grid) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalised interior coordinates in [0, 1), shaped for broadcasting."""
    x = (np.arange(grid.nx) / grid.nx)[:, None, None]
    y = (np.arange(grid.ny) / grid.ny)[None, :, None]
    z = (np.arange(grid.nz) / grid.nz)[None, None, :]
    return x, y, z


def constant_wind(grid: Grid, u0: float = 5.0, v0: float = -3.0,
                  w0: float = 0.5) -> FieldSet:
    """Spatially constant wind everywhere.

    Under periodic boundaries a constant field has zero advective tendency
    in the horizontal, which makes this the sharpest available correctness
    probe for sign errors in the stencil.
    """
    shape = grid.interior_shape
    return FieldSet.from_interior(
        grid,
        np.full(shape, u0),
        np.full(shape, v0),
        np.full(shape, w0),
    )


def shear_layer(grid: Grid, magnitude: float = 10.0,
                thickness: float = 0.1) -> FieldSet:
    """A horizontal shear layer: u flips sign across mid-y, plus weak w.

    The tanh profile concentrates gradients in a band of relative width
    ``thickness``, stressing the y-line terms of the scheme.
    """
    x, y, z = _mesh(grid)
    u = magnitude * np.tanh((y - 0.5) / max(thickness, 1e-6))
    v = 0.05 * magnitude * np.sin(2 * np.pi * x)
    w = 0.05 * magnitude * np.sin(2 * np.pi * y) * np.sin(np.pi * z)
    shape = grid.interior_shape
    return FieldSet.from_interior(
        grid,
        np.broadcast_to(u, shape).copy(),
        np.broadcast_to(v, shape).copy(),
        np.broadcast_to(w, shape).copy(),
    )


def thermal_bubble(grid: Grid, updraft: float = 2.0,
                   radius: float = 0.2) -> FieldSet:
    """A warm-bubble-style updraft with compensating inflow.

    A Gaussian updraft of relative radius ``radius`` sits at the domain
    centre with a horizontally convergent flow beneath it, giving all three
    fields non-trivial structure — the standard convection-initiation test
    that MONC users run.
    """
    x, y, z = _mesh(grid)
    r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2
    column = np.exp(-r2 / (2 * radius**2))
    vertical = np.sin(np.pi * z)
    w = updraft * column * vertical
    # Convergent horizontal flow toward the bubble axis, strongest low down.
    u = -updraft * (x - 0.5) * column * np.cos(np.pi * z)
    v = -updraft * (y - 0.5) * column * np.cos(np.pi * z)
    shape = grid.interior_shape
    return FieldSet.from_interior(
        grid,
        np.broadcast_to(u, shape).copy(),
        np.broadcast_to(v, shape).copy(),
        np.broadcast_to(w, shape).copy(),
    )


def gravity_current(grid: Grid, head_speed: float = 8.0,
                    depth: float = 0.25) -> FieldSet:
    """A density-current-like outflow: low-level jet with return flow aloft.

    The along-x jet occupies the lowest ``depth`` fraction of the column and
    reverses above it (mass continuity), with a weak frontal updraft.
    """
    x, y, z = _mesh(grid)
    low = np.exp(-z / max(depth, 1e-6))
    u = head_speed * (low - depth)  # jet below, return flow above
    v = 0.1 * head_speed * np.sin(2 * np.pi * y) * low
    w = 0.2 * head_speed * np.sin(2 * np.pi * x) * np.sin(np.pi * z)
    shape = grid.interior_shape
    return FieldSet.from_interior(
        grid,
        np.broadcast_to(u, shape).copy(),
        np.broadcast_to(v, shape).copy(),
        np.broadcast_to(w, shape).copy(),
    )


def taylor_green(grid: Grid, magnitude: float = 1.0) -> FieldSet:
    """The Taylor-Green vortex sheet: the classic periodic test flow.

    ``u =  A sin(2*pi*x) cos(2*pi*y)``, ``v = -A cos(2*pi*x) sin(2*pi*y)``,
    ``w = 0`` — exactly divergence-free in the horizontal (to the
    discretisation), with analytically known vorticity.  The standard
    validation case for advection and diagnostics.
    """
    x, y, z = _mesh(grid)
    two_pi = 2.0 * np.pi
    u = magnitude * np.sin(two_pi * x) * np.cos(two_pi * y)
    v = -magnitude * np.cos(two_pi * x) * np.sin(two_pi * y)
    shape = grid.interior_shape
    return FieldSet.from_interior(
        grid,
        np.broadcast_to(u, shape).copy(),
        np.broadcast_to(v, shape).copy(),
        np.zeros(shape),
    )


def solid_body_rotation(grid: Grid, omega: float = 1e-3) -> FieldSet:
    """Solid-body rotation about the domain centre (angular rate omega).

    ``u = -omega * (y - y_c)``, ``v = omega * (x - x_c)`` in physical
    coordinates — zero divergence, uniform vorticity ``2*omega``, a sharp
    probe for the rotational terms of any advection scheme.
    """
    x, y, z = _mesh(grid)
    x_phys = (x - 0.5) * grid.nx * grid.dx
    y_phys = (y - 0.5) * grid.ny * grid.dy
    u = -omega * y_phys
    v = omega * x_phys
    shape = grid.interior_shape
    return FieldSet.from_interior(
        grid,
        np.broadcast_to(u, shape).copy(),
        np.broadcast_to(v, shape).copy(),
        np.zeros(shape),
        periodic=False,  # linear in space: not periodic; open halos
    )


def random_wind(grid: Grid, seed: int = 0, magnitude: float = 1.0) -> FieldSet:
    """Reproducible uniform-random wind in ``[-magnitude, magnitude]``.

    Used for fuzz/property tests: random fields have no structure for a bug
    to hide behind.
    """
    rng = np.random.default_rng(seed)
    shape = grid.interior_shape
    return FieldSet.from_interior(
        grid,
        rng.uniform(-magnitude, magnitude, shape),
        rng.uniform(-magnitude, magnitude, shape),
        rng.uniform(-magnitude, magnitude, shape),
    )
