"""Advection coefficients of the Piacsek-Williams scheme.

The PW centred advective form (Piacsek & Williams 1970; MONC module
``pw_advection_mod``) pre-computes a small set of coefficients:

* ``tcx = 0.25 / dx`` and ``tcy = 0.25 / dy`` for the horizontal terms, and
* density-weighted vertical coefficients per level ``k``:

  - ``tzc1[k] = 0.25 * rdz[k] * rho[k-1] / rhon[k]``
  - ``tzc2[k] = 0.25 * rdz[k] * rho[k]   / rhon[k]``
  - ``tzd1[k] = 0.25 * rdzn[k+1] * rhon[k]   / rho[k]``
  - ``tzd2[k] = 0.25 * rdzn[k+1] * rhon[k+1] / rho[k]``

where ``rho`` is the reference density on w-levels, ``rhon`` on pressure
levels, and ``rdz``/``rdzn`` the reciprocal level spacings.  The ``tzc``
pair weights the U/V vertical fluxes, the ``tzd`` pair the W vertical
fluxes.  With a uniform, constant-density atmosphere all four collapse to
``0.25 / dz``, which is a useful property in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grid import Grid
from repro.errors import ConfigurationError

__all__ = ["AdvectionCoefficients"]

#: Scale height of the isothermal reference atmosphere (metres).
_SCALE_HEIGHT_M: float = 8000.0


@dataclass(frozen=True)
class AdvectionCoefficients:
    """Precomputed PW advection coefficients for one grid.

    Attributes
    ----------
    tcx, tcy:
        Horizontal coefficients (scalars).
    tzc1, tzc2:
        Vertical coefficients for the U and V updates, indexed by the
        0-based vertical level ``k`` (length ``nz``).  Entries at ``k = 0``
        are zero because the bottom level carries no source term.
    tzd1, tzd2:
        Vertical coefficients for the W update, same indexing.  Entries at
        ``k = 0`` and ``k = nz - 1`` are zero because W sources are only
        computed strictly inside the column.
    """

    tcx: float
    tcy: float
    tzc1: np.ndarray
    tzc2: np.ndarray
    tzd1: np.ndarray
    tzd2: np.ndarray

    def __post_init__(self) -> None:
        lengths = {len(self.tzc1), len(self.tzc2), len(self.tzd1), len(self.tzd2)}
        if len(lengths) != 1:
            raise ConfigurationError(
                "vertical coefficient arrays must share one length, got "
                f"{sorted(lengths)}"
            )
        for name in ("tzc1", "tzc2", "tzd1", "tzd2"):
            arr = getattr(self, name)
            if not np.all(np.isfinite(arr)):
                raise ConfigurationError(f"{name} contains non-finite values")
        if not (np.isfinite(self.tcx) and np.isfinite(self.tcy)):
            raise ConfigurationError("tcx/tcy must be finite")

    @property
    def nz(self) -> int:
        return len(self.tzc1)

    # -- factories -----------------------------------------------------------

    @classmethod
    def uniform(cls, grid: Grid) -> "AdvectionCoefficients":
        """Coefficients for a uniform constant-density atmosphere.

        All vertical coefficients become ``0.25 / dz`` (with the boundary
        zeros described in the class docstring).  This is the configuration
        used by most tests because the expected values are easy to reason
        about.
        """
        rho = np.ones(grid.nz + 1)
        return cls.from_density(grid, rho_w=rho, rho_n=np.ones(grid.nz + 1))

    @classmethod
    def isothermal(cls, grid: Grid, *, surface_density: float = 1.225,
                   scale_height: float = _SCALE_HEIGHT_M) -> "AdvectionCoefficients":
        """Coefficients for an isothermal exponentially decaying atmosphere.

        ``rho(z) = rho_0 * exp(-z / H)`` evaluated on w-levels (cell faces)
        and pressure levels (cell centres).  This exercises the
        density-weighted code paths the way a real MONC setup would.
        """
        if surface_density <= 0 or scale_height <= 0:
            raise ConfigurationError(
                "surface_density and scale_height must be positive"
            )
        z_w = np.arange(grid.nz + 1) * grid.dz
        z_n = (np.arange(grid.nz + 1) + 0.5) * grid.dz
        rho_w = surface_density * np.exp(-z_w / scale_height)
        rho_n = surface_density * np.exp(-z_n / scale_height)
        return cls.from_density(grid, rho_w=rho_w, rho_n=rho_n)

    @classmethod
    def stretched(cls, grid: Grid, dz_levels: np.ndarray, *,
                  rho_w: np.ndarray | None = None,
                  rho_n: np.ndarray | None = None) -> "AdvectionCoefficients":
        """Coefficients for a vertically stretched grid.

        MONC supports stretched vertical grids (fine levels near the
        surface); only the coefficients change — the kernel itself is
        spacing-agnostic.  ``dz_levels[k]`` is the thickness of cell ``k``
        (length ``nz``); the inter-centre spacing ``dzn`` is derived as
        the mean of adjacent thicknesses.  Density profiles default to a
        constant atmosphere.
        """
        dz_levels = np.asarray(dz_levels, dtype=np.float64)
        if dz_levels.shape != (grid.nz,):
            raise ConfigurationError(
                f"dz_levels must have length nz={grid.nz}, got "
                f"{dz_levels.shape}"
            )
        if np.any(dz_levels <= 0):
            raise ConfigurationError("dz_levels must be positive")
        ones = np.ones(grid.nz + 1)
        # Centre-to-centre spacing above cell k (pad the top level).
        dzn = np.empty(grid.nz + 1)
        dzn[1:grid.nz] = 0.5 * (dz_levels[:-1] + dz_levels[1:])
        dzn[0] = dz_levels[0]
        dzn[grid.nz] = dz_levels[-1]
        return cls.from_density(
            grid,
            rho_w=ones if rho_w is None else rho_w,
            rho_n=ones if rho_n is None else rho_n,
            rdz=1.0 / dz_levels,
            rdzn=1.0 / dzn,
        )

    @classmethod
    def from_density(cls, grid: Grid, *, rho_w: np.ndarray,
                     rho_n: np.ndarray,
                     rdz: np.ndarray | float | None = None,
                     rdzn: np.ndarray | float | None = None,
                     ) -> "AdvectionCoefficients":
        """Build coefficients from density profiles on w and pressure levels.

        Parameters
        ----------
        rho_w:
            Density on w-levels (faces), length ``nz + 1``; ``rho_w[k]`` is
            the face above cell ``k``'s centre, ``rho_w[k-1]`` below.
        rho_n:
            Density on pressure levels (centres), length ``nz + 1`` so the
            W coefficients can reach one level above the top source level.
        rdz, rdzn:
            Reciprocal level thickness / inter-centre spacing.  Scalars
            (uniform grid, the default ``1/dz``) or per-level arrays of
            length ``nz`` and ``nz + 1`` respectively for stretched grids.
        """
        rho_w = np.asarray(rho_w, dtype=np.float64)
        rho_n = np.asarray(rho_n, dtype=np.float64)
        if rho_w.shape != (grid.nz + 1,) or rho_n.shape != (grid.nz + 1,):
            raise ConfigurationError(
                f"density profiles must have length nz+1={grid.nz + 1}, got "
                f"{rho_w.shape} and {rho_n.shape}"
            )
        if np.any(rho_w <= 0) or np.any(rho_n <= 0):
            raise ConfigurationError("density profiles must be positive")

        if rdz is None:
            rdz = 1.0 / grid.dz
        if rdzn is None:
            rdzn = 1.0 / grid.dz
        rdz = np.broadcast_to(np.asarray(rdz, dtype=np.float64),
                              (grid.nz,))
        rdzn = np.broadcast_to(np.asarray(rdzn, dtype=np.float64),
                               (grid.nz + 1,))
        if np.any(rdz <= 0) or np.any(rdzn <= 0):
            raise ConfigurationError("rdz/rdzn must be positive")

        k = np.arange(grid.nz)
        tzc1 = np.zeros(grid.nz)
        tzc2 = np.zeros(grid.nz)
        tzd1 = np.zeros(grid.nz)
        tzd2 = np.zeros(grid.nz)

        inner = k >= 1  # bottom level has no source
        tzc1[inner] = (0.25 * rdz[k[inner]]
                       * rho_w[k[inner] - 1] / rho_n[k[inner]])
        tzc2[inner] = (0.25 * rdz[k[inner]]
                       * rho_w[k[inner]] / rho_n[k[inner]])

        w_inner = (k >= 1) & (k <= grid.nz - 2)  # W sources strictly interior
        tzd1[w_inner] = (0.25 * rdzn[k[w_inner] + 1]
                         * rho_n[k[w_inner]] / rho_w[k[w_inner]])
        tzd2[w_inner] = (0.25 * rdzn[k[w_inner] + 1]
                         * rho_n[k[w_inner] + 1] / rho_w[k[w_inner]])

        return cls(
            tcx=0.25 / grid.dx,
            tcy=0.25 / grid.dy,
            tzc1=tzc1,
            tzc2=tzc2,
            tzd1=tzd1,
            tzd2=tzd2,
        )

    # -- utilities -------------------------------------------------------------

    def as_dict(self) -> dict[str, np.ndarray | float]:
        """Plain-dict view (used when streaming coefficients to the kernel)."""
        return {
            "tcx": self.tcx,
            "tcy": self.tcy,
            "tzc1": self.tzc1.copy(),
            "tzc2": self.tzc2.copy(),
            "tzd1": self.tzd1.copy(),
            "tzd2": self.tzd2.copy(),
        }
