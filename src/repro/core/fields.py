"""Field containers for the advection kernel.

A :class:`FieldSet` holds the three prognostic wind components ``u``, ``v``
and ``w`` on a common grid (each with x/y halos); a :class:`SourceSet` holds
the corresponding advection source terms ``su``, ``sv``, ``sw`` on the
interior only, mirroring how the FPGA kernel streams inputs in and results
out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grid import Grid
from repro.errors import GridError

__all__ = ["FieldSet", "SourceSet"]

#: Names of the prognostic fields, in kernel streaming order.
FIELD_NAMES: tuple[str, str, str] = ("u", "v", "w")
#: Names of the source-term fields, in kernel streaming order.
SOURCE_NAMES: tuple[str, str, str] = ("su", "sv", "sw")


@dataclass
class FieldSet:
    """The three wind components on one grid, halos included."""

    grid: Grid
    u: np.ndarray
    v: np.ndarray
    w: np.ndarray

    def __post_init__(self) -> None:
        for name in FIELD_NAMES:
            arr = getattr(self, name)
            if arr.shape != self.grid.halo_shape:
                raise GridError(
                    f"field {name!r} has shape {arr.shape}, expected halo "
                    f"shape {self.grid.halo_shape}"
                )
            if arr.dtype != np.float64:
                raise GridError(
                    f"field {name!r} must be float64, got {arr.dtype}"
                )

    # -- construction -----------------------------------------------------

    @classmethod
    def zeros(cls, grid: Grid) -> "FieldSet":
        """All-zero fields on ``grid``."""
        return cls(grid, grid.allocate(), grid.allocate(), grid.allocate())

    @classmethod
    def from_interior(cls, grid: Grid, u: np.ndarray, v: np.ndarray,
                      w: np.ndarray, *, periodic: bool = True) -> "FieldSet":
        """Build a field set from interior-only arrays.

        Halos are filled periodically when ``periodic`` is set, otherwise
        left at zero (open boundaries).
        """
        fields = cls.zeros(grid)
        for name, interior in zip(FIELD_NAMES, (u, v, w)):
            interior = np.asarray(interior, dtype=np.float64)
            if interior.shape != grid.interior_shape:
                raise GridError(
                    f"interior for {name!r} has shape {interior.shape}, "
                    f"expected {grid.interior_shape}"
                )
            grid.interior(getattr(fields, name))[...] = interior
        if periodic:
            fields.fill_halos()
        return fields

    # -- views and halo management ------------------------------------------

    def interior(self, name: str) -> np.ndarray:
        """Interior view of one field by name."""
        if name not in FIELD_NAMES:
            raise KeyError(f"unknown field {name!r}; expected one of {FIELD_NAMES}")
        return self.grid.interior(getattr(self, name))

    def fill_halos(self) -> None:
        """Fill all x/y halos periodically, in place."""
        for name in FIELD_NAMES:
            self.grid.fill_periodic_halo(getattr(self, name))

    def copy(self) -> "FieldSet":
        return FieldSet(self.grid, self.u.copy(), self.v.copy(), self.w.copy())

    # -- statistics used by tests/examples ------------------------------------

    def momentum(self) -> tuple[float, float, float]:
        """Interior momentum sums (u, v, w); the PW scheme conserves these
        under periodic boundaries."""
        return (
            float(self.interior("u").sum()),
            float(self.interior("v").sum()),
            float(self.interior("w").sum()),
        )

    def max_speed(self) -> float:
        """Maximum wind speed magnitude over the interior."""
        speed2 = (
            self.interior("u") ** 2
            + self.interior("v") ** 2
            + self.interior("w") ** 2
        )
        return float(np.sqrt(speed2.max(initial=0.0)))

    @property
    def nbytes_interior(self) -> int:
        """Bytes of the three interior fields (the PCIe input payload)."""
        return 3 * self.grid.field_bytes()


@dataclass
class SourceSet:
    """Advection source terms on the grid interior."""

    grid: Grid
    su: np.ndarray
    sv: np.ndarray
    sw: np.ndarray

    def __post_init__(self) -> None:
        for name in SOURCE_NAMES:
            arr = getattr(self, name)
            if arr.shape != self.grid.interior_shape:
                raise GridError(
                    f"source {name!r} has shape {arr.shape}, expected "
                    f"interior shape {self.grid.interior_shape}"
                )

    @classmethod
    def zeros(cls, grid: Grid) -> "SourceSet":
        shape = grid.interior_shape
        return cls(grid, np.zeros(shape), np.zeros(shape), np.zeros(shape))

    def as_tuple(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (self.su, self.sv, self.sw)

    def copy(self) -> "SourceSet":
        return SourceSet(self.grid, self.su.copy(), self.sv.copy(), self.sw.copy())

    def allclose(self, other: "SourceSet", *, rtol: float = 1e-12,
                 atol: float = 1e-14) -> bool:
        """Element-wise comparison against another source set."""
        return all(
            np.allclose(getattr(self, n), getattr(other, n), rtol=rtol, atol=atol)
            for n in SOURCE_NAMES
        )

    def max_abs_difference(self, other: "SourceSet") -> float:
        """Largest absolute element-wise difference across all three terms."""
        return max(
            float(np.abs(getattr(self, n) - getattr(other, n)).max(initial=0.0))
            for n in SOURCE_NAMES
        )

    @property
    def nbytes(self) -> int:
        """Bytes of the three source fields (the PCIe output payload)."""
        return 3 * self.grid.field_bytes()
