"""Forward-in-time integration using PW advection source terms.

MONC calls the advection scheme once per timestep to produce source terms
that the dynamical core combines with other tendencies.  For the examples in
this repository a plain forward-Euler update of the wind by its own
advective tendency is enough to demonstrate the kernel inside a time loop
(and to watch PW's conservation behaviour over many steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet
from repro.core.reference import advect_reference
from repro.errors import ConfigurationError

__all__ = ["AdvectionIntegrator", "StepRecord"]

#: Signature of a source-term provider: fields -> sources.
AdvectFn = Callable[[FieldSet], SourceSet]


@dataclass
class StepRecord:
    """Diagnostics captured after one integration step."""

    step: int
    time: float
    momentum: tuple[float, float, float]
    max_speed: float
    max_source: float


@dataclass
class AdvectionIntegrator:
    """Forward-Euler integrator driven by a pluggable advection backend.

    Parameters
    ----------
    fields:
        State to advance; mutated in place by :meth:`step`.
    dt:
        Timestep in seconds.  A CFL guard rejects steps where
        ``max_speed * dt`` exceeds half the smallest grid spacing.
    coeffs:
        Advection coefficients (default: uniform atmosphere).
    advect:
        Source-term provider; defaults to the vectorised NumPy reference.
        Swapping in e.g. a simulated FPGA kernel's functional execution lets
        examples integrate "on the device model".
    enforce_cfl:
        Disable only for deliberately unstable demonstrations.
    """

    fields: FieldSet
    dt: float
    coeffs: AdvectionCoefficients | None = None
    advect: AdvectFn | None = None
    enforce_cfl: bool = True
    history: list[StepRecord] = field(default_factory=list)
    _steps: int = 0
    _time: float = 0.0

    def __post_init__(self) -> None:
        if not self.dt > 0:
            raise ConfigurationError(f"dt must be positive, got {self.dt}")
        if self.coeffs is None:
            self.coeffs = AdvectionCoefficients.uniform(self.fields.grid)
        if self.advect is None:
            coeffs = self.coeffs
            self.advect = lambda f: advect_reference(f, coeffs)

    @property
    def time(self) -> float:
        """Simulated time in seconds."""
        return self._time

    @property
    def steps_taken(self) -> int:
        return self._steps

    def cfl_number(self) -> float:
        """Current advective CFL number (max speed * dt / min spacing)."""
        grid = self.fields.grid
        min_spacing = min(grid.dx, grid.dy, grid.dz)
        return self.fields.max_speed() * self.dt / min_spacing

    def step(self) -> StepRecord:
        """Advance the state by one timestep and record diagnostics."""
        if self.enforce_cfl and self.cfl_number() > 0.5:
            raise ConfigurationError(
                f"CFL number {self.cfl_number():.3f} exceeds 0.5; reduce dt "
                f"(currently {self.dt})"
            )
        sources = self.advect(self.fields)
        grid = self.fields.grid
        grid.interior(self.fields.u)[...] += self.dt * sources.su
        grid.interior(self.fields.v)[...] += self.dt * sources.sv
        grid.interior(self.fields.w)[...] += self.dt * sources.sw
        self.fields.fill_halos()

        self._steps += 1
        self._time += self.dt
        record = StepRecord(
            step=self._steps,
            time=self._time,
            momentum=self.fields.momentum(),
            max_speed=self.fields.max_speed(),
            max_source=float(
                max(np.abs(s).max(initial=0.0) for s in sources.as_tuple())
            ),
        )
        self.history.append(record)
        return record

    def run(self, steps: int) -> list[StepRecord]:
        """Advance ``steps`` timesteps, returning their records."""
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        return [self.step() for _ in range(steps)]
