"""Field I/O: checkpoints and MONC-compatible array layouts.

MONC is Fortran: its arrays are ``(k, j, i)`` column-major, while this
library stores ``(i, j, k)`` C-order (so ``k`` is contiguous in both —
the streaming order of the FPGA kernel).  The converters here move
between the two layouts losslessly, and the checkpoint functions persist
full :class:`~repro.core.fields.FieldSet` states as ``.npz`` archives
with geometry metadata for exact round trips.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.fields import FIELD_NAMES, FieldSet
from repro.core.grid import Grid
from repro.errors import ConfigurationError

__all__ = [
    "save_fields",
    "load_fields",
    "to_monc_layout",
    "from_monc_layout",
]

#: Format marker stored in checkpoints; bump on incompatible change.
_FORMAT_VERSION = 1


def to_monc_layout(interior: np.ndarray) -> np.ndarray:
    """Convert an ``(i, j, k)`` C-order interior to MONC's ``(k, j, i)``.

    The result is Fortran-contiguous, as a Fortran ``u(k, j, i)`` array
    would be, and shares no memory with the input.
    """
    if interior.ndim != 3:
        raise ConfigurationError(
            f"expected a 3-D interior array, got shape {interior.shape}"
        )
    return np.asfortranarray(interior.transpose(2, 1, 0))


def from_monc_layout(monc: np.ndarray) -> np.ndarray:
    """Convert a MONC ``(k, j, i)`` array to this library's ``(i, j, k)``."""
    if monc.ndim != 3:
        raise ConfigurationError(
            f"expected a 3-D MONC array, got shape {monc.shape}"
        )
    return np.ascontiguousarray(monc.transpose(2, 1, 0))


def save_fields(path: str | pathlib.Path, fields: FieldSet) -> None:
    """Persist a field set (interiors + geometry) to a ``.npz`` archive."""
    grid = fields.grid
    payload = {
        "format_version": np.int64(_FORMAT_VERSION),
        "dims": np.array([grid.nx, grid.ny, grid.nz], dtype=np.int64),
        "spacings": np.array([grid.dx, grid.dy, grid.dz]),
    }
    for name in FIELD_NAMES:
        payload[name] = fields.interior(name)
    np.savez_compressed(pathlib.Path(path), **payload)


def load_fields(path: str | pathlib.Path, *,
                periodic: bool = True) -> FieldSet:
    """Load a field set saved by :func:`save_fields`.

    Halos are refilled (periodically by default), so a round trip through
    disk reproduces the original interior bit for bit and leaves the
    halos consistent.
    """
    with np.load(pathlib.Path(path)) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"checkpoint format {version} not supported "
                f"(expected {_FORMAT_VERSION})"
            )
        nx, ny, nz = (int(v) for v in archive["dims"])
        dx, dy, dz = (float(v) for v in archive["spacings"])
        grid = Grid(nx=nx, ny=ny, nz=nz, dx=dx, dy=dy, dz=dz)
        return FieldSet.from_interior(
            grid, archive["u"], archive["v"], archive["w"],
            periodic=periodic,
        )
