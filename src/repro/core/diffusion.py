"""Second-order diffusion of the wind fields (MONC's other big stencil).

Alongside advection, MONC's dynamical core runs diffusion/viscosity terms
each timestep — in the FPGA line of work this was the second kernel
ported [6].  The scheme here is the standard centred 7-point Laplacian
with constant eddy viscosity and zero-flux vertical boundaries:

    s = nu * ( (u[i-1] + u[i+1] - 2u) / dx^2
             + (u[j-1] + u[j+1] - 2u) / dy^2
             + (u[k-1] + u[k+1] - 2u) / dz^2 )     [one-sided at k edges]

As with advection there are two implementations — a scalar specification
and a vectorised reference — kept bit-identical, and the kernel-side
evaluation runs on :class:`~repro.shiftbuffer.general.GeneralShiftBuffer`
windows, demonstrating the paper's "general purpose" buffer driving a
different kernel (see :mod:`repro.kernel.diffusion`).

FLOP accounting: 15 operations per field per cell (4 per dimension plus
two accumulates and the viscosity multiply), 45 for all three fields —
the dataflow-machine peak metric applies just as it does for advection.
"""

from __future__ import annotations

import numpy as np

from repro.core.fields import FieldSet, SourceSet
from repro.core.grid import Grid
from repro.errors import ConfigurationError

__all__ = [
    "diffuse_golden",
    "diffuse_reference",
    "diffuse_cell",
    "DIFFUSION_OPS_PER_FIELD",
    "DIFFUSION_OPS_PER_CELL",
]

#: Operations per field per cell: 3 dims x (add + 2*mul/sub) + 2
#: accumulates + 1 viscosity multiply.
DIFFUSION_OPS_PER_FIELD: int = 15
DIFFUSION_OPS_PER_CELL: int = 3 * DIFFUSION_OPS_PER_FIELD


def _check_viscosity(nu: float) -> None:
    if not nu >= 0.0:
        raise ConfigurationError(f"viscosity must be >= 0, got {nu}")


def diffuse_cell(field: np.ndarray, i: int, j: int, k: int, grid: Grid,
                 nu: float) -> float:
    """Diffusion source of one field at halo coordinates ``(i, j, k)``."""
    rdx2 = 1.0 / (grid.dx * grid.dx)
    rdy2 = 1.0 / (grid.dy * grid.dy)
    rdz2 = 1.0 / (grid.dz * grid.dz)
    c = field[i, j, k]
    lap = (field[i - 1, j, k] + field[i + 1, j, k] - 2.0 * c) * rdx2
    lap += (field[i, j - 1, k] + field[i, j + 1, k] - 2.0 * c) * rdy2
    if k == 0:
        lap += (field[i, j, k + 1] - c) * rdz2
    elif k == grid.nz - 1:
        lap += (field[i, j, k - 1] - c) * rdz2
    else:
        lap += (field[i, j, k - 1] + field[i, j, k + 1] - 2.0 * c) * rdz2
    return nu * lap


def diffuse_golden(fields: FieldSet, nu: float = 1.0) -> SourceSet:
    """Scalar specification: diffusion sources for all three fields."""
    _check_viscosity(nu)
    grid = fields.grid
    out = SourceSet.zeros(grid)
    for name, target in (("u", out.su), ("v", out.sv), ("w", out.sw)):
        field = getattr(fields, name)
        for i in range(1, grid.nx + 1):
            for j in range(1, grid.ny + 1):
                for k in range(grid.nz):
                    target[i - 1, j - 1, k] = diffuse_cell(
                        field, i, j, k, grid, nu)
    return out


def diffuse_reference(fields: FieldSet, nu: float = 1.0,
                      out: SourceSet | None = None) -> SourceSet:
    """Vectorised diffusion, bit-identical to :func:`diffuse_golden`."""
    _check_viscosity(nu)
    grid = fields.grid
    if out is None:
        out = SourceSet.zeros(grid)
    elif out.grid.interior_shape != grid.interior_shape:
        raise ConfigurationError("output SourceSet has a different grid")

    rdx2 = 1.0 / (grid.dx * grid.dx)
    rdy2 = 1.0 / (grid.dy * grid.dy)
    rdz2 = 1.0 / (grid.dz * grid.dz)
    nz = grid.nz

    for name, target in (("u", out.su), ("v", out.sv), ("w", out.sw)):
        field = getattr(fields, name)
        centre = field[1:-1, 1:-1, :]
        lap = (field[:-2, 1:-1, :] + field[2:, 1:-1, :]
               - 2.0 * centre) * rdx2
        lap = lap + (field[1:-1, :-2, :] + field[1:-1, 2:, :]
                     - 2.0 * centre) * rdy2
        vert = np.empty_like(centre)
        vert[:, :, 1:nz - 1] = (centre[:, :, 0:nz - 2]
                                + centre[:, :, 2:nz]
                                - 2.0 * centre[:, :, 1:nz - 1]) * rdz2
        vert[:, :, 0] = (centre[:, :, 1] - centre[:, :, 0]) * rdz2
        vert[:, :, nz - 1] = (centre[:, :, nz - 2]
                              - centre[:, :, nz - 1]) * rdz2
        target[...] = nu * (lap + vert)
    return out
