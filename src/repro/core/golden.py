"""Scalar loop-nest PW advection, mirroring the MONC Fortran.

This is the *specification* implementation: a direct transliteration of the
triple loop of Listing 1 (reconstructed — see DESIGN.md section 5), one grid
cell at a time, no vectorisation.  It is deliberately slow and simple; the
vectorised :mod:`repro.core.reference` and every simulator path are tested
bit-for-bit against it on small grids.

Index convention: arrays are ``field[i, j, k]`` with a one-cell halo in
``i``/``j`` (so the first interior cell is ``[1, 1, 0]``), and 0-based ``k``
with no vertical halo.  The Fortran ``k = 2 .. z_size`` loop becomes
``k = 1 .. nz-1`` here.
"""

from __future__ import annotations

import numpy as np

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet

__all__ = ["advect_golden", "advect_cell"]


def advect_cell(u: np.ndarray, v: np.ndarray, w: np.ndarray,
                coeffs: AdvectionCoefficients, i: int, j: int, k: int,
                nz: int) -> tuple[float, float, float]:
    """Source terms for a single cell at halo coordinates ``(i, j, k)``.

    Returns ``(su, sv, sw)`` for that cell.  ``k`` is the 0-based vertical
    level; callers must pass interior horizontal coordinates
    (``1 <= i <= nx``, ``1 <= j <= ny``).
    """
    tcx, tcy = coeffs.tcx, coeffs.tcy
    tzc1, tzc2 = coeffs.tzc1, coeffs.tzc2
    tzd1, tzd2 = coeffs.tzd1, coeffs.tzd2

    su = 0.0
    sv = 0.0
    sw = 0.0

    if k >= 1:
        # --- U source ----------------------------------------------------
        su = tcx * (
            u[i - 1, j, k] * (u[i, j, k] + u[i - 1, j, k])
            - u[i + 1, j, k] * (u[i, j, k] + u[i + 1, j, k])
        )
        su += tcy * (
            u[i, j - 1, k] * (v[i, j - 1, k] + v[i + 1, j - 1, k])
            - u[i, j + 1, k] * (v[i, j, k] + v[i + 1, j, k])
        )
        if k < nz - 1:
            su += (
                tzc1[k] * u[i, j, k - 1] * (w[i, j, k - 1] + w[i + 1, j, k - 1])
                - tzc2[k] * u[i, j, k + 1] * (w[i, j, k] + w[i + 1, j, k])
            )
        else:
            su += tzc1[k] * u[i, j, k - 1] * (w[i, j, k - 1] + w[i + 1, j, k - 1])

        # --- V source ----------------------------------------------------
        sv = tcy * (
            v[i, j - 1, k] * (v[i, j, k] + v[i, j - 1, k])
            - v[i, j + 1, k] * (v[i, j, k] + v[i, j + 1, k])
        )
        sv += tcx * (
            v[i - 1, j, k] * (u[i - 1, j, k] + u[i - 1, j + 1, k])
            - v[i + 1, j, k] * (u[i, j, k] + u[i, j + 1, k])
        )
        if k < nz - 1:
            sv += (
                tzc1[k] * v[i, j, k - 1] * (w[i, j, k - 1] + w[i, j + 1, k - 1])
                - tzc2[k] * v[i, j, k + 1] * (w[i, j, k] + w[i, j + 1, k])
            )
        else:
            sv += tzc1[k] * v[i, j, k - 1] * (w[i, j, k - 1] + w[i, j + 1, k - 1])

        # --- W source (strictly interior in the column) -------------------
        if k < nz - 1:
            sw = tcx * (
                w[i - 1, j, k] * (u[i - 1, j, k] + u[i - 1, j, k + 1])
                - w[i + 1, j, k] * (u[i, j, k] + u[i, j, k + 1])
            )
            sw += tcy * (
                w[i, j - 1, k] * (v[i, j - 1, k] + v[i, j - 1, k + 1])
                - w[i, j + 1, k] * (v[i, j, k] + v[i, j, k + 1])
            )
            sw += (
                tzd1[k] * w[i, j, k - 1] * (w[i, j, k] + w[i, j, k - 1])
                - tzd2[k] * w[i, j, k + 1] * (w[i, j, k] + w[i, j, k + 1])
            )

    return su, sv, sw


def advect_golden(fields: FieldSet,
                  coeffs: AdvectionCoefficients | None = None) -> SourceSet:
    """Compute PW advection source terms with the scalar specification code.

    Parameters
    ----------
    fields:
        Wind components with valid halos (call ``fields.fill_halos()`` first
        for periodic boundaries).
    coeffs:
        Advection coefficients; defaults to the uniform atmosphere for the
        field's grid.

    Returns
    -------
    SourceSet
        Interior-only ``su``, ``sv``, ``sw`` arrays.  The bottom level
        (``k = 0``) is zero everywhere; the top level's ``sw`` is zero.
    """
    grid = fields.grid
    if coeffs is None:
        coeffs = AdvectionCoefficients.uniform(grid)
    if coeffs.nz != grid.nz:
        raise ValueError(
            f"coefficients are for nz={coeffs.nz}, grid has nz={grid.nz}"
        )

    u, v, w = fields.u, fields.v, fields.w
    sources = SourceSet.zeros(grid)

    for i in range(1, grid.nx + 1):
        for j in range(1, grid.ny + 1):
            for k in range(1, grid.nz):
                su, sv, sw = advect_cell(u, v, w, coeffs, i, j, k, grid.nz)
                sources.su[i - 1, j - 1, k] = su
                sources.sv[i - 1, j - 1, k] = sv
                sources.sw[i - 1, j - 1, k] = sw

    return sources
