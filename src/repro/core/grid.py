"""Grid geometry for the MONC-style advection domain.

The model grid follows the paper's coordinate convention (Fig. 4): ``z`` is
the vertical, ``y`` the horizontal, and ``x`` the remaining ("diagonal" in
the figure) dimension.  Arrays are stored C-ordered with shape
``(x, y, z)`` so that the vertical ``z`` index is contiguous in memory —
the same order in which the FPGA kernel streams values (k fastest, then j,
then i, exactly like the Fortran loop nest in Listing 1).

The PW scheme is a depth-1 stencil in every dimension, so fields carry a
one-cell halo in ``x`` and ``y``.  No halo is needed in ``z``: the bottom
level carries no source term and the top level uses a one-sided vertical
update, matching MONC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GridError

#: Stencil radius of the PW scheme in every dimension.
HALO_DEPTH: int = 1


@dataclass(frozen=True)
class Grid:
    """Geometry of a rectangular advection domain.

    Parameters
    ----------
    nx, ny, nz:
        Number of *computational* (non-halo) grid cells in each dimension.
        ``nz`` is the column height; the paper and MONC default to 64.
    dx, dy:
        Horizontal grid spacings in metres.
    dz:
        Vertical spacing in metres (uniform; MONC supports stretched grids
        but the kernel is insensitive to the actual spacing values).
    """

    nx: int
    ny: int
    nz: int
    dx: float = 100.0
    dy: float = 100.0
    dz: float = 40.0

    def __post_init__(self) -> None:
        for name in ("nx", "ny", "nz"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
                raise GridError(f"{name} must be an integer, got {value!r}")
            if value < 1:
                raise GridError(f"{name} must be >= 1, got {value}")
        if self.nz < 2:
            raise GridError(
                f"column height nz must be >= 2 for a vertical stencil, got {self.nz}"
            )
        for name in ("dx", "dy", "dz"):
            value = getattr(self, name)
            if not value > 0.0 or not np.isfinite(value):
                raise GridError(f"{name} must be positive and finite, got {value}")

    # -- sizes -------------------------------------------------------------

    @property
    def num_cells(self) -> int:
        """Number of computational cells (excluding halos)."""
        return self.nx * self.ny * self.nz

    @property
    def halo_shape(self) -> tuple[int, int, int]:
        """Array shape including the one-cell x/y halo on each side."""
        return (self.nx + 2 * HALO_DEPTH, self.ny + 2 * HALO_DEPTH, self.nz)

    @property
    def interior_shape(self) -> tuple[int, int, int]:
        """Array shape of the computational interior."""
        return (self.nx, self.ny, self.nz)

    @property
    def num_columns(self) -> int:
        """Number of vertical columns in the interior."""
        return self.nx * self.ny

    def field_bytes(self, itemsize: int = 8) -> int:
        """Bytes of one interior field at the given item size."""
        return self.num_cells * itemsize

    # -- allocation helpers --------------------------------------------------

    def allocate(self, *, halo: bool = True, dtype=np.float64) -> np.ndarray:
        """Allocate a zero-filled field array, with or without halos."""
        shape = self.halo_shape if halo else self.interior_shape
        return np.zeros(shape, dtype=dtype)

    def interior(self, array: np.ndarray) -> np.ndarray:
        """View of the computational interior of a halo-carrying array."""
        if array.shape != self.halo_shape:
            raise GridError(
                f"expected halo shape {self.halo_shape}, got {array.shape}"
            )
        h = HALO_DEPTH
        return array[h:-h, h:-h, :]

    def with_size(self, nx: int | None = None, ny: int | None = None,
                  nz: int | None = None) -> "Grid":
        """Copy of this grid with some dimensions replaced."""
        return Grid(
            nx=self.nx if nx is None else nx,
            ny=self.ny if ny is None else ny,
            nz=self.nz if nz is None else nz,
            dx=self.dx, dy=self.dy, dz=self.dz,
        )

    # -- halo handling -------------------------------------------------------

    def fill_periodic_halo(self, array: np.ndarray) -> None:
        """Fill the x/y halos of ``array`` periodically, in place.

        MONC runs a horizontally decomposed domain with halo swaps between
        ranks; for a single-domain reproduction periodic wrap-around is the
        natural stand-in and is what the tests and examples use.
        """
        if array.shape != self.halo_shape:
            raise GridError(
                f"expected halo shape {self.halo_shape}, got {array.shape}"
            )
        h = HALO_DEPTH
        # x halos (axis 0): copy opposite interior edges.
        array[:h, :, :] = array[-2 * h:-h, :, :]
        array[-h:, :, :] = array[h:2 * h, :, :]
        # y halos (axis 1), after x so corners are consistent.
        array[:, :h, :] = array[:, -2 * h:-h, :]
        array[:, -h:, :] = array[:, h:2 * h, :]

    def check_halo_consistent(self, array: np.ndarray, *, atol: float = 0.0) -> bool:
        """Return True if the x/y halos match a periodic wrap of the interior."""
        expected = array.copy()
        self.fill_periodic_halo(expected)
        return bool(np.allclose(array, expected, atol=atol, rtol=0.0))

    # -- factories -------------------------------------------------------------

    @classmethod
    def from_cells(cls, num_cells: int, nz: int = 64, **spacings: float) -> "Grid":
        """Square-horizontal grid with approximately ``num_cells`` cells.

        This mirrors how the paper labels its problem sizes (1M, 4M, 16M...):
        a square ``n x n`` horizontal footprint with a 64-cell column.
        """
        if num_cells < nz:
            raise GridError(
                f"num_cells={num_cells} smaller than one column of {nz}"
            )
        horizontal = max(1, round((num_cells / nz) ** 0.5))
        return cls(nx=horizontal, ny=horizontal, nz=nz, **spacings)


@dataclass(frozen=True)
class GridDecomposition:
    """A 1-D decomposition of a grid along ``x`` across kernel instances.

    The multi-kernel experiments in Section IV of the paper split the domain
    between identical kernel instances; splitting along ``x`` keeps each
    piece's streaming order intact and needs a one-cell overlap per seam for
    the depth-1 stencil.
    """

    grid: Grid
    parts: int
    bounds: tuple[tuple[int, int], ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.parts < 1:
            raise GridError(f"parts must be >= 1, got {self.parts}")
        if self.parts > self.grid.nx:
            raise GridError(
                f"cannot split nx={self.grid.nx} into {self.parts} parts"
            )
        base = self.grid.nx // self.parts
        extra = self.grid.nx % self.parts
        bounds: list[tuple[int, int]] = []
        start = 0
        for p in range(self.parts):
            width = base + (1 if p < extra else 0)
            bounds.append((start, start + width))
            start += width
        object.__setattr__(self, "bounds", tuple(bounds))

    def subgrid(self, part: int) -> Grid:
        """The grid owned by one kernel instance (interior cells only)."""
        start, stop = self.bounds[part]
        return self.grid.with_size(nx=stop - start)

    def cells(self, part: int) -> int:
        start, stop = self.bounds[part]
        return (stop - start) * self.grid.ny * self.grid.nz

    @property
    def max_cells(self) -> int:
        """Cell count of the largest part (determines multi-kernel runtime)."""
        return max(self.cells(p) for p in range(self.parts))
