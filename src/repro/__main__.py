"""Entry point for ``python -m repro``."""

import os
import sys

from repro.cli import main

try:
    code = main()
    sys.stdout.flush()
except BrokenPipeError:
    # Downstream consumer (e.g. `| head`) closed the pipe: exit quietly
    # with the conventional SIGPIPE status instead of a traceback.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 141
raise SystemExit(code)
