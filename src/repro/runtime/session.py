"""End-to-end advection runs on a device model.

:class:`AdvectionSession` is the top of the performance stack: give it a
device (FPGA, GPU, or CPU model), a kernel configuration and a grid, and
it allocates buffers, builds the sequential or overlapped schedule, runs
the discrete-event simulator, and reports overall performance, power and
energy — the quantities plotted in Figs. 5-8.

It can also *functionally execute* the kernel on real data (through the
chunked functional path), which is what the examples use to integrate
time steps "on the device".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet
from repro.core.flops import grid_flops
from repro.core.grid import Grid, GridDecomposition
from repro.errors import ConfigurationError
from repro.hardware.cpu import CPUModel
from repro.hardware.device import FPGADevice
from repro.hardware.gpu import GPUModel
from repro.kernel.config import KernelConfig
from repro.kernel.functional import execute_chunked
from repro.runtime.buffer import BufferAllocator
from repro.runtime.overlap import (
    ChunkWork,
    build_overlapped_schedule,
    build_sequential_schedule,
)
from repro.runtime.simulator import ScheduleResult, simulate_schedule

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.faults.retry import RetryPolicy

__all__ = ["AdvectionSession", "RunResult"]

#: Default number of X chunks for the overlapped schedule.
DEFAULT_X_CHUNKS: int = 16


@dataclass(frozen=True)
class RunResult:
    """Performance summary of one simulated end-to-end run."""

    device: str
    grid_cells: int
    runtime_seconds: float
    kernel_seconds: float
    transfer_seconds: float
    gflops: float
    average_watts: float
    energy_joules: float
    num_kernels: int
    memory: str
    overlapped: bool
    schedule: ScheduleResult | None = None

    @property
    def gflops_per_watt(self) -> float:
        """Power efficiency, the Fig. 8 metric."""
        return self.gflops / self.average_watts


class AdvectionSession:
    """One device + configuration, ready to run grids through it."""

    def __init__(self, device: FPGADevice | GPUModel | CPUModel,
                 config: KernelConfig, *, num_kernels: int | None = None,
                 memory: str | None = None,
                 x_chunks: int = DEFAULT_X_CHUNKS) -> None:
        if x_chunks < 1:
            raise ConfigurationError(f"x_chunks must be >= 1, got {x_chunks}")
        self.device = device
        self.config = config
        self.x_chunks = x_chunks
        self._memory_override = memory
        if isinstance(device, FPGADevice):
            self.num_kernels = (device.max_kernels(config)
                                if num_kernels is None else num_kernels)
            if self.num_kernels < 1:
                raise ConfigurationError(
                    f"{device.name}: no kernels fit this configuration"
                )
        else:
            self.num_kernels = 1

    # -- memory selection ---------------------------------------------------

    def memory_for(self, grid: Grid) -> str:
        """Memory space the working set lands in (may fall back to DDR)."""
        data_bytes = self.config.bytes_per_cell_cycle * grid.num_cells
        if isinstance(self.device, FPGADevice):
            if self._memory_override is not None:
                return self._memory_override
            return self.device.select_memory(data_bytes)
        if isinstance(self.device, GPUModel):
            self.device.require_fits(grid, word_bytes=self.config.word_bytes)
            return "hbm2"
        return "dram"

    def allocate_buffers(self, grid: Grid) -> BufferAllocator:
        """Allocate the six working buffers; raises CapacityError if too big."""
        if isinstance(self.device, FPGADevice):
            memory = self.device.memory_model(self.memory_for(grid))
        elif isinstance(self.device, GPUModel):
            self.device.require_fits(grid, word_bytes=self.config.word_bytes)
            from repro.hardware.memory import MemorySpec, StreamingMemoryModel

            memory = StreamingMemoryModel(MemorySpec(
                name="hbm2",
                capacity_bytes=self.device.memory_capacity_bytes,
                per_kernel_bandwidth=1.0, aggregate_bandwidth=1.0,
            ))
        else:
            raise ConfigurationError("CPU sessions do not use device buffers")
        allocator = BufferAllocator(memory)
        per_field = self.config.word_bytes * grid.num_cells
        for name in ("u", "v", "w", "su", "sv", "sw"):
            allocator.allocate(name, per_field)
        return allocator

    # -- timing -----------------------------------------------------------------

    def _x_chunk_grids(self, grid: Grid) -> list[Grid]:
        parts = max(1, min(self.x_chunks, grid.nx // 2))
        decomp = GridDecomposition(grid, parts)
        return [decomp.subgrid(p) for p in range(decomp.parts)]

    def _chunk_kernel_seconds(self, chunk_grid: Grid, memory: str) -> float:
        if isinstance(self.device, FPGADevice):
            return self.device.invocation(
                self.config.for_grid(chunk_grid), chunk_grid,
                num_kernels=self.num_kernels, memory=memory,
            ).seconds
        if isinstance(self.device, GPUModel):
            return self.device.kernel_time(chunk_grid)
        raise ConfigurationError("CPU has no kernel-invocation path")

    def chunk_work(self, grid: Grid, *, out_scale: float = 1.0) -> list[ChunkWork]:
        """The overlapped schedule's per-chunk work items for ``grid``.

        ``out_scale`` multiplies each chunk's device-to-host bytes; the
        serving layer uses it to price exact-mode runs, whose result
        readback carries cycle-level telemetry alongside the sources
        (data movement is the dominant cost, so the factor is applied to
        the D2H payload rather than as an opaque latency).
        """
        if out_scale <= 0:
            raise ConfigurationError(
                f"out_scale must be positive, got {out_scale}"
            )
        memory = self.memory_for(grid)
        chunks = []
        for index, cg in enumerate(self._x_chunk_grids(grid)):
            # Each X chunk re-reads a one-cell halo plane on each side.
            in_cells = (cg.nx + 2) * cg.ny * cg.nz
            chunks.append(ChunkWork(
                index=index,
                in_bytes=self.config.in_bytes_per_cell * in_cells,
                out_bytes=(self.config.out_bytes_per_cell * cg.num_cells
                           * out_scale),
                kernel_seconds=self._chunk_kernel_seconds(cg, memory),
            ))
        return chunks

    def run(self, grid: Grid, *, overlapped: bool,
            fault_plan: "FaultPlan | None" = None,
            retry: "RetryPolicy | None" = None,
            watchdog_seconds: float | None = None) -> RunResult:
        """Simulate one end-to-end advection invocation over ``grid``.

        ``fault_plan``/``retry``/``watchdog_seconds`` are threaded into
        the schedule simulator: injected transfer faults occupy the PCIe
        engines for their retries, and the whole schedule is bounded by
        the watchdog (see :func:`repro.runtime.simulator.simulate_schedule`).
        """
        flops = grid_flops(grid)

        # ---- CPU: host-resident data, no transfers ------------------------
        if isinstance(self.device, CPUModel):
            seconds = self.device.kernel_time(grid)
            watts = self.device.run_power_watts()
            return RunResult(
                device=self.device.name,
                grid_cells=grid.num_cells,
                runtime_seconds=seconds,
                kernel_seconds=seconds,
                transfer_seconds=0.0,
                gflops=flops / seconds / 1e9,
                average_watts=watts,
                energy_joules=watts * seconds,
                num_kernels=self.device.cores,
                memory="dram",
                overlapped=overlapped,
            )

        memory = self.memory_for(grid)
        self.allocate_buffers(grid)  # capacity check (raises if too large)
        pcie = self.device.pcie

        if overlapped:
            queue = build_overlapped_schedule(self.chunk_work(grid), pcie)
        else:
            in_bytes = (self.config.in_bytes_per_cell
                        * (grid.nx + 2) * grid.ny * grid.nz)
            out_bytes = self.config.out_bytes_per_cell * grid.num_cells
            queue = build_sequential_schedule(
                in_bytes, out_bytes,
                self._chunk_kernel_seconds(grid, memory), pcie,
            )

        schedule = simulate_schedule(queue, fault_plan=fault_plan,
                                     retry=retry,
                                     watchdog_seconds=watchdog_seconds)
        kernel_busy = sum(
            seconds for resource, seconds in schedule.busy.items()
            if resource.startswith("kernel")
        )
        transfer_busy = sum(
            seconds for resource, seconds in schedule.busy.items()
            if resource.startswith("pcie")
        )
        # Per-run setup cost (CUDA stream / OpenACC data region creation on
        # the GPU; zero for the FPGAs whose buffers are registered once).
        runtime = schedule.makespan + getattr(self.device, "setup_seconds", 0.0)
        # Board telemetry reports *active* power: accelerator clocks and
        # memory systems do not drop to idle between back-to-back chunks.
        watts = self.device.power.active_watts(
            self.num_kernels, memory, transferring=transfer_busy > 0.0,
        )
        return RunResult(
            device=self.device.name,
            grid_cells=grid.num_cells,
            runtime_seconds=runtime,
            kernel_seconds=kernel_busy,
            transfer_seconds=transfer_busy,
            gflops=flops / runtime / 1e9,
            average_watts=watts,
            energy_joules=watts * runtime,
            num_kernels=self.num_kernels,
            memory=memory,
            overlapped=overlapped,
            schedule=schedule,
        )

    # -- functional execution -----------------------------------------------------

    def execute(self, fields: FieldSet,
                coeffs: AdvectionCoefficients | None = None) -> SourceSet:
        """Functionally execute the kernel on real data (chunked path)."""
        config = self.config.for_grid(fields.grid)
        return execute_chunked(config, fields, coeffs)
