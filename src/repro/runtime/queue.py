"""Command queues: enqueue transfers and kernel executions.

A :class:`CommandQueue` collects commands in enqueue order; the simulator
then executes them respecting both resource serialisation and event
dependencies.  Helper enqueue methods mirror the OpenCL host calls used in
the paper (``clEnqueueWriteBuffer``/``ReadBuffer``/``NDRangeKernel`` with
event wait lists).
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.runtime.event import Command, Event

__all__ = ["CommandQueue"]


class CommandQueue:
    """An out-of-order command queue with event dependencies.

    "Out of order" in the OpenCL sense: commands are free to reorder
    subject to their event wait lists, but each *resource* (DMA engine,
    kernel bank) remains serial — which is how the overlapped schedule
    gets transfer/compute concurrency from a single queue.
    """

    def __init__(self, name: str = "queue") -> None:
        self.name = name
        self.commands: list[Command] = []

    def enqueue(self, command: Command) -> Event:
        """Add a command; returns its completion event."""
        if command.scheduled:
            raise ScheduleError(
                f"command {command.name!r} was already executed"
            )
        self.commands.append(command)
        return command.event

    def validate(self) -> None:
        """Fail fast on schedules the simulator could never complete.

        Two defect classes are caught before any timing is computed:

        * waits on *phantom events* — events no command in this queue
          produces and that are not already complete (e.g. from a
          previously simulated queue), which would block their waiter
          forever;
        * dependency cycles, combining the explicit event edges with the
          implicit in-order edge between consecutive commands on the
          same resource — the classic enqueue-order deadlock.

        Raises :class:`~repro.errors.ScheduleError` in both cases.
        """
        producer: dict[int, int] = {
            id(command.event): index
            for index, command in enumerate(self.commands)
        }
        edges: dict[int, list[int]] = {i: [] for i in range(len(self.commands))}
        indegree = [0] * len(self.commands)
        for index, command in enumerate(self.commands):
            for ev in command.wait_for:
                source = producer.get(id(ev))
                if source is None:
                    if ev.complete:
                        continue  # satisfied before this queue starts
                    raise ScheduleError(
                        f"command {command.name!r} waits on event "
                        f"{ev.name!r} which no command in queue "
                        f"{self.name!r} produces and which is not "
                        f"complete — it would never become runnable"
                    )
                edges[source].append(index)
                indegree[index] += 1
        last_on_resource: dict[str, int] = {}
        for index, command in enumerate(self.commands):
            previous = last_on_resource.get(command.resource)
            if previous is not None:
                edges[previous].append(index)
                indegree[index] += 1
            last_on_resource[command.resource] = index

        ready = [i for i, degree in enumerate(indegree) if degree == 0]
        visited = 0
        while ready:
            node = ready.pop()
            visited += 1
            for succ in edges[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if visited != len(self.commands):
            stuck = [command.name for index, command
                     in enumerate(self.commands) if indegree[index] > 0]
            raise ScheduleError(
                f"dependency cycle would deadlock queue {self.name!r}: "
                f"{len(stuck)} commands can never start "
                f"(e.g. {stuck[:5]})"
            )

    # -- OpenCL-flavoured helpers ---------------------------------------------

    def enqueue_write(self, name: str, seconds: float, *,
                      wait_for: list[Event] | None = None,
                      resource: str = "pcie_h2d") -> Event:
        """Host-to-device transfer (clEnqueueWriteBuffer)."""
        return self.enqueue(Command(
            name=name, resource=resource, duration=seconds,
            wait_for=list(wait_for or []),
        ))

    def enqueue_read(self, name: str, seconds: float, *,
                     wait_for: list[Event] | None = None,
                     resource: str = "pcie_d2h") -> Event:
        """Device-to-host transfer (clEnqueueReadBuffer)."""
        return self.enqueue(Command(
            name=name, resource=resource, duration=seconds,
            wait_for=list(wait_for or []),
        ))

    def enqueue_kernel(self, name: str, seconds: float, *,
                       wait_for: list[Event] | None = None,
                       resource: str = "kernel") -> Event:
        """Kernel execution (clEnqueueNDRangeKernel)."""
        return self.enqueue(Command(
            name=name, resource=resource, duration=seconds,
            wait_for=list(wait_for or []),
        ))

    def __len__(self) -> int:
        return len(self.commands)
