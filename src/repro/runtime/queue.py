"""Command queues: enqueue transfers and kernel executions.

A :class:`CommandQueue` collects commands in enqueue order; the simulator
then executes them respecting both resource serialisation and event
dependencies.  Helper enqueue methods mirror the OpenCL host calls used in
the paper (``clEnqueueWriteBuffer``/``ReadBuffer``/``NDRangeKernel`` with
event wait lists).
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.runtime.event import Command, Event

__all__ = ["CommandQueue"]


class CommandQueue:
    """An out-of-order command queue with event dependencies.

    "Out of order" in the OpenCL sense: commands are free to reorder
    subject to their event wait lists, but each *resource* (DMA engine,
    kernel bank) remains serial — which is how the overlapped schedule
    gets transfer/compute concurrency from a single queue.
    """

    def __init__(self, name: str = "queue") -> None:
        self.name = name
        self.commands: list[Command] = []

    def enqueue(self, command: Command) -> Event:
        """Add a command; returns its completion event."""
        if command.scheduled:
            raise ScheduleError(
                f"command {command.name!r} was already executed"
            )
        self.commands.append(command)
        return command.event

    # -- OpenCL-flavoured helpers ---------------------------------------------

    def enqueue_write(self, name: str, seconds: float, *,
                      wait_for: list[Event] | None = None,
                      resource: str = "pcie_h2d") -> Event:
        """Host-to-device transfer (clEnqueueWriteBuffer)."""
        return self.enqueue(Command(
            name=name, resource=resource, duration=seconds,
            wait_for=list(wait_for or []),
        ))

    def enqueue_read(self, name: str, seconds: float, *,
                     wait_for: list[Event] | None = None,
                     resource: str = "pcie_d2h") -> Event:
        """Device-to-host transfer (clEnqueueReadBuffer)."""
        return self.enqueue(Command(
            name=name, resource=resource, duration=seconds,
            wait_for=list(wait_for or []),
        ))

    def enqueue_kernel(self, name: str, seconds: float, *,
                       wait_for: list[Event] | None = None,
                       resource: str = "kernel") -> Event:
        """Kernel execution (clEnqueueNDRangeKernel)."""
        return self.enqueue(Command(
            name=name, resource=resource, duration=seconds,
            wait_for=list(wait_for or []),
        ))

    def __len__(self) -> int:
        return len(self.commands)
