"""Device buffer allocation against a memory space's capacity.

The experiments need exactly one capacity behaviour from buffers: a
problem whose working set exceeds the space must fail to allocate (so the
Alveo falls back from HBM2 to DDR at 268M cells, and the V100 simply has
no 536M result).  :class:`BufferAllocator` provides that, plus the usual
bookkeeping a host runtime would do.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import CapacityError, ScheduleError
from repro.hardware.memory import StreamingMemoryModel

__all__ = ["DeviceBuffer", "BufferAllocator"]

_ids = itertools.count()


@dataclass(frozen=True)
class DeviceBuffer:
    """A live allocation in one device memory space."""

    name: str
    nbytes: int
    memory: str
    uid: int = field(default_factory=lambda: next(_ids))


class BufferAllocator:
    """Tracks allocations in one memory space."""

    def __init__(self, memory: StreamingMemoryModel) -> None:
        self.memory = memory
        self._live: dict[int, DeviceBuffer] = {}
        self.used_bytes = 0
        self.peak_bytes = 0

    @property
    def capacity_bytes(self) -> int:
        return self.memory.spec.capacity_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def live_buffers(self) -> int:
        return len(self._live)

    def allocate(self, name: str, nbytes: int) -> DeviceBuffer:
        """Allocate ``nbytes``; raises :class:`CapacityError` if it won't fit."""
        if nbytes < 0:
            raise ScheduleError(f"buffer {name!r}: nbytes must be >= 0")
        if nbytes > self.free_bytes:
            raise CapacityError(
                f"buffer {name!r} needs {nbytes} bytes but only "
                f"{self.free_bytes} of {self.capacity_bytes} remain in "
                f"{self.memory.spec.name!r}"
            )
        buffer = DeviceBuffer(name=name, nbytes=nbytes,
                              memory=self.memory.spec.name)
        self._live[buffer.uid] = buffer
        self.used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        return buffer

    def release(self, buffer: DeviceBuffer) -> None:
        """Free an allocation; double-free raises."""
        if buffer.uid not in self._live:
            raise ScheduleError(
                f"buffer {buffer.name!r} is not live (double free?)"
            )
        del self._live[buffer.uid]
        self.used_bytes -= buffer.nbytes

    def reset(self) -> None:
        self._live.clear()
        self.used_bytes = 0
