"""Export schedule timelines as Chrome trace-event JSON.

``chrome://tracing`` / Perfetto read the Trace Event Format; exporting
the host-runtime timelines there gives the same engine-occupancy view the
vendor profilers (Vitis Analyzer, Intel VTune) provide for real runs.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import ConfigurationError
from repro.runtime.simulator import ScheduleResult

__all__ = ["to_trace_events", "write_chrome_trace"]

#: Stable thread ids per engine so rows keep a fixed order in the viewer.
_ROW_ORDER = ("pcie_h2d", "kernel", "pcie_d2h", "pcie")


def _row_id(resource: str) -> int:
    try:
        return _ROW_ORDER.index(resource)
    except ValueError:
        return len(_ROW_ORDER) + hash(resource) % 1000


def to_trace_events(schedule: ScheduleResult, *,
                    process_name: str = "advection",
                    pid: int = 1) -> list[dict]:
    """Convert a schedule to a list of Trace Event Format dicts.

    ``pid`` sets the Chrome process the rows land in, so this timeline
    can share a file with other processes (the observability plane's
    merged export puts the engine in pid 1 and the schedule in pid 2).
    """
    if not schedule.timeline:
        raise ConfigurationError("cannot export an empty schedule")
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": process_name},
        }
    ]
    seen_resources: set[str] = set()
    for name, resource, start, end in schedule.timeline:
        if resource not in seen_resources:
            seen_resources.add(resource)
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _row_id(resource),
                "args": {"name": resource},
            })
        events.append({
            "name": name,
            "cat": resource,
            "ph": "X",  # complete event
            "pid": pid,
            "tid": _row_id(resource),
            "ts": start * 1e6,          # microseconds
            "dur": (end - start) * 1e6,
        })
    return events


def write_chrome_trace(schedule: ScheduleResult, path: str | pathlib.Path,
                       *, process_name: str = "advection") -> pathlib.Path:
    """Write a ``.json`` trace loadable by chrome://tracing / Perfetto."""
    path = pathlib.Path(path)
    events = to_trace_events(schedule, process_name=process_name)
    path.write_text(json.dumps({"traceEvents": events,
                                "displayTimeUnit": "ms"}))
    return path
