"""Host-side runtime simulation: command queues, events and overlap.

Section IV of the paper hides PCIe transfer behind compute by chunking the
X dimension, bulk-registering all transfers, and chaining kernel
executions to their chunk's transfers with OpenCL events.  This subpackage
reproduces that machinery as a discrete-event simulation:

* :mod:`repro.runtime.event` / :mod:`repro.runtime.queue` — commands,
  dependencies, and in-order resources (the DMA engines and the kernel
  bank),
* :mod:`repro.runtime.simulator` — list-scheduling executor producing a
  timeline,
* :mod:`repro.runtime.overlap` — builders for the Fig. 5 (sequential) and
  Fig. 6 (overlapped) schedules,
* :mod:`repro.runtime.buffer` — device-buffer allocation against memory
  capacities (the V100's 16 GB limit falls out here),
* :mod:`repro.runtime.session` — end-to-end runs on a device model,
  returning time, power, and energy.
"""

from repro.runtime.buffer import BufferAllocator, DeviceBuffer
from repro.runtime.event import Command, Event
from repro.runtime.overlap import build_overlapped_schedule, build_sequential_schedule
from repro.runtime.queue import CommandQueue
from repro.runtime.session import AdvectionSession, RunResult
from repro.runtime.simulator import ScheduleResult, simulate_schedule

__all__ = [
    "Event",
    "Command",
    "CommandQueue",
    "DeviceBuffer",
    "BufferAllocator",
    "simulate_schedule",
    "ScheduleResult",
    "build_sequential_schedule",
    "build_overlapped_schedule",
    "AdvectionSession",
    "RunResult",
]
