"""ASCII Gantt rendering of schedule timelines.

Turns a :class:`~repro.runtime.simulator.ScheduleResult` into the kind of
engine-occupancy picture the vendor profilers draw, so the overlap (or
lack of it) in the Fig. 5/6 schedules is visible in a terminal.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.runtime.simulator import ScheduleResult

__all__ = ["render_gantt"]


def render_gantt(schedule: ScheduleResult, *, width: int = 80,
                 title: str | None = None) -> str:
    """Render one row per resource, '#' where the engine is busy.

    Parameters
    ----------
    schedule:
        A simulated schedule (non-empty).
    width:
        Timeline columns.
    title:
        Optional heading; the makespan is always appended.
    """
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    if schedule.makespan <= 0 or not schedule.timeline:
        raise ConfigurationError("cannot render an empty schedule")

    makespan = schedule.makespan
    lines: list[str] = []
    heading = title or "schedule"
    lines.append(f"{heading}  (makespan {makespan * 1e3:.2f} ms)")

    label_width = max(len(r) for r in schedule.busy)
    for resource in sorted(schedule.busy):
        cells = [" "] * width
        for _, res, start, end in schedule.timeline:
            if res != resource:
                continue
            a = int(start / makespan * (width - 1))
            b = max(a + 1, int(round(end / makespan * (width - 1))))
            for i in range(a, min(b, width)):
                cells[i] = "#"
        utilisation = 100.0 * schedule.utilisation(resource)
        lines.append(
            f"  {resource:>{label_width}} |{''.join(cells)}| "
            f"{utilisation:4.0f}% busy"
        )
    return "\n".join(lines)
