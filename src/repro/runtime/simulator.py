"""Discrete-event execution of a command queue.

List scheduling over serial resources: a command starts at the latest of
(a) its resource becoming free and (b) all awaited events completing.
Commands on one resource keep their enqueue order (in-order engines); the
makespan and per-resource busy times fall out, which is all the
performance figures of Figs. 5 and 6 need.

With a :class:`~repro.faults.plan.FaultPlan`, ``transfer`` faults strike
PCIe commands as they execute: a *stall* adds its modelled seconds to the
transfer (a stall with ``seconds=None`` hangs — surfaced as a typed
:class:`~repro.errors.WatchdogTimeout`, never an actual hang); a *fail*
aborts the attempt, and the transfer is re-driven under the
:class:`~repro.faults.retry.RetryPolicy` (occupying the link for each
attempt plus the policy's backoff).  Without a policy a failed transfer
raises :class:`~repro.errors.TransferError` immediately; with one, budget
exhaustion raises :class:`~repro.errors.RetryExhaustedError` chained to
the last failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import (
    RetryExhaustedError,
    ScheduleError,
    TransferError,
    WatchdogTimeout,
)
from repro.runtime.event import Command
from repro.runtime.queue import CommandQueue

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.faults.retry import RetryPolicy

__all__ = ["ScheduleResult", "simulate_schedule"]


@dataclass
class ScheduleResult:
    """Timeline produced by simulating one command queue."""

    makespan: float
    #: resource -> total busy seconds.
    busy: dict[str, float] = field(default_factory=dict)
    #: (name, resource, start, end) per command, in completion order.
    timeline: list[tuple[str, str, float, float]] = field(default_factory=list)
    #: command name -> re-drives performed after injected transfer fails.
    retries: dict[str, int] = field(default_factory=dict)

    def utilisation(self, resource: str) -> float:
        """Busy fraction of one resource over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.busy.get(resource, 0.0) / self.makespan

    def overlap_seconds(self, resource_a: str, resource_b: str) -> float:
        """Seconds during which both resources were simultaneously busy."""
        spans_a = [(s, e) for _, r, s, e in self.timeline if r == resource_a]
        spans_b = [(s, e) for _, r, s, e in self.timeline if r == resource_b]
        total = 0.0
        for sa, ea in spans_a:
            for sb, eb in spans_b:
                total += max(0.0, min(ea, eb) - max(sa, sb))
        return total


def _transfer_occupancy(command: Command, fault_plan: "FaultPlan",
                        retry: "RetryPolicy | None") -> tuple[float, int]:
    """Seconds the link is occupied by ``command`` under injected faults.

    Returns ``(occupancy_seconds, redrives)``.  Each re-driven attempt is
    a fresh fault opportunity, so a persistent fail spec keeps striking
    until the budget is spent.
    """
    occupancy = command.duration
    failures = 0
    while True:
        spec = fault_plan.draw("transfer", command.name)
        if spec is None:
            return occupancy, failures
        if spec.kind == "stall":
            if spec.seconds is None:
                raise WatchdogTimeout(
                    f"transfer {command.name!r} stalled and never "
                    f"completed (injected hang); schedule watchdog fired"
                )
            occupancy += spec.seconds
            return occupancy, failures  # delayed, but this attempt lands
        error = TransferError(
            f"transfer {command.name!r} failed in flight (injected fault)"
        )
        if retry is None:
            raise error
        failures += 1
        if failures >= retry.max_attempts:
            raise RetryExhaustedError(
                f"transfer {command.name!r} failed after {failures} "
                f"attempts (last error: {error})"
            ) from error
        # The failed attempt occupied the link in full, then the policy
        # backs off before the re-drive.
        occupancy += command.duration + retry.delay(failures - 1)


def simulate_schedule(queue: CommandQueue, *,
                      fault_plan: "FaultPlan | None" = None,
                      retry: "RetryPolicy | None" = None,
                      watchdog_seconds: float | None = None,
                      ) -> ScheduleResult:
    """Execute every command in ``queue`` and return the timeline.

    Parameters
    ----------
    queue:
        The command queue; :meth:`~repro.runtime.queue.CommandQueue.validate`
        runs first, so phantom waits and dependency cycles raise a typed
        :class:`~repro.errors.ScheduleError` before any timing is computed.
    fault_plan:
        Optional fault-injection plan; ``transfer`` faults strike
        commands on ``pcie*`` resources (see module docstring).
    retry:
        Re-drive budget for failed transfers.  Deliberately *not*
        defaulted: a fail with no policy raises
        :class:`~repro.errors.TransferError` at once.
    watchdog_seconds:
        Modelled wall-clock budget for the whole schedule; the first
        command to finish past it raises
        :class:`~repro.errors.WatchdogTimeout`.
    """
    queue.validate()
    if watchdog_seconds is not None and watchdog_seconds <= 0:
        raise ScheduleError(
            f"watchdog_seconds must be positive, got {watchdog_seconds}"
        )
    pending: list[Command] = list(queue.commands)
    resource_free: dict[str, float] = {}
    busy: dict[str, float] = {}
    timeline: list[tuple[str, str, float, float]] = []
    retries: dict[str, int] = {}
    makespan = 0.0

    # In-order per resource: the first unscheduled command of each resource
    # is the only candidate for that resource.
    while pending:
        progressed = False
        seen_resources: set[str] = set()
        for command in pending:
            if command.resource in seen_resources:
                continue  # an earlier command on this resource must go first
            seen_resources.add(command.resource)
            if not all(ev.complete for ev in command.wait_for):
                continue
            occupancy = command.duration
            if (fault_plan is not None
                    and command.resource.startswith("pcie")):
                occupancy, redrives = _transfer_occupancy(
                    command, fault_plan, retry)
                if redrives:
                    retries[command.name] = redrives
            start = resource_free.get(command.resource, 0.0)
            for ev in command.wait_for:
                start = max(start, ev.time)  # type: ignore[arg-type]
            command.start = start
            command.end = start + occupancy
            command.event.time = command.end
            resource_free[command.resource] = command.end
            busy[command.resource] = busy.get(command.resource, 0.0) + occupancy
            timeline.append((command.name, command.resource,
                             command.start, command.end))
            makespan = max(makespan, command.end)
            if (watchdog_seconds is not None
                    and command.end > watchdog_seconds):
                raise WatchdogTimeout(
                    f"schedule exceeded its watchdog budget: "
                    f"{command.name!r} finishes at {command.end:.6g}s > "
                    f"{watchdog_seconds:.6g}s"
                )
            pending.remove(command)
            progressed = True
            break
        if not progressed:
            blocked = [c.name for c in pending[:5]]
            raise ScheduleError(
                f"schedule deadlock: no runnable command among "
                f"{len(pending)} pending (head: {blocked}); check for "
                f"event dependency cycles"
            )

    timeline.sort(key=lambda item: item[3])
    return ScheduleResult(makespan=makespan, busy=busy, timeline=timeline,
                          retries=retries)
