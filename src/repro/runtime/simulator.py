"""Discrete-event execution of a command queue.

List scheduling over serial resources: a command starts at the latest of
(a) its resource becoming free and (b) all awaited events completing.
Commands on one resource keep their enqueue order (in-order engines); the
makespan and per-resource busy times fall out, which is all the
performance figures of Figs. 5 and 6 need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.runtime.event import Command
from repro.runtime.queue import CommandQueue

__all__ = ["ScheduleResult", "simulate_schedule"]


@dataclass
class ScheduleResult:
    """Timeline produced by simulating one command queue."""

    makespan: float
    #: resource -> total busy seconds.
    busy: dict[str, float] = field(default_factory=dict)
    #: (name, resource, start, end) per command, in completion order.
    timeline: list[tuple[str, str, float, float]] = field(default_factory=list)

    def utilisation(self, resource: str) -> float:
        """Busy fraction of one resource over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.busy.get(resource, 0.0) / self.makespan

    def overlap_seconds(self, resource_a: str, resource_b: str) -> float:
        """Seconds during which both resources were simultaneously busy."""
        spans_a = [(s, e) for _, r, s, e in self.timeline if r == resource_a]
        spans_b = [(s, e) for _, r, s, e in self.timeline if r == resource_b]
        total = 0.0
        for sa, ea in spans_a:
            for sb, eb in spans_b:
                total += max(0.0, min(ea, eb) - max(sa, sb))
        return total


def simulate_schedule(queue: CommandQueue) -> ScheduleResult:
    """Execute every command in ``queue`` and return the timeline."""
    pending: list[Command] = list(queue.commands)
    resource_free: dict[str, float] = {}
    busy: dict[str, float] = {}
    timeline: list[tuple[str, str, float, float]] = []
    makespan = 0.0

    # In-order per resource: the first unscheduled command of each resource
    # is the only candidate for that resource.
    while pending:
        progressed = False
        seen_resources: set[str] = set()
        for command in pending:
            if command.resource in seen_resources:
                continue  # an earlier command on this resource must go first
            seen_resources.add(command.resource)
            if not all(ev.complete for ev in command.wait_for):
                continue
            start = resource_free.get(command.resource, 0.0)
            for ev in command.wait_for:
                start = max(start, ev.time)  # type: ignore[arg-type]
            command.start = start
            command.end = start + command.duration
            command.event.time = command.end
            resource_free[command.resource] = command.end
            busy[command.resource] = busy.get(command.resource, 0.0) + command.duration
            timeline.append((command.name, command.resource,
                             command.start, command.end))
            makespan = max(makespan, command.end)
            pending.remove(command)
            progressed = True
            break
        if not progressed:
            blocked = [c.name for c in pending[:5]]
            raise ScheduleError(
                f"schedule deadlock: no runnable command among "
                f"{len(pending)} pending (head: {blocked}); check for "
                f"event dependency cycles"
            )

    timeline.sort(key=lambda item: item[3])
    return ScheduleResult(makespan=makespan, busy=busy, timeline=timeline)
