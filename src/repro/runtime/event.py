"""Commands and completion events for the host runtime simulation.

Mirrors the OpenCL host model the paper uses on both vendors: every
enqueued operation (transfer or kernel execution) returns an event, and
operations can name events they must wait for — that event chaining is
what expresses "kernel for chunk i depends on the input transfer of chunk
i" in the overlapped schedule.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ScheduleError

__all__ = ["Event", "Command"]

_ids = itertools.count()


@dataclass
class Event:
    """Completion marker of one command."""

    name: str
    #: Set by the simulator when the owning command finishes.
    time: float | None = None

    @property
    def complete(self) -> bool:
        return self.time is not None


@dataclass
class Command:
    """One enqueued operation.

    Parameters
    ----------
    name:
        Diagnostic label (e.g. ``"h2d[chunk=3]"``).
    resource:
        The serial engine this command occupies (``"pcie_h2d"``,
        ``"pcie_d2h"``, ``"pcie"``, ``"kernel"``).  Commands on the same
        resource execute one at a time, in enqueue order — OpenCL in-order
        queue semantics per engine.
    duration:
        Seconds of resource occupancy.
    wait_for:
        Events that must complete before this command may start.
    """

    name: str
    resource: str
    duration: float
    wait_for: list[Event] = field(default_factory=list)
    uid: int = field(default_factory=lambda: next(_ids))
    event: Event = field(init=False)
    start: float | None = None
    end: float | None = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ScheduleError(
                f"command {self.name!r}: duration must be >= 0, got "
                f"{self.duration}"
            )
        self.event = Event(name=f"{self.name}.done")

    @property
    def scheduled(self) -> bool:
        return self.end is not None
