"""Schedule builders: the Fig. 5 (sequential) and Fig. 6 (overlapped) paths.

* **Sequential** — write the whole input, run the kernel, read the whole
  output, synchronising between steps.  Transfers use the synchronous
  (overhead-dominated) PCIe regime and share one serial link resource.
* **Overlapped** — chunk the X dimension; bulk-register every transfer up
  front; chain each chunk's kernel to its input transfer and each output
  transfer to its kernel with events.  Input and output DMA engines run
  concurrently on a duplex link, and while chunk *i* computes, chunk
  *i+1*'s input and chunk *i-1*'s output are in flight — the paper's
  CUDA-streams-inspired design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.hardware.pcie import PCIeLink
from repro.runtime.queue import CommandQueue

__all__ = ["ChunkWork", "build_sequential_schedule", "build_overlapped_schedule"]


@dataclass(frozen=True)
class ChunkWork:
    """Work description of one X chunk."""

    index: int
    in_bytes: float
    out_bytes: float
    kernel_seconds: float

    def __post_init__(self) -> None:
        if self.in_bytes < 0 or self.out_bytes < 0:
            raise ScheduleError("chunk byte counts must be >= 0")
        if self.kernel_seconds < 0:
            raise ScheduleError("chunk kernel time must be >= 0")


def build_sequential_schedule(in_bytes: float, out_bytes: float,
                              kernel_seconds: float,
                              pcie: PCIeLink, *,
                              name_prefix: str = "") -> CommandQueue:
    """Whole-problem write -> execute -> read with synchronisation.

    Every step waits on the previous one and the two transfers share one
    link resource: nothing overlaps, matching how the paper measured
    Fig. 5.  ``name_prefix`` is prepended to every command name so
    multi-device callers (the fleet scheduler) get per-lane
    fault-injection namespaces ("u280-0:h2d[all]").
    """
    queue = CommandQueue(f"{name_prefix}sequential")
    ev_in = queue.enqueue_write(
        f"{name_prefix}h2d[all]",
        pcie.transfer_time(in_bytes, streamed=False),
        resource="pcie",
    )
    ev_k = queue.enqueue_kernel(
        f"{name_prefix}kernel[all]", kernel_seconds, wait_for=[ev_in],
    )
    queue.enqueue_read(
        f"{name_prefix}d2h[all]",
        pcie.transfer_time(out_bytes, streamed=False),
        wait_for=[ev_k], resource="pcie",
    )
    return queue


def build_overlapped_schedule(chunks: list[ChunkWork],
                              pcie: PCIeLink, *,
                              kernel_banks: int = 1,
                              name_prefix: str = "") -> CommandQueue:
    """Chunked, event-chained schedule that overlaps transfer and compute.

    Dependencies per chunk ``i``:

    * ``kernel[i]`` waits for ``h2d[i]`` (data must be present) — kernel
      executions serialise on the kernel bank resource;
    * ``d2h[i]`` waits for ``kernel[i]``.

    The H2D engine streams chunk after chunk without further waits (bulk
    registration), so input for later chunks is in flight while earlier
    chunks compute.  On a duplex link the D2H engine is a second resource;
    otherwise both directions serialise on one link.

    ``kernel_banks`` > 1 round-robins chunk kernels across independent
    bank resources (``kernel0`` .. ``kernel{N-1}``), so chunk executions
    themselves overlap — the multi-kernel device regime.  The default of
    one bank keeps the single serial ``kernel`` resource.

    ``name_prefix`` is prepended to every command name (and the queue
    name), giving each fleet lane a private fault-injection namespace so
    a ``transfer`` spec can target one device ("u280-0:*") without
    striking its siblings.
    """
    if not chunks:
        raise ScheduleError("overlapped schedule needs at least one chunk")
    if kernel_banks < 1:
        raise ScheduleError(
            f"kernel_banks must be >= 1, got {kernel_banks}"
        )
    queue = CommandQueue(f"{name_prefix}overlapped")
    h2d_res = "pcie_h2d"
    d2h_res = "pcie_d2h" if pcie.duplex else "pcie_h2d"
    for chunk in chunks:
        ev_in = queue.enqueue_write(
            f"{name_prefix}h2d[{chunk.index}]",
            pcie.transfer_time(chunk.in_bytes, streamed=True),
            resource=h2d_res,
        )
        kernel_res = ("kernel" if kernel_banks == 1
                      else f"kernel{chunk.index % kernel_banks}")
        ev_k = queue.enqueue_kernel(
            f"{name_prefix}kernel[{chunk.index}]", chunk.kernel_seconds,
            wait_for=[ev_in], resource=kernel_res,
        )
        queue.enqueue_read(
            f"{name_prefix}d2h[{chunk.index}]",
            pcie.transfer_time(chunk.out_bytes, streamed=True),
            wait_for=[ev_k], resource=d2h_res,
        )
    return queue
