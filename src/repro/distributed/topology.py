"""Periodic 2-D processor grids and per-rank subdomains.

MONC decomposes the horizontal (x, y) plane across ranks; columns are
never split vertically.  The decomposition here mirrors that: a ``px x
py`` periodic processor grid, each rank owning a contiguous block of
columns plus a one-cell halo all round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.grid import Grid
from repro.errors import ConfigurationError

__all__ = ["ProcessGrid", "RankDomain"]


def _split(cells: int, parts: int) -> list[tuple[int, int]]:
    """Near-equal contiguous split of ``cells`` into ``parts`` ranges."""
    base, extra = divmod(cells, parts)
    bounds = []
    start = 0
    for p in range(parts):
        width = base + (1 if p < extra else 0)
        bounds.append((start, start + width))
        start += width
    return bounds


@dataclass(frozen=True)
class RankDomain:
    """One rank's piece of the global domain.

    ``x_range``/``y_range`` are global interior coordinates of the owned
    columns; the rank's local arrays carry the usual one-cell halo.
    """

    rank: int
    coords: tuple[int, int]
    x_range: tuple[int, int]
    y_range: tuple[int, int]
    nz: int

    @property
    def nx(self) -> int:
        return self.x_range[1] - self.x_range[0]

    @property
    def ny(self) -> int:
        return self.y_range[1] - self.y_range[0]

    @property
    def num_cells(self) -> int:
        return self.nx * self.ny * self.nz

    def local_grid(self, template: Grid) -> Grid:
        """The rank-local grid (same spacings as the global one)."""
        return Grid(nx=self.nx, ny=self.ny, nz=self.nz, dx=template.dx,
                    dy=template.dy, dz=template.dz)


@dataclass(frozen=True)
class ProcessGrid:
    """A periodic ``px x py`` processor grid over a global domain."""

    global_grid: Grid
    px: int
    py: int

    def __post_init__(self) -> None:
        if self.px < 1 or self.py < 1:
            raise ConfigurationError("processor grid dims must be >= 1")
        if self.px > self.global_grid.nx or self.py > self.global_grid.ny:
            raise ConfigurationError(
                f"processor grid {self.px}x{self.py} exceeds domain "
                f"{self.global_grid.nx}x{self.global_grid.ny}"
            )
        # A depth-1 halo exchange needs every subdomain at least 1 wide;
        # guaranteed by the check above.

    @property
    def size(self) -> int:
        return self.px * self.py

    def rank_of(self, i: int, j: int) -> int:
        """Rank at processor coordinates (i, j), periodic."""
        return (i % self.px) * self.py + (j % self.py)

    def coords_of(self, rank: int) -> tuple[int, int]:
        if not 0 <= rank < self.size:
            raise ConfigurationError(
                f"rank {rank} outside communicator of size {self.size}"
            )
        return divmod(rank, self.py)

    def neighbours(self, rank: int) -> dict[str, int]:
        """Periodic neighbours: west/east in x, south/north in y."""
        i, j = self.coords_of(rank)
        return {
            "west": self.rank_of(i - 1, j),
            "east": self.rank_of(i + 1, j),
            "south": self.rank_of(i, j - 1),
            "north": self.rank_of(i, j + 1),
        }

    def domain(self, rank: int) -> RankDomain:
        """The subdomain owned by ``rank``."""
        i, j = self.coords_of(rank)
        x_bounds = _split(self.global_grid.nx, self.px)
        y_bounds = _split(self.global_grid.ny, self.py)
        return RankDomain(
            rank=rank,
            coords=(i, j),
            x_range=x_bounds[i],
            y_range=y_bounds[j],
            nz=self.global_grid.nz,
        )

    def domains(self) -> list[RankDomain]:
        return [self.domain(r) for r in range(self.size)]

    def validate_coverage(self) -> None:
        """Subdomains must tile the global interior exactly once."""
        total = sum(d.num_cells for d in self.domains())
        if total != self.global_grid.num_cells:
            raise ConfigurationError(
                f"subdomains cover {total} cells, global domain has "
                f"{self.global_grid.num_cells}"
            )
