"""An in-process communicator with halo exchange and a cost model.

The surface follows the mpi4py idioms of the bundled HPC guide
(neighbour sendrecv of contiguous NumPy buffers), executed rank by rank
inside one process so tests stay deterministic.  A
:class:`CommCostModel` prices each exchange with the classic
latency + size/bandwidth model so scaling studies can include
communication time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fields import FIELD_NAMES, FieldSet
from repro.distributed.topology import ProcessGrid
from repro.errors import ConfigurationError

__all__ = ["CommCostModel", "LocalCluster"]


@dataclass(frozen=True)
class CommCostModel:
    """Latency/bandwidth cost of point-to-point messages.

    Defaults approximate a commodity interconnect (2 us latency,
    10 GB/s per link).
    """

    latency_s: float = 2e-6
    bandwidth_bytes_s: float = 10e9

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_bytes_s <= 0:
            raise ConfigurationError("invalid communication cost model")

    def message_time(self, nbytes: int) -> float:
        return self.latency_s + nbytes / self.bandwidth_bytes_s


@dataclass
class ExchangeStats:
    """Bytes and modelled time of halo exchanges so far."""

    exchanges: int = 0
    messages: int = 0
    bytes_sent: int = 0
    modelled_seconds: float = 0.0


class LocalCluster:
    """All ranks of a :class:`ProcessGrid`, living in one process.

    Each rank holds a :class:`FieldSet` on its local (halo-extended)
    grid.  :meth:`scatter` distributes a global field set,
    :meth:`halo_exchange` swaps the depth-1 halos (periodic at the global
    boundary, neighbour data elsewhere), and :meth:`gather` reassembles
    the global interior.
    """

    def __init__(self, topology: ProcessGrid,
                 cost_model: CommCostModel | None = None) -> None:
        topology.validate_coverage()
        self.topology = topology
        self.cost_model = cost_model or CommCostModel()
        self.stats = ExchangeStats()
        self.fields: list[FieldSet] = [
            FieldSet.zeros(domain.local_grid(topology.global_grid))
            for domain in topology.domains()
        ]

    @property
    def size(self) -> int:
        return self.topology.size

    # -- distribution ----------------------------------------------------------

    def scatter(self, global_fields: FieldSet) -> None:
        """Copy each rank's interior block out of the global fields."""
        if global_fields.grid.interior_shape != \
                self.topology.global_grid.interior_shape:
            raise ConfigurationError(
                "global fields do not match the cluster's domain"
            )
        for domain, local in zip(self.topology.domains(), self.fields):
            x0, x1 = domain.x_range
            y0, y1 = domain.y_range
            for name in FIELD_NAMES:
                src = global_fields.interior(name)[x0:x1, y0:y1, :]
                local.grid.interior(getattr(local, name))[...] = src

    def gather(self, name: str) -> np.ndarray:
        """Reassemble one field's global interior from the ranks."""
        grid = self.topology.global_grid
        out = np.zeros(grid.interior_shape)
        for domain, local in zip(self.topology.domains(), self.fields):
            x0, x1 = domain.x_range
            y0, y1 = domain.y_range
            out[x0:x1, y0:y1, :] = local.interior(name)
        return out

    # -- halo exchange ------------------------------------------------------------

    def halo_exchange(self) -> float:
        """Swap depth-1 halos between neighbouring ranks, all fields.

        Returns the modelled wall time of the exchange: each rank sends
        four messages (two per dimension); with full overlap across ranks
        the exchange costs one x-message plus one y-message on the
        critical path.
        """
        per_rank_time = 0.0
        for rank, local in enumerate(self.fields):
            neighbours = self.topology.neighbours(rank)
            for name in FIELD_NAMES:
                array = getattr(local, name)
                # --- x direction: my first/last interior planes become the
                # east/west halos of my neighbours.
                west = self.fields[neighbours["west"]]
                east = self.fields[neighbours["east"]]
                array[0, 1:-1, :] = getattr(
                    west, name)[-2, 1:-1, :]
                array[-1, 1:-1, :] = getattr(
                    east, name)[1, 1:-1, :]
            x_bytes = 8 * local.grid.ny * local.grid.nz
            per_rank_time = max(
                per_rank_time,
                2 * len(FIELD_NAMES) * self.cost_model.message_time(x_bytes),
            )
            self.stats.messages += 2 * len(FIELD_NAMES)
            self.stats.bytes_sent += 2 * len(FIELD_NAMES) * x_bytes

        # y halos second, reading x-completed halos so corners are right.
        y_time = 0.0
        for rank, local in enumerate(self.fields):
            neighbours = self.topology.neighbours(rank)
            for name in FIELD_NAMES:
                array = getattr(local, name)
                south = self.fields[neighbours["south"]]
                north = self.fields[neighbours["north"]]
                array[:, 0, :] = getattr(south, name)[:, -2, :]
                array[:, -1, :] = getattr(north, name)[:, 1, :]
            y_bytes = 8 * (local.grid.nx + 2) * local.grid.nz
            y_time = max(
                y_time,
                2 * len(FIELD_NAMES) * self.cost_model.message_time(y_bytes),
            )
            self.stats.messages += 2 * len(FIELD_NAMES)
            self.stats.bytes_sent += 2 * len(FIELD_NAMES) * y_bytes

        self.stats.exchanges += 1
        elapsed = per_rank_time + y_time
        self.stats.modelled_seconds += elapsed
        return elapsed
