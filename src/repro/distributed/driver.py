"""Distributed advection: decompose, exchange halos, compute, reassemble.

The driver mirrors one MONC advection call on a decomposed domain:

1. halo-exchange the wind fields (depth-1, periodic global boundary),
2. every rank runs the PW kernel on its own columns (the reference, or
   any per-rank backend such as the simulated FPGA kernel),
3. the global source terms are the union of the rank results.

Because the PW stencil is depth 1 and the exchange provides exactly the
depth-1 neighbourhood, the distributed result is **bit-identical** to the
single-domain reference — the property the test suite enforces for every
processor-grid shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet
from repro.core.flops import grid_flops
from repro.core.reference import advect_reference
from repro.distributed.comm import CommCostModel, LocalCluster
from repro.distributed.topology import ProcessGrid
from repro.errors import ConfigurationError, ReplicaLostError

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.faults.retry import RetryPolicy
    from repro.observe.trace import Tracer

__all__ = ["DistributedAdvection", "DistributedStepReport"]

#: A per-rank advection backend: local fields -> local sources.
RankBackend = Callable[[FieldSet], SourceSet]


@dataclass(frozen=True)
class DistributedStepReport:
    """Timing and volume of one distributed advection step."""

    ranks: int
    compute_seconds: float
    comm_seconds: float
    halo_bytes: int
    #: ranks that dropped mid-compute and were respawned successfully.
    recovered_ranks: int = 0

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    @property
    def comm_fraction(self) -> float:
        return self.comm_seconds / self.total_seconds if self.total_seconds \
            else 0.0


class DistributedAdvection:
    """One decomposed advection computation.

    Parameters
    ----------
    topology:
        The processor grid.
    backend:
        Per-rank source computation; defaults to the vectorised reference.
    rank_gflops:
        Modelled per-rank compute rate (for the step report's timing).
    cost_model:
        Interconnect cost model for the halo exchange.
    fault_plan:
        Optional fault-injection plan.  ``rank``/``drop`` faults strike a
        rank's compute: the rank is respawned and its domain recomputed
        under ``retry`` (transient drops recover bit-identically,
        persistent drops exhaust the budget and raise
        :class:`~repro.errors.RetryExhaustedError`).
    retry:
        Rank-respawn budget; defaults to ``RetryPolicy()`` when a fault
        plan is given.
    tracer:
        Optional :class:`~repro.observe.trace.Tracer` on the *modelled
        seconds* clock.  Each :meth:`compute` step emits the halo
        exchange on a ``comm`` track, one compute span per rank on its
        own ``rank{r}`` lane (ranks run in parallel, so lanes share a
        start), respawn markers for recovered ranks, and the whole step
        on a ``driver`` track; successive steps are laid end to end.
    """

    def __init__(self, topology: ProcessGrid, *,
                 backend: RankBackend | None = None,
                 coeffs: AdvectionCoefficients | None = None,
                 rank_gflops: float = 2.09,
                 cost_model: CommCostModel | None = None,
                 fault_plan: "FaultPlan | None" = None,
                 retry: "RetryPolicy | None" = None,
                 tracer: "Tracer | None" = None) -> None:
        if rank_gflops <= 0:
            raise ConfigurationError("rank_gflops must be positive")
        self.topology = topology
        self.cluster = LocalCluster(topology, cost_model)
        self.coeffs = coeffs or AdvectionCoefficients.uniform(
            topology.global_grid)
        self.backend = backend or (
            lambda fields: advect_reference(fields, self.coeffs))
        self.rank_gflops = rank_gflops
        self.fault_plan = fault_plan
        if retry is None and fault_plan is not None:
            from repro.faults.retry import RetryPolicy as _RetryPolicy

            retry = _RetryPolicy()
        self.retry = retry
        self.tracer = tracer
        self.last_report: DistributedStepReport | None = None
        self._trace_clock = 0.0  # where the next step's spans start

    def compute(self, global_fields: FieldSet) -> SourceSet:
        """Distributed PW advection of ``global_fields``.

        The input's own halos are ignored: the cluster rebuilds them from
        the decomposition (periodic at the global edge), exactly as a
        multi-rank MONC would.
        """
        grid = self.topology.global_grid
        if global_fields.grid.interior_shape != grid.interior_shape:
            raise ConfigurationError(
                "fields do not match the decomposed domain"
            )

        self.cluster.scatter(global_fields)
        bytes_before = self.cluster.stats.bytes_sent
        comm_seconds = self.cluster.halo_exchange()

        tracer = self.tracer
        trace_on = tracer is not None and tracer.enabled
        step_start = self._trace_clock
        out = SourceSet.zeros(grid)
        worst_compute = 0.0
        recovered = 0
        for rank, (domain, local) in enumerate(
                zip(self.topology.domains(), self.cluster.fields)):
            local_sources = self._compute_rank(rank, local)
            rank_failures = self._rank_failures
            recovered += 1 if rank_failures else 0
            x0, x1 = domain.x_range
            y0, y1 = domain.y_range
            out.su[x0:x1, y0:y1, :] = local_sources.su
            out.sv[x0:x1, y0:y1, :] = local_sources.sv
            out.sw[x0:x1, y0:y1, :] = local_sources.sw
            rank_seconds = (
                grid_flops(domain.local_grid(grid)) /
                (self.rank_gflops * 1e9))
            if rank_failures and self.retry is not None:
                # A respawned rank recomputes its whole domain and sits
                # through the policy's backoff first.
                rank_seconds *= 1 + rank_failures
                rank_seconds += self.retry.total_delay(rank_failures)
            worst_compute = max(worst_compute, rank_seconds)
            if trace_on:
                assert tracer is not None
                compute_start = step_start + comm_seconds
                tracer.add_span(
                    "compute", f"rank{rank}", compute_start,
                    compute_start + rank_seconds, category="rank",
                    cells=domain.local_grid(grid).num_cells,
                    respawns=rank_failures)
                if rank_failures:
                    tracer.instant("rank respawned", f"rank{rank}",
                                   ts=compute_start, failures=rank_failures)

        if trace_on:
            assert tracer is not None
            tracer.add_span(
                "halo exchange", "comm", step_start,
                step_start + comm_seconds, category="comm",
                bytes=self.cluster.stats.bytes_sent - bytes_before)
            tracer.add_span(
                "step", "driver", step_start,
                step_start + comm_seconds + worst_compute, category="step",
                ranks=self.topology.size, recovered=recovered)
            self._trace_clock = step_start + comm_seconds + worst_compute

        self.last_report = DistributedStepReport(
            ranks=self.topology.size,
            compute_seconds=worst_compute,
            comm_seconds=comm_seconds,
            halo_bytes=self.cluster.stats.bytes_sent - bytes_before,
            recovered_ranks=recovered,
        )
        return out

    def _compute_rank(self, rank: int, local: FieldSet) -> SourceSet:
        """One rank's backend call, with drop-fault injection and respawn.

        Sets ``self._rank_failures`` to the number of injected drops this
        rank survived (0 on the fault-free path).
        """
        self._rank_failures = 0

        def attempt() -> SourceSet:
            if self.fault_plan is not None:
                spec = self.fault_plan.rank_fault(rank)
                if spec is not None:
                    raise ReplicaLostError(
                        f"rank {rank} dropped mid-compute (injected fault)"
                    )
            return self.backend(local)

        if self.fault_plan is None or not self.fault_plan.targets("rank"):
            return attempt()
        assert self.retry is not None

        def respawn(failure_index: int, error: BaseException) -> None:
            self._rank_failures = failure_index + 1

        return self.retry.call(attempt, describe=f"rank {rank} compute",
                               on_retry=respawn)

    def scaling_efficiency(self) -> float:
        """Parallel efficiency of the last step vs a single rank.

        ``T1 / (P * TP)`` with T1 modelled at the same per-rank rate.
        """
        if self.last_report is None:
            raise ConfigurationError("run compute() before asking for "
                                     "scaling efficiency")
        grid = self.topology.global_grid
        t1 = grid_flops(grid) / (self.rank_gflops * 1e9)
        tp = self.last_report.total_seconds
        return t1 / (self.topology.size * tp)

    def gather_state(self) -> dict[str, np.ndarray]:
        """Global interiors of the cluster's current wind fields."""
        return {name: self.cluster.gather(name) for name in ("u", "v", "w")}
