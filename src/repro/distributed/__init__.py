"""MONC-style horizontal domain decomposition with halo exchange.

MONC is "a highly scalable Met Office NERC Cloud model" [1]: the
horizontal domain is decomposed across MPI ranks, each rank computes its
own columns, and depth-1 halo swaps run each timestep before advection.
This subpackage reproduces that substrate in-process:

* :mod:`repro.distributed.topology` — a periodic 2-D processor grid and
  the per-rank subdomain geometry;
* :mod:`repro.distributed.comm` — an in-process communicator with the
  mpi4py-style sendrecv/halo-exchange surface plus a latency/bandwidth
  cost model;
* :mod:`repro.distributed.driver` — a distributed advection driver whose
  result is bit-identical to the single-domain reference, with per-step
  time estimates for compute and communication.

Running real MPI is out of scope (and unnecessary for correctness): the
communicator executes rank-by-rank in one process, which keeps every test
deterministic while exercising exactly the halo logic a distributed MONC
needs.
"""

from repro.distributed.comm import CommCostModel, LocalCluster
from repro.distributed.driver import DistributedAdvection, DistributedStepReport
from repro.distributed.topology import ProcessGrid, RankDomain

__all__ = [
    "ProcessGrid",
    "RankDomain",
    "LocalCluster",
    "CommCostModel",
    "DistributedAdvection",
    "DistributedStepReport",
]
