"""Per-device circuit breakers: CLOSED -> OPEN -> HALF_OPEN -> CLOSED.

Each fleet lane carries one breaker.  Failure evidence comes from the
fault plane: a device-loss/blip fault trips the breaker open instantly
(:meth:`CircuitBreaker.force_open`); transfer faults accumulate — every
PCIe redrive the lane's schedule performed counts one failure, and a
*clean* job (zero redrives) resets the streak.  Crossing
``failure_threshold`` consecutive failures opens the breaker.

An open breaker takes the lane out of dispatch.  After
``cooldown_seconds`` of modelled time the scheduler sends a half-open
probe; a healthy probe closes the breaker and re-admits the lane, a
failed probe re-opens it and restarts the cooldown.  Every transition
is recorded with its modelled timestamp and reason, so the chaos gate
can assert the exact recovery sequence (open -> half-open -> closed)
and the report can print it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["BreakerState", "BreakerTransition", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded state change of one lane's breaker."""

    at: float
    lane: str
    frm: str
    to: str
    reason: str

    def to_dict(self) -> dict[str, Any]:
        return {"at": self.at, "lane": self.lane, "from": self.frm,
                "to": self.to, "reason": self.reason}


class CircuitBreaker:
    """State machine guarding one device lane."""

    def __init__(self, lane: str, *, failure_threshold: int = 3,
                 cooldown_seconds: float = 0.005) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds <= 0:
            raise ConfigurationError(
                f"cooldown_seconds must be positive, got {cooldown_seconds}"
            )
        self.lane = lane
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.transitions: list[BreakerTransition] = []

    # -- transitions --------------------------------------------------------

    def _move(self, now: float, to: BreakerState, reason: str) -> None:
        self.transitions.append(BreakerTransition(
            at=now, lane=self.lane, frm=self.state.value, to=to.value,
            reason=reason,
        ))
        self.state = to
        self.opened_at = now if to is BreakerState.OPEN else self.opened_at

    def record_success(self, now: float) -> None:
        """A clean service (or a healthy probe): reset the streak."""
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self._move(now, BreakerState.CLOSED, "probe succeeded")

    def record_failure(self, now: float, reason: str) -> None:
        """One unit of failure evidence (a redrive, a typed error)."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._move(now, BreakerState.OPEN, f"probe failed: {reason}")
        elif (self.state is BreakerState.CLOSED
              and self.consecutive_failures >= self.failure_threshold):
            self._move(
                now, BreakerState.OPEN,
                f"{self.consecutive_failures} consecutive failures "
                f"(last: {reason})",
            )

    def force_open(self, now: float, reason: str) -> None:
        """Trip immediately (device loss/blip observed mid-job)."""
        self.consecutive_failures = max(
            self.consecutive_failures, self.failure_threshold
        )
        if self.state is not BreakerState.OPEN:
            self._move(now, BreakerState.OPEN, reason)

    # -- probing ------------------------------------------------------------

    def probe_at(self) -> float:
        """Modelled time the next half-open probe is due."""
        if self.state is not BreakerState.OPEN or self.opened_at is None:
            raise ConfigurationError(
                f"lane {self.lane}: probe_at on a {self.state.value} breaker"
            )
        return self.opened_at + self.cooldown_seconds

    def begin_probe(self, now: float) -> None:
        """OPEN -> HALF_OPEN once the cooldown has elapsed."""
        if self.state is not BreakerState.OPEN:
            raise ConfigurationError(
                f"lane {self.lane}: begin_probe on a {self.state.value} "
                "breaker"
            )
        self._move(now, BreakerState.HALF_OPEN, "cooldown elapsed")

    def allows_dispatch(self) -> bool:
        """May the scheduler hand this lane a regular job?"""
        return self.state is BreakerState.CLOSED

    def to_dict(self) -> dict[str, Any]:
        return {
            "lane": self.lane,
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "cooldown_seconds": self.cooldown_seconds,
            "transitions": [t.to_dict() for t in self.transitions],
        }
