"""Result cache keyed by (input fingerprint, service mode).

Atmospheric workloads re-run the same wind state (ensemble members,
restarted pipelines, identical verification requests), so the fleet
memoises finished jobs: key = blake2b fingerprint of the raw input
field bytes + grid dims (:func:`~repro.serve.job.fingerprint_fields`)
crossed with the service mode, value = the numeric sources plus the
checksum (and cycle stats for the exact tier).

Mode is part of the key because the tiers deliver different artefacts —
a fast entry has no cycle stats to hand an exact request.  The numbers
themselves are bit-identical across tiers, so a cache hit can never
launder a different answer: the stored checksum *is* the golden one.

Bounded LRU; ``capacity=0`` disables caching entirely (every lookup is
a recorded miss).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.core.fields import SourceSet
from repro.errors import ConfigurationError

__all__ = ["CacheEntry", "ResultCache"]


@dataclass(frozen=True)
class CacheEntry:
    """Memoised outcome of one (input, mode) computation."""

    checksum: str
    sources: SourceSet
    stats_cycles: int | None = None


class ResultCache:
    """LRU over (fingerprint, mode) with hit/miss/eviction accounting."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ConfigurationError(
                f"cache capacity must be >= 0, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, str], CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str, mode: str) -> CacheEntry | None:
        key = (fingerprint, mode)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, fingerprint: str, mode: str, entry: CacheEntry) -> None:
        if self.capacity == 0:
            return
        key = (fingerprint, mode)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
