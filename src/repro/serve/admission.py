"""Admission control: quote, degrade, or shed — decided before queueing.

Every submission is priced with the :mod:`repro.tune` cost model
(:func:`~repro.tune.admission.quote_job`, memoised per device type x
grid x mode) before it may enter the queue.  The controller's estimate
of a job's completion time is::

    wait      = backlog_seconds / len(dispatchable lanes)
    service   = best quote across dispatchable device types
    retries   = RetryPolicy.total_delay(max_attempts - 1)   # closed form
    estimate  = wait + service + retries

and the decision ladder, in order:

1. **No dispatchable lane** -> typed
   :class:`~repro.serve.errors.AdmissionError` (the fleet may recover
   later; *this* submission is honestly refused now).
2. **Queue at hard cap** -> :class:`~repro.serve.errors.OverloadError`.
3. **Backlog over budget** -> degrade ``exact`` -> ``fast`` when the
   tenant allows it; shed ``exact`` jobs that forbid degradation with
   :class:`~repro.serve.errors.OverloadError`; ``fast`` jobs squeeze in
   until the hard cap.
4. **Deadline infeasible at the requested tier** -> retry the estimate
   at the degraded tier (if allowed); still infeasible -> typed
   :class:`~repro.serve.errors.AdmissionError`.

Rejected jobs never queue, so an admitted job's deadline was feasible
*at admission* — later misses are fault-induced and surface as
:class:`~repro.serve.errors.DeadlineExceededError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.faults.retry import RetryPolicy
from repro.serve.errors import AdmissionError, OverloadError
from repro.serve.fleet import DeviceLane, Fleet
from repro.serve.job import JobSpec
from repro.tune.admission import JobQuote, quote_job

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """What the controller promised for one admitted job."""

    mode_served: str
    degraded: bool
    quote: JobQuote
    #: completion-time estimate (wait + service + retry budget).
    estimate_seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode_served": self.mode_served,
            "degraded": self.degraded,
            "quote": self.quote.to_dict(),
            "estimate_seconds": self.estimate_seconds,
        }


class AdmissionController:
    """Prices submissions against the fleet and the retry budget."""

    def __init__(self, fleet: Fleet, *, retry: RetryPolicy,
                 max_queue_depth: int = 64,
                 overload_backlog_seconds: float = 0.05) -> None:
        if max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if overload_backlog_seconds <= 0:
            raise ConfigurationError(
                "overload_backlog_seconds must be positive, "
                f"got {overload_backlog_seconds}"
            )
        self.fleet = fleet
        self.retry = retry
        self.max_queue_depth = max_queue_depth
        self.overload_backlog_seconds = overload_backlog_seconds
        self._quotes: dict[tuple[str, tuple[int, int, int], str, str | None],
                           JobQuote] = {}
        self.admitted = 0
        self.degraded = 0
        self.shed = 0
        self.rejected = 0

    # -- pricing ------------------------------------------------------------

    def quote_for(self, device: Any, spec: JobSpec,
                  mode: str) -> JobQuote:
        """Memoised fault-free quote for one device type x job shape.

        Scenario jobs key (and price) separately: the scenario's
        operation intensity stretches kernel-busy time.
        """
        key = (device.name, spec.dims(), mode, spec.scenario)
        quote = self._quotes.get(key)
        if quote is None:
            quote = quote_job(device, spec.grid(), mode=mode,
                              flops_scale=spec.flops_scale())
            self._quotes[key] = quote
        return quote

    def best_quote(self, spec: JobSpec, mode: str,
                   lanes: list[DeviceLane]) -> JobQuote:
        """Cheapest quote across the dispatchable lanes' device types."""
        seen: dict[str, Any] = {}
        for lane in lanes:
            seen.setdefault(lane.device.name, lane.device)
        return min(
            (self.quote_for(device, spec, mode)
             for device in seen.values()),
            key=lambda quote: quote.service_seconds,
        )

    def retry_budget_seconds(self, spec: JobSpec) -> float:
        """Worst-case backoff the job's keyed retry stream can spend."""
        policy = self.retry.for_job(spec.job_id)
        return policy.total_delay(policy.max_attempts - 1)

    # -- the decision ladder ------------------------------------------------

    def decide(self, spec: JobSpec, *, now: float,
               backlog_seconds: float,
               queue_depth: int) -> AdmissionDecision:
        """Admit (possibly degraded) or raise a typed rejection."""
        lanes = self.fleet.dispatchable(now)
        if not lanes:
            self.rejected += 1
            raise AdmissionError(
                f"job {spec.job_id}: no dispatchable device lane "
                f"(all lost or breaker-open) at t={now:.6f}"
            )
        if queue_depth >= self.max_queue_depth:
            self.shed += 1
            raise OverloadError(
                f"job {spec.job_id}: queue at hard cap "
                f"({queue_depth}/{self.max_queue_depth})"
            )

        mode = spec.mode
        degraded = False
        if backlog_seconds > self.overload_backlog_seconds:
            if spec.mode == "exact":
                if spec.allow_degrade:
                    mode, degraded = "fast", True
                else:
                    self.shed += 1
                    raise OverloadError(
                        f"job {spec.job_id}: backlog "
                        f"{backlog_seconds * 1e3:.2f} ms over budget "
                        f"{self.overload_backlog_seconds * 1e3:.2f} ms and "
                        "tenant forbids exact->fast degradation"
                    )

        wait = backlog_seconds / len(lanes)
        retries = self.retry_budget_seconds(spec)

        quote = self.best_quote(spec, mode, lanes)
        estimate = wait + quote.service_seconds + retries
        if (spec.deadline_seconds is not None
                and estimate > spec.deadline_seconds):
            # One rung left on the ladder: try the degraded tier.
            if mode == "exact" and spec.allow_degrade:
                quote = self.best_quote(spec, "fast", lanes)
                estimate = wait + quote.service_seconds + retries
                mode, degraded = "fast", True
            if estimate > spec.deadline_seconds:
                self.rejected += 1
                raise AdmissionError(
                    f"job {spec.job_id}: deadline "
                    f"{spec.deadline_seconds * 1e3:.2f} ms infeasible — "
                    f"estimate {estimate * 1e3:.2f} ms (wait "
                    f"{wait * 1e3:.2f} + service "
                    f"{quote.service_seconds * 1e3:.2f} + retry budget "
                    f"{retries * 1e3:.2f})"
                )

        self.admitted += 1
        if degraded:
            self.degraded += 1
        return AdmissionDecision(mode_served=mode, degraded=degraded,
                                 quote=quote, estimate_seconds=estimate)

    def to_dict(self) -> dict[str, Any]:
        return {
            "admitted": self.admitted,
            "degraded": self.degraded,
            "shed": self.shed,
            "rejected": self.rejected,
            "max_queue_depth": self.max_queue_depth,
            "overload_backlog_seconds": self.overload_backlog_seconds,
        }
