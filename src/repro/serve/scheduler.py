"""The asyncio fleet scheduler: admit, queue, shard, survive, answer.

:class:`FleetScheduler` accepts concurrent advection jobs and drives
them across the simulated device fleet under deterministic virtual time
(:mod:`repro.serve.clock`).  The life of a job:

1. **Cache** — the input fingerprint x mode is looked up; a hit answers
   instantly from the host, no device time billed.
2. **Admission** — the :class:`~repro.serve.admission.AdmissionController`
   prices the job with the :mod:`repro.tune` cost model and either
   admits (possibly degrading exact->fast), or raises a typed
   rejection.  Admitted jobs enter an earliest-deadline-first queue.
3. **Dispatch** — one worker per device lane pulls jobs.  Each dispatch
   draws the fault plan's ``device`` site for its lane: a drawn fault
   kills the device mid-job (permanently for ``loss``, for the spec's
   downtime on ``blip``), trips the lane's circuit breaker open, and
   *reshards* the in-flight job back onto the queue for a survivor.
4. **Billing** — the lane runs its namespaced overlapped schedule
   through the discrete-event simulator; injected transfer faults cost
   redrives (breaker evidence) or, exhausted, reshard the job.
5. **Answer** — the numeric sources are computed on the *host* by the
   device-independent functional path, so where a job ran — or how
   often it was resharded — can never change its bytes.  Exact-tier
   jobs additionally run the cycle-accurate engine for their stats.
   The checksum over the sources is the bit-identity witness the chaos
   gate compares across legs.

Recovery: a worker whose breaker is open sleeps until the half-open
probe is due, probes the device, and either re-closes the breaker
(lane re-admitted) or re-opens it for another cooldown.  If every lane
is permanently lost, all unresolved jobs fail with a typed
:class:`~repro.serve.errors.FleetDownError` — never a hang.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import RetryExhaustedError, WatchdogTimeout
from repro.faults.retry import RetryPolicy
from repro.kernel.functional import execute_chunked
from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.clock import VirtualClock, run_virtual
from repro.serve.errors import (DeadlineExceededError, FleetDownError,
                                ReshardExhaustedError)
from repro.serve.fleet import DeviceLane, Fleet
from repro.serve.job import (JobResult, JobSpec, checksum_sources,
                             fingerprint_fields)
from repro.tune.admission import serve_config

if TYPE_CHECKING:
    from repro.core.fields import FieldSet
    from repro.faults.plan import FaultPlan
    from repro.observe.metrics import MetricRegistry
    from repro.observe.trace import Tracer

__all__ = ["FleetScheduler", "JobOutcome", "DEVICE_LOSS_FRACTION",
           "DEFAULT_BLIP_SECONDS"]

#: Fraction of a job's service time that elapses before a drawn device
#: fault strikes — the device dies mid-job, not between jobs.
DEVICE_LOSS_FRACTION: float = 0.5

#: Downtime of a ``blip`` fault whose spec left ``seconds`` unset.
DEFAULT_BLIP_SECONDS: float = 0.02

#: Modelled cost of one half-open health probe.
PROBE_SECONDS: float = 1e-4


@dataclass
class _JobRecord:
    """Scheduler-internal state of one admitted job."""

    spec: JobSpec
    decision: AdmissionDecision
    fields: "FieldSet"
    fingerprint: str
    submitted_at: float
    seq: int
    future: "asyncio.Future[JobResult]"
    reshards: int = 0
    redrives: int = 0
    #: set by a reshard, cleared by the worker that picks the job up.
    resharded_flag: bool = False
    last_lane: str | None = None

    @property
    def deadline_at(self) -> float | None:
        if self.spec.deadline_seconds is None:
            return None
        return self.submitted_at + self.spec.deadline_seconds

    def priority(self) -> tuple[float, int]:
        deadline = self.deadline_at
        return (math.inf if deadline is None else deadline, self.seq)


@dataclass(frozen=True)
class JobOutcome:
    """One submission's final fate: a result or a typed error."""

    spec: JobSpec
    result: JobResult | None = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None


class FleetScheduler:
    """Deterministic asyncio scheduler over a simulated device fleet."""

    def __init__(self, fleet: Fleet, *,
                 clock: VirtualClock | None = None,
                 fault_plan: "FaultPlan | None" = None,
                 retry: RetryPolicy | None = None,
                 admission: AdmissionController | None = None,
                 cache: ResultCache | None = None,
                 metrics: "MetricRegistry | None" = None,
                 tracer: "Tracer | None" = None,
                 watchdog_seconds: float | None = None,
                 max_reshards: int = 3,
                 blip_seconds: float = DEFAULT_BLIP_SECONDS) -> None:
        self.fleet = fleet
        self.clock = clock if clock is not None else VirtualClock()
        self.fault_plan = fault_plan
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, base_delay=1e-4,
        )
        self.admission = admission if admission is not None else (
            AdmissionController(fleet, retry=self.retry)
        )
        self.cache = cache if cache is not None else ResultCache()
        self.metrics = metrics
        self.tracer = tracer
        self.watchdog_seconds = watchdog_seconds
        self.max_reshards = max_reshards
        self.blip_seconds = blip_seconds

        self._queue: "asyncio.PriorityQueue[tuple[float, int, str]]" | None \
            = None
        self._records: dict[str, _JobRecord] = {}
        self._results: list[JobResult] = []
        self._seq = 0
        self._queued = 0
        self._backlog_seconds = 0.0
        self._workers: list["asyncio.Task[None]"] = []
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    def _start(self) -> None:
        """Create loop-bound state and lane workers (idempotent)."""
        if self._started:
            return
        self._queue = asyncio.PriorityQueue()
        self._workers = [
            asyncio.ensure_future(self._lane_worker(lane))
            for lane in self.fleet.lanes
        ]
        self._started = True

    async def _shutdown(self) -> None:
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._workers = []
        self._started = False

    # -- submission ---------------------------------------------------------

    async def submit(self, spec: JobSpec) -> JobResult:
        """Submit one job; returns its result or raises a typed error."""
        self._start()
        assert self._queue is not None
        now = self.clock.now
        fields = spec.fields()
        fingerprint = fingerprint_fields(fields)
        if spec.scenario is not None:
            # A scenario job's numbers come from a different kernel, so
            # its results must never collide with an advection job that
            # happens to carry identical input bytes.
            fingerprint = f"{spec.scenario}:{fingerprint}"

        entry = self.cache.get(fingerprint, spec.mode)
        if entry is not None:
            result = JobResult(
                job_id=spec.job_id, tenant=spec.tenant, device="cache",
                mode_served=spec.mode, degraded=False, cache_hit=True,
                submitted_at=now, finished_at=now,
                checksum=entry.checksum, stats_cycles=entry.stats_cycles,
            )
            self._account(result)
            return result

        decision = self.admission.decide(
            spec, now=now, backlog_seconds=self._backlog_seconds,
            queue_depth=self._queued,
        )

        loop = asyncio.get_running_loop()
        self._seq += 1
        record = _JobRecord(
            spec=spec, decision=decision, fields=fields,
            fingerprint=fingerprint, submitted_at=now, seq=self._seq,
            future=loop.create_future(),
        )
        self._records[spec.job_id] = record
        self._enqueue(record)
        if self.tracer is not None:
            self.tracer.instant("admit", "queue", ts=now,
                                job=spec.job_id, mode=decision.mode_served)
        return await record.future

    def _enqueue(self, record: _JobRecord) -> None:
        assert self._queue is not None
        deadline_key, seq = record.priority()
        self._queue.put_nowait((deadline_key, seq, record.spec.job_id))
        self._queued += 1
        self._backlog_seconds += record.decision.quote.service_seconds
        if self.metrics is not None:
            self.metrics.gauge(
                "serve_queue_depth",
                "high-water mark of the admitted-job queue",
            ).set_max(self._queued)

    # -- completion helpers -------------------------------------------------

    def _account(self, result: JobResult) -> None:
        self._results.append(result)
        if self.metrics is not None:
            self.metrics.counter(
                "serve_jobs_total", "completed jobs by tenant and path",
            ).inc(tenant=result.tenant, device=result.device,
                  mode=result.mode_served,
                  cache="hit" if result.cache_hit else "miss")
            self.metrics.histogram(
                "serve_latency_seconds", "job latency by tenant",
            ).observe(result.latency_seconds, tenant=result.tenant)

    def _resolve(self, record: _JobRecord, result: JobResult) -> None:
        if not record.future.done():
            record.future.set_result(result)
            self._account(result)

    def _fail(self, record: _JobRecord, error: BaseException) -> None:
        if not record.future.done():
            record.future.set_exception(error)
            if self.metrics is not None:
                self.metrics.counter(
                    "serve_failures_total", "typed job failures by class",
                ).inc(tenant=record.spec.tenant,
                      error=type(error).__name__)

    def _fail_all_unresolved(self, reason: str) -> None:
        for record in self._records.values():
            if not record.future.done():
                self._fail(record, FleetDownError(
                    f"job {record.spec.job_id}: {reason}"
                ))

    # -- lane workers -------------------------------------------------------

    async def _lane_worker(self, lane: DeviceLane) -> None:
        assert self._queue is not None
        while True:
            if not lane.breaker.allows_dispatch():
                retired = await self._recover(lane)
                if retired:
                    return
                continue
            _, _, job_id = await self._queue.get()
            record = self._records[job_id]
            self._queued -= 1
            self._backlog_seconds = max(
                0.0,
                self._backlog_seconds
                - record.decision.quote.service_seconds,
            )
            if record.future.done():
                continue  # failed while queued (watchdog / fleet-down)
            if record.resharded_flag:
                record.resharded_flag = False
                if record.last_lane != lane.name:
                    lane.reshards_received += 1
            now = self.clock.now
            deadline = record.deadline_at
            if deadline is not None and now > deadline:
                self._fail(record, DeadlineExceededError(
                    f"job {job_id}: deadline blew while queued "
                    f"({now:.6f} > {deadline:.6f})"
                ))
                continue
            await self._serve_on(lane, record)

    async def _recover(self, lane: DeviceLane) -> bool:
        """Breaker-open lane: wait out the cooldown, probe, maybe retire.

        Returns True when the lane is permanently lost and its worker
        should exit.
        """
        if lane.lost_until == math.inf:
            return True
        wait = max(lane.breaker.probe_at() - self.clock.now, 0.0)
        await self.clock.sleep(wait)
        lane.breaker.begin_probe(self.clock.now)
        await self.clock.sleep(PROBE_SECONDS)
        now = self.clock.now
        if lane.probe_healthy(now):
            lane.revive()
            lane.breaker.record_success(now)
            if self.tracer is not None:
                self.tracer.instant("probe-ok", lane.name, ts=now)
        else:
            lane.breaker.record_failure(now, "probe: device still down")
            if self.tracer is not None:
                self.tracer.instant("probe-fail", lane.name, ts=now)
        if self.metrics is not None:
            self.metrics.counter(
                "serve_probes_total", "half-open probes by lane and fate",
            ).inc(lane=lane.name,
                  outcome="ok" if lane.lost_until is None else "fail")
        return False

    async def _serve_on(self, lane: DeviceLane, record: _JobRecord) -> None:
        spec = record.spec
        mode = record.decision.mode_served
        start = self.clock.now
        record.last_lane = lane.name
        job_retry = self.retry.for_job(spec.job_id)

        device_spec = (self.fault_plan.device_fault(lane.name)
                       if self.fault_plan is not None else None)
        if device_spec is not None:
            await self._device_down(lane, record, device_spec, mode)
            return

        deadline = record.deadline_at
        budget = None if deadline is None else max(deadline - start, 0.0)
        try:
            seconds, redrives = lane.service_seconds(
                spec, mode, fault_plan=self.fault_plan, retry=job_retry,
                watchdog_seconds=budget,
            )
        except WatchdogTimeout as err:
            await self.clock.sleep(budget or 0.0)
            now = self.clock.now
            lane.breaker.record_failure(now, "service watchdog")
            deadline_err = DeadlineExceededError(
                f"job {spec.job_id}: service watchdog fired on "
                f"{lane.name} at t={now:.6f} (deadline "
                f"{deadline if deadline is not None else 'none'})"
            )
            deadline_err.__cause__ = err
            self._fail(record, deadline_err)
            return
        except RetryExhaustedError as err:
            # The lane burned the whole transfer-retry budget: strong
            # breaker evidence, and the job deserves a survivor.
            await self.clock.sleep(record.decision.quote.service_seconds)
            now = self.clock.now
            for _ in range(max(job_retry.max_attempts - 1, 1)):
                lane.breaker.record_failure(now, "transfer retries exhausted")
            self._reshard_or_fail(record, lane, err,
                                  reason="transfer retries exhausted")
            return

        await self.clock.sleep(seconds)
        now = self.clock.now
        lane.jobs_served += 1
        record.redrives += redrives
        if redrives:
            for _ in range(redrives):
                lane.breaker.record_failure(now, "pcie redrive")
            if self.metrics is not None:
                self.metrics.counter(
                    "serve_redrives_total", "transfer redrives by lane",
                ).inc(lane=lane.name, amount=float(redrives))
        else:
            lane.breaker.record_success(now)

        if deadline is not None and now > deadline:
            self._fail(record, DeadlineExceededError(
                f"job {spec.job_id}: finished at t={now:.6f}, after "
                f"deadline t={deadline:.6f} (redrives={redrives})"
            ))
            return

        checksum, stats_cycles = self._compute(record, mode)
        result = JobResult(
            job_id=spec.job_id, tenant=spec.tenant, device=lane.name,
            mode_served=mode, degraded=record.decision.degraded,
            cache_hit=False, submitted_at=record.submitted_at,
            finished_at=now, checksum=checksum, stats_cycles=stats_cycles,
            reshards=record.reshards, transfer_redrives=record.redrives,
        )
        self._resolve(record, result)
        if self.tracer is not None:
            self.tracer.add_span(
                spec.job_id, lane.name, start, now, category="serve",
                tenant=spec.tenant, mode=mode, redrives=redrives,
                reshards=record.reshards,
            )

    async def _device_down(self, lane: DeviceLane, record: _JobRecord,
                           fault: Any, mode: str) -> None:
        """A drawn device fault: kill the lane mid-job, reshard the job."""
        clean_seconds, _ = lane.service_seconds(record.spec, mode)
        await self.clock.sleep(clean_seconds * DEVICE_LOSS_FRACTION)
        now = self.clock.now
        if fault.kind == "loss":
            downtime: float = math.inf
        else:
            downtime = (fault.seconds if fault.seconds is not None
                        else self.blip_seconds)
        lane.mark_lost(now + downtime)
        lane.breaker.force_open(now, f"device {fault.kind}")
        if self.tracer is not None:
            self.tracer.instant(f"device-{fault.kind}", lane.name, ts=now,
                                job=record.spec.job_id)
        if self.metrics is not None:
            self.metrics.counter(
                "serve_device_faults_total", "device faults by lane/kind",
            ).inc(lane=lane.name, kind=fault.kind)
        self._reshard_or_fail(
            record, lane, None, reason=f"device {fault.kind} on {lane.name}",
        )
        if not self.fleet.recoverable(now):
            self._fail_all_unresolved(
                "every device lane permanently lost"
            )

    def _reshard_or_fail(self, record: _JobRecord, lane: DeviceLane,
                         error: BaseException | None, *,
                         reason: str) -> None:
        record.reshards += 1
        if record.reshards > self.max_reshards:
            if error is None:
                error = ReshardExhaustedError(
                    f"job {record.spec.job_id}: resharded "
                    f"{record.reshards} times (budget "
                    f"{self.max_reshards}); last: {reason}"
                )
            self._fail(record, error)
            return
        record.resharded_flag = True
        self._enqueue(record)
        if self.metrics is not None:
            self.metrics.counter(
                "serve_reshards_total", "in-flight job reshards",
            ).inc(from_lane=lane.name, tenant=record.spec.tenant)
        if self.tracer is not None:
            self.tracer.instant("reshard", lane.name, ts=self.clock.now,
                                job=record.spec.job_id, reason=reason)

    # -- the answer ---------------------------------------------------------

    def _compute(self, record: _JobRecord,
                 mode: str) -> tuple[str, int | None]:
        """Host-side numeric result (+ exact-tier cycle stats).

        Sources always come from the device-independent functional
        path, so the checksum is a pure function of the input — the
        invariant that makes resharding and degradation bit-identical
        by construction.  Scenario jobs dispatch to the scenario's own
        kernel (reference numerics; its engine for exact-tier cycles).
        """
        stats_cycles: int | None = None
        if record.spec.scenario is not None:
            from repro.scenarios import get as get_scenario

            scenario = get_scenario(record.spec.scenario)
            sources = scenario.kernel.reference(record.fields)
            if mode == "exact":
                stats_cycles = scenario.kernel.run(
                    record.fields, mode="exact")[2]
        else:
            config = serve_config(record.spec.grid())
            sources = execute_chunked(config, record.fields)
            if mode == "exact":
                from repro.kernel.simulate import simulate_kernel

                sim = simulate_kernel(config, record.fields, mode="exact")
                stats_cycles = sim.total_cycles
        checksum = checksum_sources(sources)
        self.cache.put(record.fingerprint, mode,
                       CacheEntry(checksum=checksum, sources=sources,
                                  stats_cycles=stats_cycles))
        return checksum, stats_cycles

    # -- batch entry points -------------------------------------------------

    async def serve(self, arrivals: list[tuple[float, JobSpec]],
                    ) -> list[JobOutcome]:
        """Run a full arrival schedule; one outcome per submission.

        Typed :class:`~repro.errors.ReproError` failures become
        outcomes; anything else is a scheduler defect and propagates.
        """
        from repro.errors import ReproError

        self._start()
        watchdog_task = None
        if self.watchdog_seconds is not None:
            watchdog_task = asyncio.ensure_future(self._global_watchdog())
        try:
            ordered = sorted(arrivals, key=lambda pair: pair[0])
            submissions: list[tuple[JobSpec, asyncio.Task[JobResult]]] = []
            for at, spec in ordered:
                if at > self.clock.now:
                    await self.clock.sleep(at - self.clock.now)
                submissions.append(
                    (spec, asyncio.ensure_future(self.submit(spec)))
                )
            outcomes: list[JobOutcome] = []
            for spec, task in submissions:
                try:
                    outcomes.append(JobOutcome(spec=spec,
                                               result=await task))
                except ReproError as err:
                    outcomes.append(JobOutcome(spec=spec, error=err))
            return outcomes
        finally:
            if watchdog_task is not None:
                watchdog_task.cancel()
                try:
                    await watchdog_task
                except asyncio.CancelledError:
                    pass
            await self._shutdown()

    def serve_sync(self, arrivals: list[tuple[float, JobSpec]],
                   ) -> list[JobOutcome]:
        """:meth:`serve` under :func:`~repro.serve.clock.run_virtual`."""
        return run_virtual(self.clock, self.serve(arrivals))

    async def _global_watchdog(self) -> None:
        """Hard bound on the whole run's modelled duration."""
        assert self.watchdog_seconds is not None
        await self.clock.sleep(self.watchdog_seconds)
        for record in self._records.values():
            if not record.future.done():
                self._fail(record, WatchdogTimeout(
                    f"job {record.spec.job_id}: serve watchdog fired at "
                    f"t={self.clock.now:.6f} "
                    f"(budget {self.watchdog_seconds})"
                ))

    # -- reporting ----------------------------------------------------------

    def completed_results(self) -> list[JobResult]:
        return list(self._results)

    def to_dict(self) -> dict[str, Any]:
        return {
            "fleet": self.fleet.to_dict(),
            "admission": self.admission.to_dict(),
            "cache": self.cache.to_dict(),
            "queued": self._queued,
            "backlog_seconds": self._backlog_seconds,
        }
