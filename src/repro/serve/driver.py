"""Seeded Poisson load generation and the serve-run report.

:class:`PoissonLoad` describes an arrival process — rate, job count,
tenant mix, exact-tier fraction, deadline policy — and expands
deterministically (`numpy` PCG64 stream) into concrete
``(arrival_time, JobSpec)`` pairs, so a chaos leg and its golden leg
replay byte-for-byte the same offered load.

:class:`ServeReport` folds one run's outcomes into the quantities the
benchmark gates on: sustained jobs per modelled second, p50/p99
latency, per-tenant rollups, degradation/reshard/cache counters,
admission decisions and every breaker transition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.job import JobSpec
from repro.serve.scheduler import FleetScheduler, JobOutcome

__all__ = ["PoissonLoad", "build_arrivals", "percentile", "ServeReport",
           "run_load"]


@dataclass(frozen=True)
class PoissonLoad:
    """One deterministic offered-load description."""

    jobs: int = 24
    #: mean arrivals per modelled second.
    rate_hz: float = 300.0
    seed: int = 0
    nx: int = 8
    ny: int = 9
    nz: int = 8
    tenants: tuple[str, ...] = ("acme", "birch")
    #: fraction of jobs requesting the exact (audit) tier.
    exact_fraction: float = 0.25
    #: of those, fraction whose tenant forbids degradation.
    no_degrade_fraction: float = 0.25
    #: modelled-seconds deadline stamped on every job (None = none).
    deadline_seconds: float | None = None
    #: distinct wind seeds cycled across jobs (< jobs => cache hits).
    distinct_inputs: int = 8
    #: registered workload-suite scenario every job serves (None =
    #: plain advection); admission quotes scale by its flops_scale.
    scenario: str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.rate_hz <= 0:
            raise ConfigurationError(
                f"rate_hz must be positive, got {self.rate_hz}"
            )
        if not self.tenants:
            raise ConfigurationError("need at least one tenant")
        if not 0.0 <= self.exact_fraction <= 1.0:
            raise ConfigurationError(
                f"exact_fraction must be in [0, 1], got {self.exact_fraction}"
            )
        if not 0.0 <= self.no_degrade_fraction <= 1.0:
            raise ConfigurationError(
                "no_degrade_fraction must be in [0, 1], "
                f"got {self.no_degrade_fraction}"
            )
        if self.distinct_inputs < 1:
            raise ConfigurationError(
                f"distinct_inputs must be >= 1, got {self.distinct_inputs}"
            )

    def to_dict(self) -> dict[str, Any]:
        data = {
            "jobs": self.jobs,
            "rate_hz": self.rate_hz,
            "seed": self.seed,
            "grid": [self.nx, self.ny, self.nz],
            "tenants": list(self.tenants),
            "exact_fraction": self.exact_fraction,
            "no_degrade_fraction": self.no_degrade_fraction,
            "deadline_seconds": self.deadline_seconds,
            "distinct_inputs": self.distinct_inputs,
        }
        if self.scenario is not None:
            data["scenario"] = self.scenario
        return data


def build_arrivals(load: PoissonLoad) -> list[tuple[float, JobSpec]]:
    """Expand a load description into concrete (time, spec) pairs."""
    rng = np.random.default_rng(load.seed)
    arrivals: list[tuple[float, JobSpec]] = []
    now = 0.0
    for index in range(load.jobs):
        now += float(rng.exponential(1.0 / load.rate_hz))
        exact = bool(rng.random() < load.exact_fraction)
        no_degrade = exact and bool(rng.random() < load.no_degrade_fraction)
        spec = JobSpec(
            job_id=f"job-{index:04d}",
            tenant=load.tenants[index % len(load.tenants)],
            nx=load.nx, ny=load.ny, nz=load.nz,
            seed=load.seed * 1000 + index % load.distinct_inputs,
            mode="exact" if exact else "fast",
            allow_degrade=not no_degrade,
            deadline_seconds=load.deadline_seconds,
            scenario=load.scenario,
        )
        arrivals.append((now, spec))
    return arrivals


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(
            f"percentile fraction must be in [0, 1], got {fraction}"
        )
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(np.ceil(fraction
                                                    * len(ordered))) - 1))
    return ordered[rank]


@dataclass
class ServeReport:
    """Aggregate view of one serve run."""

    outcomes: list[JobOutcome]
    makespan_seconds: float
    fleet: dict[str, Any]
    admission: dict[str, Any]
    cache: dict[str, Any]
    load: dict[str, Any] = field(default_factory=dict)

    # -- derived ------------------------------------------------------------

    @property
    def completed(self) -> list[JobOutcome]:
        return [outcome for outcome in self.outcomes if outcome.ok]

    @property
    def failed(self) -> list[JobOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def latencies(self) -> list[float]:
        return [outcome.result.latency_seconds
                for outcome in self.completed
                if outcome.result is not None]

    @property
    def jobs_per_second(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return len(self.completed) / self.makespan_seconds

    def error_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.failed:
            name = type(outcome.error).__name__
            counts[name] = counts.get(name, 0) + 1
        return dict(sorted(counts.items()))

    def tenant_rollup(self) -> dict[str, dict[str, Any]]:
        rollup: dict[str, dict[str, Any]] = {}
        for outcome in self.outcomes:
            tenant = outcome.spec.tenant
            row = rollup.setdefault(tenant, {
                "submitted": 0, "completed": 0, "failed": 0,
                "degraded": 0, "cache_hits": 0, "latencies": [],
            })
            row["submitted"] += 1
            if outcome.ok and outcome.result is not None:
                row["completed"] += 1
                row["latencies"].append(outcome.result.latency_seconds)
                row["degraded"] += int(outcome.result.degraded)
                row["cache_hits"] += int(outcome.result.cache_hit)
            else:
                row["failed"] += 1
        for row in rollup.values():
            latencies = row.pop("latencies")
            row["p99_latency_seconds"] = percentile(latencies, 0.99)
        return rollup

    def counters(self) -> dict[str, int]:
        degraded = reshards = redrives = cache_hits = exact_served = 0
        for outcome in self.completed:
            result = outcome.result
            assert result is not None
            degraded += int(result.degraded)
            reshards += result.reshards
            redrives += result.transfer_redrives
            cache_hits += int(result.cache_hit)
            exact_served += int(result.mode_served == "exact")
        return {
            "degraded": degraded, "reshards": reshards,
            "redrives": redrives, "cache_hits": cache_hits,
            "exact_served": exact_served,
        }

    def breaker_transitions(self) -> list[dict[str, Any]]:
        transitions = [
            transition
            for lane in self.fleet.get("lanes", [])
            for transition in lane.get("breaker", {}).get("transitions", [])
        ]
        return sorted(transitions, key=lambda t: (t["at"], t["lane"]))

    def to_dict(self) -> dict[str, Any]:
        return {
            "submitted": len(self.outcomes),
            "completed": len(self.completed),
            "failed": len(self.failed),
            "errors": self.error_counts(),
            "makespan_seconds": self.makespan_seconds,
            "jobs_per_second": self.jobs_per_second,
            "p50_latency_seconds": percentile(self.latencies, 0.50),
            "p99_latency_seconds": percentile(self.latencies, 0.99),
            "counters": self.counters(),
            "tenants": self.tenant_rollup(),
            "admission": self.admission,
            "cache": self.cache,
            "fleet": self.fleet,
            "load": self.load,
            "results": [outcome.result.to_dict()
                        for outcome in self.completed
                        if outcome.result is not None],
        }

    def render_text(self) -> str:
        counters = self.counters()
        lines = [
            "serve report",
            "============",
            f"jobs: {len(self.outcomes)} submitted, "
            f"{len(self.completed)} completed, {len(self.failed)} failed",
            f"makespan: {self.makespan_seconds * 1e3:.3f} ms modelled "
            f"({self.jobs_per_second:.1f} jobs/s)",
            f"latency: p50 {percentile(self.latencies, 0.5) * 1e6:.1f} us, "
            f"p99 {percentile(self.latencies, 0.99) * 1e6:.1f} us",
            f"paths: {counters['cache_hits']} cache hits, "
            f"{counters['degraded']} degraded, "
            f"{counters['reshards']} reshards, "
            f"{counters['redrives']} redrives, "
            f"{counters['exact_served']} exact-tier",
        ]
        errors = self.error_counts()
        if errors:
            lines.append("errors: " + ", ".join(
                f"{name} x{count}" for name, count in errors.items()
            ))
        lines.append("tenants:")
        for tenant, row in sorted(self.tenant_rollup().items()):
            lines.append(
                f"  {tenant}: {row['completed']}/{row['submitted']} ok, "
                f"{row['failed']} failed, {row['degraded']} degraded, "
                f"p99 {row['p99_latency_seconds'] * 1e6:.1f} us"
            )
        transitions = self.breaker_transitions()
        if transitions:
            lines.append("breaker transitions:")
            for transition in transitions:
                lines.append(
                    f"  t={transition['at'] * 1e3:9.3f} ms "
                    f"{transition['lane']}: {transition['from']} -> "
                    f"{transition['to']} ({transition['reason']})"
                )
        return "\n".join(lines)


def run_load(scheduler: FleetScheduler, load: PoissonLoad) -> ServeReport:
    """Drive one load description through a scheduler, synchronously."""
    outcomes = scheduler.serve_sync(build_arrivals(load))
    return ServeReport(
        outcomes=outcomes,
        makespan_seconds=scheduler.clock.now,
        fleet=scheduler.fleet.to_dict(),
        admission=scheduler.admission.to_dict(),
        cache=scheduler.cache.to_dict(),
        load=load.to_dict(),
    )
