"""repro.serve: fault-tolerant advection-as-a-service fleet scheduling.

The serving layer turns the repository's device models into a
*simulated fleet* behind an asyncio scheduler: concurrent jobs are
priced for admission with the :mod:`repro.tune` cost model, sharded
across named device lanes, and answered bit-identically even while the
fault plane (:mod:`repro.faults`) kills devices under them.  See
:mod:`repro.serve.scheduler` for the job lifecycle,
:mod:`repro.serve.breaker` for per-device circuit breaking,
:mod:`repro.serve.admission` for the degrade-or-shed ladder,
:mod:`repro.serve.clock` for deterministic virtual time, and
``docs/serving.md`` for the architecture tour.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.breaker import BreakerState, BreakerTransition, CircuitBreaker
from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.clock import VirtualClock, run_virtual
from repro.serve.driver import (PoissonLoad, ServeReport, build_arrivals,
                                percentile, run_load)
from repro.serve.errors import (AdmissionError, DeadlineExceededError,
                                FleetDownError, OverloadError,
                                ReshardExhaustedError, SchedulerStallError,
                                ServeError)
from repro.serve.fleet import (DEFAULT_FLEET_SPEC, DeviceLane, Fleet,
                               parse_fleet_spec)
from repro.serve.job import (JobResult, JobSpec, checksum_sources,
                             fingerprint_fields)
from repro.serve.scheduler import FleetScheduler, JobOutcome

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionError",
    "BreakerState",
    "BreakerTransition",
    "CacheEntry",
    "CircuitBreaker",
    "DEFAULT_FLEET_SPEC",
    "DeadlineExceededError",
    "DeviceLane",
    "Fleet",
    "FleetDownError",
    "FleetScheduler",
    "JobOutcome",
    "JobResult",
    "JobSpec",
    "OverloadError",
    "PoissonLoad",
    "ReshardExhaustedError",
    "ResultCache",
    "SchedulerStallError",
    "ServeError",
    "ServeReport",
    "VirtualClock",
    "build_arrivals",
    "checksum_sources",
    "fingerprint_fields",
    "parse_fleet_spec",
    "percentile",
    "run_load",
    "run_virtual",
]
