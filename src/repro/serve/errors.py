"""Typed error taxonomy of the serving layer.

Every failure mode a tenant can observe is a distinct class, all rooted
at :class:`ServeError` (itself a :class:`~repro.errors.ReproError`), so
the fleet extends PR 3's invariant verbatim: an admitted job either
completes **bit-identical** to its fault-free run or raises one of these
types within its watchdog budget — never a hang, never a silent wrong
answer.

========================  ====================================================
error                     raised when
========================  ====================================================
AdmissionError            the fleet cannot meet the job's deadline (or has
                          no healthy lane) — rejected before queueing
OverloadError             admission shed the job under overload and the
                          tenant forbade the exact->fast downgrade
DeadlineExceededError     an admitted job missed its deadline (stale in the
                          queue, or the service watchdog fired mid-run)
FleetDownError            every device lane is permanently lost; queued and
                          future jobs cannot complete
ReshardExhaustedError     a job was resharded off dying devices more times
                          than the scheduler's reshard budget allows
SchedulerStallError       the virtual-time executor found no runnable task
                          and no pending timer — a scheduler bug surfaced as
                          a typed error instead of a hang
========================  ====================================================

Fault-plane errors (:class:`~repro.errors.RetryExhaustedError`,
:class:`~repro.errors.WatchdogTimeout`, ...) propagate unchanged when a
lane burns its transfer-retry budget, so callers keep the precise
failure mode.
"""

from __future__ import annotations

from repro.errors import FaultError, ReproError

__all__ = [
    "ServeError",
    "AdmissionError",
    "OverloadError",
    "DeadlineExceededError",
    "FleetDownError",
    "ReshardExhaustedError",
    "SchedulerStallError",
]


class ServeError(ReproError):
    """Base class for fleet-scheduler failures."""


class AdmissionError(ServeError):
    """The job was rejected at the front door (infeasible deadline,
    no healthy device lane, malformed request)."""


class OverloadError(AdmissionError):
    """The job was shed under overload: the backlog breached the
    admission controller's budget and the tenant's policy forbade the
    exact->fast downgrade (or the queue hit its hard cap)."""


class DeadlineExceededError(ServeError, FaultError):
    """An admitted job blew its deadline.

    Also a :class:`~repro.errors.FaultError`: deadline enforcement is
    the fleet's per-job watchdog, and resilience-layer callers that
    catch the fault family must see it.
    """


class FleetDownError(ServeError, FaultError):
    """Every device lane is permanently lost; the job cannot complete
    on any survivor."""


class ReshardExhaustedError(ServeError, FaultError):
    """A job was resharded more times than the scheduler's budget
    allows (devices kept dying under it); giving up is the typed
    alternative to a reshard livelock."""


class SchedulerStallError(ServeError):
    """The virtual-time executor stalled: no task is runnable and no
    timer is pending.  Indicates a scheduler defect; raising it is what
    keeps the 'never a hang' half of the invariant honest."""
