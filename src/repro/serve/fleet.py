"""The simulated device fleet: named lanes over the hardware models.

A fleet is parsed from a spec string like ``"2xu280+1xstratix10+cpu"``:
each term is ``[<count>x]<device>`` and expands to numbered *lanes*
(``u280-0``, ``u280-1``, ``stratix10-0``, ``cpu-0``).  A lane owns one
device model, one :class:`~repro.serve.breaker.CircuitBreaker`, and its
availability state — ``lost_until`` is the modelled time a blipped
device comes back (``inf`` for a permanent loss).

Lanes bill jobs with the *same* machinery the admission controller
quotes with: :func:`~repro.tune.admission.serve_session` chunking plus
the Fig. 6 overlapped schedule, run through the discrete-event
simulator so injected transfer faults occupy the PCIe engines for their
retries.  Every command in a lane's queue is namespaced with the lane
name (``"u280-0:h2d[3]"``), so a fault plan's ``transfer`` specs can
glob one device without striking its siblings.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Any

from repro.core.grid import Grid
from repro.errors import ConfigurationError
from repro.hardware import CPUModel, device_by_name
from repro.runtime.overlap import build_overlapped_schedule
from repro.runtime.session import AdvectionSession
from repro.serve.breaker import CircuitBreaker
from repro.serve.job import JobSpec
from repro.tune.admission import SERVE_X_CHUNKS, out_scale_for_mode, serve_session

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.faults.retry import RetryPolicy

__all__ = ["DeviceLane", "Fleet", "parse_fleet_spec", "DEFAULT_FLEET_SPEC"]

#: Two U280s and a Stratix 10 — the paper's boards, doubled on the
#: Xilinx side so device loss leaves a same-model survivor.
DEFAULT_FLEET_SPEC: str = "2xu280+1xstratix10"

_TERM = re.compile(r"^(?:(\d+)x)?([A-Za-z0-9_\-]+)$")


def parse_fleet_spec(spec: str) -> list[str]:
    """Expand ``"2xu280+cpu"`` into device names, one per lane."""
    names: list[str] = []
    for term in spec.split("+"):
        term = term.strip()
        if not term:
            raise ConfigurationError(
                f"empty term in fleet spec {spec!r}"
            )
        match = _TERM.match(term)
        if match is None:
            raise ConfigurationError(
                f"bad fleet term {term!r} (want [<count>x]<device>)"
            )
        count = int(match.group(1) or 1)
        if count < 1:
            raise ConfigurationError(
                f"fleet term {term!r}: count must be >= 1"
            )
        names.extend([match.group(2)] * count)
    if not names:
        raise ConfigurationError(f"fleet spec {spec!r} has no devices")
    return names


class DeviceLane:
    """One schedulable device within the fleet."""

    def __init__(self, name: str, device: Any, *,
                 failure_threshold: int = 3,
                 cooldown_seconds: float = 0.005,
                 x_chunks: int = SERVE_X_CHUNKS) -> None:
        self.name = name
        self.device = device
        self.x_chunks = x_chunks
        self.breaker = CircuitBreaker(
            name, failure_threshold=failure_threshold,
            cooldown_seconds=cooldown_seconds,
        )
        #: modelled time the device is down until (None = healthy;
        #: float("inf") = permanently lost).
        self.lost_until: float | None = None
        self.jobs_served = 0
        self.reshards_received = 0
        self._sessions: dict[tuple[int, int, int], AdvectionSession] = {}

    # -- availability -------------------------------------------------------

    @property
    def is_cpu(self) -> bool:
        return isinstance(self.device, CPUModel)

    def lost(self, now: float) -> bool:
        """Is the device down at modelled time ``now``?

        A blip's downtime elapsing does not by itself revive the lane:
        re-admission goes through the breaker's half-open probe, so the
        recovery sequence is observable.
        """
        return self.lost_until is not None and now < self.lost_until

    def mark_lost(self, until: float) -> None:
        self.lost_until = until

    def revive(self) -> None:
        self.lost_until = None

    def probe_healthy(self, now: float) -> bool:
        """Half-open probe outcome: has the downtime elapsed?"""
        return not self.lost(now)

    # -- billing ------------------------------------------------------------

    def session_for(self, grid: Grid) -> AdvectionSession:
        key = (grid.nx, grid.ny, grid.nz)
        session = self._sessions.get(key)
        if session is None:
            session = serve_session(self.device, grid,
                                    x_chunks=self.x_chunks)
            self._sessions[key] = session
        return session

    def service_seconds(self, spec: JobSpec, mode: str, *,
                        fault_plan: "FaultPlan | None" = None,
                        retry: "RetryPolicy | None" = None,
                        watchdog_seconds: float | None = None,
                        ) -> tuple[float, int]:
        """Bill one job: (modelled seconds, transfer redrives performed).

        Runs the lane's overlapped schedule through the discrete-event
        simulator.  Typed fault errors
        (:class:`~repro.errors.RetryExhaustedError`,
        :class:`~repro.errors.WatchdogTimeout`) propagate to the
        scheduler, which turns them into breaker evidence and reshards
        or fails the job.
        """
        grid = spec.grid()
        # Scenario jobs stretch kernel-busy time by the scenario's
        # operation intensity — the same scaling the admission quote
        # applied, so quote == bill fault-free.
        scale = spec.flops_scale()
        if self.is_cpu:
            return self.device.kernel_time(grid) * scale, 0
        from repro.runtime.simulator import simulate_schedule

        session = self.session_for(grid)
        chunks = session.chunk_work(grid, out_scale=out_scale_for_mode(mode))
        queue = build_overlapped_schedule(
            chunks, self.device.pcie, name_prefix=f"{self.name}:",
        )
        schedule = simulate_schedule(
            queue, fault_plan=fault_plan, retry=retry,
            watchdog_seconds=watchdog_seconds,
        )
        kernel_busy = sum(seconds for resource, seconds
                          in schedule.busy.items()
                          if resource.split(":")[-1].startswith("kernel"))
        seconds = (schedule.makespan
                   + getattr(self.device, "setup_seconds", 0.0)
                   + kernel_busy * (scale - 1.0))
        return seconds, len(schedule.retries)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "device": self.device.name,
            "lost_until": self.lost_until,
            "jobs_served": self.jobs_served,
            "reshards_received": self.reshards_received,
            "breaker": self.breaker.to_dict(),
        }


class Fleet:
    """All lanes plus fleet-level availability queries."""

    def __init__(self, lanes: list[DeviceLane]) -> None:
        if not lanes:
            raise ConfigurationError("a fleet needs at least one lane")
        names = [lane.name for lane in lanes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate lane names: {names}")
        self.lanes = lanes

    @classmethod
    def from_spec(cls, spec: str = DEFAULT_FLEET_SPEC, *,
                  failure_threshold: int = 3,
                  cooldown_seconds: float = 0.005,
                  x_chunks: int = SERVE_X_CHUNKS) -> "Fleet":
        counters: dict[str, int] = {}
        lanes = []
        for device_name in parse_fleet_spec(spec):
            device = device_by_name(device_name)
            ordinal = counters.get(device_name, 0)
            counters[device_name] = ordinal + 1
            lanes.append(DeviceLane(
                f"{device_name}-{ordinal}", device,
                failure_threshold=failure_threshold,
                cooldown_seconds=cooldown_seconds,
                x_chunks=x_chunks,
            ))
        return cls(lanes)

    def lane(self, name: str) -> DeviceLane:
        for lane in self.lanes:
            if lane.name == name:
                return lane
        raise ConfigurationError(f"no lane named {name!r}")

    def dispatchable(self, now: float) -> list[DeviceLane]:
        """Lanes whose breakers admit regular jobs right now."""
        return [lane for lane in self.lanes
                if lane.breaker.allows_dispatch() and not lane.lost(now)]

    def recoverable(self, now: float) -> bool:
        """Could *some* lane ever serve again (breaker probe or blip end)?"""
        return any(lane.lost_until is None or lane.lost_until < float("inf")
                   for lane in self.lanes)

    def device_types(self) -> list[Any]:
        """One device model per distinct type (for admission quotes)."""
        seen: dict[str, Any] = {}
        for lane in self.lanes:
            seen.setdefault(lane.device.name, lane.device)
        return list(seen.values())

    def to_dict(self) -> dict[str, Any]:
        return {"lanes": [lane.to_dict() for lane in self.lanes]}
