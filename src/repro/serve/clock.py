"""Deterministic virtual time for the asyncio fleet scheduler.

The serving layer is concurrent (jobs arrive, queue, shard and complete
while other jobs are in flight) but must stay *deterministic*: the chaos
gate replays a faulted run twice and demands identical traces, and the
bench records p99 latencies that cannot wobble with host load.  So the
scheduler never sleeps on the wall clock.  :class:`VirtualClock` owns
modelled time: ``await clock.sleep(dt)`` parks the coroutine on a heap
of timers, and :func:`run_virtual` drives the loop — settle every
runnable task, then pop the earliest timer and jump ``now`` straight to
it.  A million modelled seconds costs the same wall time as one.

The executor also closes the "never a hang" loophole: if no task is
runnable and no timer is pending while the root coroutine is
unfinished, real asyncio would block forever.  Here that state raises a
typed :class:`~repro.serve.errors.SchedulerStallError` instead.
"""

from __future__ import annotations

import asyncio
import contextlib
import heapq
from typing import Any, Coroutine, TypeVar

from repro.serve.errors import SchedulerStallError

__all__ = ["VirtualClock", "run_virtual", "DRAIN_ROUNDS"]

T = TypeVar("T")

#: Rounds of ``asyncio.sleep(0)`` used to settle ready tasks between
#: timer pops.  Each round lets every runnable task advance one step;
#: the drain stops early once the loop reaches a fixpoint (no sleeper
#: added, root not finished), so the constant is a safety bound on
#: pathological wake chains, not a hot loop.
DRAIN_ROUNDS: int = 64


class VirtualClock:
    """Modelled-seconds clock backed by a timer heap."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, asyncio.Future[None]]] = []
        self._seq = 0

    async def sleep(self, seconds: float) -> None:
        """Suspend the calling task for ``seconds`` of modelled time.

        ``seconds <= 0`` still yields once so peers scheduled at the
        same instant interleave deterministically (heap order = FIFO of
        registration).
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future[None] = loop.create_future()
        self._seq += 1
        heapq.heappush(self._heap, (self.now + max(seconds, 0.0),
                                    self._seq, future))
        await future

    def pending_timers(self) -> int:
        """Timers (sleeping tasks) still registered."""
        return sum(1 for _, _, fut in self._heap if not fut.cancelled())

    def _advance(self) -> bool:
        """Pop the earliest live timer, jump ``now`` to it, wake the task."""
        while self._heap:
            wake_at, _, future = heapq.heappop(self._heap)
            if future.cancelled():
                continue
            self.now = max(self.now, wake_at)
            future.set_result(None)
            return True
        return False


async def _settle(root: "asyncio.Task[Any]") -> None:
    """Run ready callbacks until the loop quiesces (bounded rounds)."""
    for _ in range(DRAIN_ROUNDS):
        if root.done():
            return
        await asyncio.sleep(0)


def run_virtual(clock: VirtualClock, coro: Coroutine[Any, Any, T]) -> T:
    """Execute ``coro`` to completion under ``clock``'s virtual time.

    Alternates settling runnable tasks with advancing the clock to the
    next timer.  If the root coroutine is unfinished with nothing
    runnable and no timer pending, raises
    :class:`~repro.serve.errors.SchedulerStallError` (after cancelling
    the root) — a typed error where plain asyncio would hang.
    """

    async def _drive() -> T:
        root = asyncio.ensure_future(coro)
        try:
            while True:
                await _settle(root)
                if root.done():
                    return root.result()
                if not clock._advance():
                    # One more settle pass: a task woken in the final
                    # drain round may still finish the root.
                    await _settle(root)
                    if root.done():
                        return root.result()
                    if not clock._advance():
                        root.cancel()
                        with contextlib.suppress(asyncio.CancelledError):
                            await root
                        raise SchedulerStallError(
                            "virtual-time executor stalled: no runnable "
                            "task and no pending timer while the serve "
                            "run is unfinished (scheduler defect)"
                        )
        finally:
            if not root.done():
                root.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await root

    return asyncio.run(_drive())
