"""Job requests, results and the content fingerprints that key the cache.

A :class:`JobSpec` is a tenant's request: grid dimensions plus the wind
seed (inputs are generated deterministically with
:func:`~repro.core.wind.random_wind`, so two jobs with the same spec
carry bit-identical fields), the service mode, and the tenant's
robustness policy — may the fleet downgrade ``exact`` to ``fast`` under
overload, and by when must the job finish.

A :class:`JobResult` is the receipt: where and how the job actually ran
(device lane, mode served, degraded/cache-hit flags, reshard and
transfer-redrive counts) plus the blake2b checksum of the numeric
sources — the quantity the chaos gate compares against the fault-free
golden run to enforce bit-identity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.fields import FieldSet, SourceSet
from repro.core.grid import Grid
from repro.core.wind import random_wind
from repro.serve.errors import AdmissionError
from repro.tune.admission import SERVE_MODES

__all__ = ["JobSpec", "JobResult", "fingerprint_fields", "checksum_sources"]


def fingerprint_fields(fields: FieldSet) -> str:
    """Content fingerprint of one input field set (cache key half).

    Hashes the raw bytes of u, v, w plus the grid dimensions, so two
    numerically identical inputs collide (good: second one is a cache
    hit) and any single-bit difference separates them.
    """
    digest = hashlib.blake2b(digest_size=16)
    grid = fields.grid
    digest.update(f"{grid.nx}x{grid.ny}x{grid.nz}".encode())
    for component in (fields.u, fields.v, fields.w):
        digest.update(component.tobytes())
    return digest.hexdigest()


def checksum_sources(sources: SourceSet) -> str:
    """Bit-exact checksum of one job's numeric result."""
    digest = hashlib.blake2b(digest_size=16)
    for component in (sources.su, sources.sv, sources.sw):
        digest.update(component.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One tenant request to the advection service."""

    job_id: str
    tenant: str = "tenant0"
    nx: int = 8
    ny: int = 9
    nz: int = 8
    #: wind-field seed; the input is ``random_wind(grid, seed, magnitude)``.
    seed: int = 0
    magnitude: float = 2.0
    #: requested service tier: "exact" delivers cycle-accurate RunStats
    #: alongside the sources, "fast" the sources only (same numbers).
    mode: str = "exact"
    #: may the fleet downgrade exact->fast under overload?
    allow_degrade: bool = True
    #: modelled-seconds deadline measured from submission (None = none).
    deadline_seconds: float | None = None
    #: registered workload-suite scenario to serve instead of plain
    #: advection (None = the default advection kernel).  The scenario
    #: supplies the input generator, the numeric kernel, and — via its
    #: operation-intensity ``flops_scale`` — the admission price.
    scenario: str | None = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise AdmissionError("job_id must be non-empty")
        if self.mode not in SERVE_MODES:
            raise AdmissionError(
                f"job {self.job_id}: unknown mode {self.mode!r}; "
                f"known: {list(SERVE_MODES)}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise AdmissionError(
                f"job {self.job_id}: deadline must be positive, "
                f"got {self.deadline_seconds}"
            )
        if self.scenario is not None:
            from repro.errors import ConfigurationError
            from repro.scenarios import get as get_scenario

            try:
                get_scenario(self.scenario)
            except ConfigurationError as error:
                raise AdmissionError(
                    f"job {self.job_id}: {error}") from error

    def grid(self) -> Grid:
        return Grid(self.nx, self.ny, self.nz)

    def fields(self) -> FieldSet:
        """Deterministically regenerate this job's input field set.

        Scenario jobs use the scenario's own wind generator and boundary
        variant (first batch); plain jobs draw the default random wind.
        """
        if self.scenario is not None:
            from repro.scenarios import get as get_scenario

            return get_scenario(self.scenario).make_fields(
                self.grid(), seed=self.seed)
        return random_wind(self.grid(), seed=self.seed,
                           magnitude=self.magnitude)

    def flops_scale(self) -> float:
        """Operation intensity relative to the advection kernel (1.0
        for plain jobs) — the admission controller and the device lanes
        both scale kernel-busy time by this, so quote == bill."""
        if self.scenario is None:
            return 1.0
        from repro.scenarios import get as get_scenario

        return get_scenario(self.scenario).flops_scale

    def dims(self) -> tuple[int, int, int]:
        return (self.nx, self.ny, self.nz)


@dataclass
class JobResult:
    """Receipt for one completed job."""

    job_id: str
    tenant: str
    #: lane that produced the result ("u280-0"; "cache" on a cache hit).
    device: str
    #: tier actually served (may be "fast" for a degraded exact request).
    mode_served: str
    degraded: bool
    cache_hit: bool
    submitted_at: float
    finished_at: float
    #: blake2b over the numeric sources — the bit-identity witness.
    checksum: str
    #: cycle-accurate total (exact tier only; None for fast).
    stats_cycles: int | None = None
    reshards: int = 0
    transfer_redrives: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def latency_seconds(self) -> float:
        return self.finished_at - self.submitted_at

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "device": self.device,
            "mode_served": self.mode_served,
            "degraded": self.degraded,
            "cache_hit": self.cache_hit,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "latency_seconds": self.latency_seconds,
            "checksum": self.checksum,
            "stats_cycles": self.stats_cycles,
            "reshards": self.reshards,
            "transfer_redrives": self.transfer_redrives,
            **({"extra": self.extra} if self.extra else {}),
        }
