"""Numerical-error studies for reduced-precision advection.

Quantifies what §V's proposal would cost in accuracy: run the quantised
datapath next to the float64 reference over representative wind fields
and report absolute/relative error statistics, plus drift over a short
time integration (errors compound across timesteps — the quantity an
atmospheric modeller actually cares about).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet
from repro.core.grid import Grid
from repro.core.reference import advect_reference
from repro.core.timestepping import AdvectionIntegrator
from repro.precision.formats import NumberFormat
from repro.precision.kernel import advect_quantised

__all__ = ["PrecisionErrorReport", "precision_error_study",
           "integration_drift"]


@dataclass(frozen=True)
class PrecisionErrorReport:
    """Error of one format against the float64 reference."""

    format_name: str
    bits: int
    max_abs_error: float
    rms_error: float
    max_rel_error: float
    reference_scale: float

    @property
    def significant_digits(self) -> float:
        """Approximate decimal digits retained relative to the field scale."""
        if self.max_abs_error == 0.0:
            return 16.0
        return float(np.log10(self.reference_scale
                              / self.max_abs_error))


def precision_error_study(fields: FieldSet, fmt: NumberFormat,
                          coeffs: AdvectionCoefficients | None = None,
                          ) -> PrecisionErrorReport:
    """One-invocation error of ``fmt`` against the float64 reference."""
    grid = fields.grid
    if coeffs is None:
        coeffs = AdvectionCoefficients.uniform(grid)
    reference = advect_reference(fields, coeffs)
    quantised = advect_quantised(fields, fmt, coeffs)

    errors = []
    scales = []
    rels = []
    for ref, qnt in zip(reference.as_tuple(), quantised.as_tuple()):
        diff = np.abs(ref - qnt)
        errors.append(diff)
        scales.append(np.abs(ref).max(initial=0.0))
        nonzero = np.abs(ref) > 1e-300
        if np.any(nonzero):
            rels.append((diff[nonzero] / np.abs(ref[nonzero])).max())
    all_errors = np.concatenate([e.ravel() for e in errors])
    scale = max(scales) if scales else 0.0
    return PrecisionErrorReport(
        format_name=fmt.name,
        bits=fmt.bits,
        max_abs_error=float(all_errors.max(initial=0.0)),
        rms_error=float(np.sqrt(np.mean(all_errors**2))),
        max_rel_error=float(max(rels)) if rels else 0.0,
        reference_scale=float(scale),
    )


def integration_drift(grid: Grid, fields: FieldSet, fmt: NumberFormat,
                      *, steps: int, dt: float,
                      coeffs: AdvectionCoefficients | None = None) -> float:
    """Max-norm state divergence after ``steps`` of quantised integration.

    Runs two identical integrations — one with the float64 reference, one
    with the quantised datapath — and returns the final max-abs difference
    of the wind state, the compounded cost of the narrow datapath.
    """
    if coeffs is None:
        coeffs = AdvectionCoefficients.uniform(grid)
    ref = AdvectionIntegrator(fields=fields.copy(), dt=dt, coeffs=coeffs)
    qnt = AdvectionIntegrator(
        fields=fields.copy(), dt=dt, coeffs=coeffs,
        advect=lambda f: advect_quantised(f, fmt, coeffs),
    )
    ref.run(steps)
    qnt.run(steps)
    return max(
        float(np.abs(getattr(ref.fields, name)
                     - getattr(qnt.fields, name)).max(initial=0.0))
        for name in ("u", "v", "w")
    )
