"""Reduced-precision and fixed-point arithmetic (the paper's §V future work).

The paper's conclusion: "exploring the role of reduced precision and
fixed point arithmetic would be interesting.  This could reduce the
amount of resource required for our shift buffers and advection
calculations, as such enabling more kernels to be fitted onto the chip."

This subpackage makes that exploration runnable:

* :mod:`repro.precision.formats` — float64/float32/bfloat16-style formats
  and Q-format fixed point, with value-level quantisation;
* :mod:`repro.precision.kernel` — the PW advection evaluated with every
  intermediate rounded to a chosen format (a bit-accurate model of a
  reduced-precision datapath);
* :mod:`repro.precision.analysis` — numerical-error studies against the
  float64 reference;
* :mod:`repro.precision.resources` — precision-dependent operator and
  buffer costs, so the device models answer "how many kernels would fit".
"""

from repro.precision.analysis import PrecisionErrorReport, precision_error_study
from repro.precision.formats import (
    BFLOAT16,
    FLOAT32,
    FLOAT64,
    FixedPointFormat,
    FloatFormat,
    NumberFormat,
)
from repro.precision.kernel import advect_quantised
from repro.precision.resources import (
    precision_kernel_resources,
    precision_fit_report,
)

__all__ = [
    "NumberFormat",
    "FloatFormat",
    "FixedPointFormat",
    "FLOAT64",
    "FLOAT32",
    "BFLOAT16",
    "advect_quantised",
    "precision_error_study",
    "PrecisionErrorReport",
    "precision_kernel_resources",
    "precision_fit_report",
]
