"""PW advection through a reduced-precision datapath.

Every input, coefficient, and *intermediate operation result* is rounded
to the chosen :class:`~repro.precision.formats.NumberFormat` — a value-
accurate model of a datapath built from narrow operators, which is what
the paper's §V proposes building on FPGAs and Versal AI engines.

With :data:`~repro.precision.formats.FLOAT64` the rounding is the
identity and the result reproduces the reference bit for bit (tested),
which pins the operation ordering to the specification.
"""

from __future__ import annotations

import numpy as np

from repro.core.coefficients import AdvectionCoefficients
from repro.core.fields import FieldSet, SourceSet
from repro.precision.formats import NumberFormat

__all__ = ["advect_quantised"]


def advect_quantised(fields: FieldSet, fmt: NumberFormat,
                     coeffs: AdvectionCoefficients | None = None) -> SourceSet:
    """Compute PW source terms with every operation rounded to ``fmt``."""
    grid = fields.grid
    if coeffs is None:
        coeffs = AdvectionCoefficients.uniform(grid)
    if coeffs.nz != grid.nz:
        raise ValueError(
            f"coefficients are for nz={coeffs.nz}, grid has nz={grid.nz}"
        )
    out = SourceSet.zeros(grid)
    q = fmt.quantise

    def add(a, b):
        return q(a + b)

    def sub(a, b):
        return q(a - b)

    def mul(a, b):
        return q(a * b)

    # Quantise the stored operands once, like narrow on-chip buffers would.
    u = q(fields.u)
    v = q(fields.v)
    w = q(fields.w)
    tcx = q(coeffs.tcx)
    tcy = q(coeffs.tcy)
    tzc1 = q(coeffs.tzc1)
    tzc2 = q(coeffs.tzc2)
    tzd1 = q(coeffs.tzd1)
    tzd2 = q(coeffs.tzd2)

    nz = grid.nz
    C = (slice(1, -1), slice(1, -1))
    IM1 = (slice(0, -2), slice(1, -1))
    IP1 = (slice(2, None), slice(1, -1))
    JM1 = (slice(1, -1), slice(0, -2))
    JP1 = (slice(1, -1), slice(2, None))
    IP1_JM1 = (slice(2, None), slice(0, -2))
    IM1_JP1 = (slice(0, -2), slice(2, None))

    K = slice(1, None)
    K_MID = slice(1, nz - 1)
    LO = slice(0, nz - 2)
    HI = slice(2, nz)

    def at(view, ks):
        return view[:, :, ks]

    # ------------------------------------------------------------------ U --
    su = out.su
    su[:, :, K] = mul(tcx, sub(
        mul(at(u[IM1], K), add(at(u[C], K), at(u[IM1], K))),
        mul(at(u[IP1], K), add(at(u[C], K), at(u[IP1], K))),
    ))
    su[:, :, K] = add(su[:, :, K], mul(tcy, sub(
        mul(at(u[JM1], K), add(at(v[JM1], K), at(v[IP1_JM1], K))),
        mul(at(u[JP1], K), add(at(v[C], K), at(v[IP1], K))),
    )))
    su[:, :, K_MID] = add(su[:, :, K_MID], sub(
        mul(mul(tzc1[K_MID], at(u[C], LO)),
            add(at(w[C], LO), at(w[IP1], LO))),
        mul(mul(tzc2[K_MID], at(u[C], HI)),
            add(at(w[C], K_MID), at(w[IP1], K_MID))),
    ))
    su[:, :, nz - 1] = add(su[:, :, nz - 1], mul(
        mul(tzc1[nz - 1], u[C][:, :, nz - 2]),
        add(w[C][:, :, nz - 2], w[IP1][:, :, nz - 2]),
    ))

    # ------------------------------------------------------------------ V --
    sv = out.sv
    sv[:, :, K] = mul(tcy, sub(
        mul(at(v[JM1], K), add(at(v[C], K), at(v[JM1], K))),
        mul(at(v[JP1], K), add(at(v[C], K), at(v[JP1], K))),
    ))
    sv[:, :, K] = add(sv[:, :, K], mul(tcx, sub(
        mul(at(v[IM1], K), add(at(u[IM1], K), at(u[IM1_JP1], K))),
        mul(at(v[IP1], K), add(at(u[C], K), at(u[JP1], K))),
    )))
    sv[:, :, K_MID] = add(sv[:, :, K_MID], sub(
        mul(mul(tzc1[K_MID], at(v[C], LO)),
            add(at(w[C], LO), at(w[JP1], LO))),
        mul(mul(tzc2[K_MID], at(v[C], HI)),
            add(at(w[C], K_MID), at(w[JP1], K_MID))),
    ))
    sv[:, :, nz - 1] = add(sv[:, :, nz - 1], mul(
        mul(tzc1[nz - 1], v[C][:, :, nz - 2]),
        add(w[C][:, :, nz - 2], w[JP1][:, :, nz - 2]),
    ))

    # ------------------------------------------------------------------ W --
    sw = out.sw
    sw[:, :, K_MID] = mul(tcx, sub(
        mul(at(w[IM1], K_MID), add(at(u[IM1], K_MID), at(u[IM1], HI))),
        mul(at(w[IP1], K_MID), add(at(u[C], K_MID), at(u[C], HI))),
    ))
    sw[:, :, K_MID] = add(sw[:, :, K_MID], mul(tcy, sub(
        mul(at(w[JM1], K_MID), add(at(v[JM1], K_MID), at(v[JM1], HI))),
        mul(at(w[JP1], K_MID), add(at(v[C], K_MID), at(v[C], HI))),
    )))
    sw[:, :, K_MID] = add(sw[:, :, K_MID], sub(
        mul(mul(tzd1[K_MID], at(w[C], LO)),
            add(at(w[C], K_MID), at(w[C], LO))),
        mul(mul(tzd2[K_MID], at(w[C], HI)),
            add(at(w[C], K_MID), at(w[C], HI))),
    ))

    # Narrow storage on the way out, too.
    out.su[...] = q(out.su)
    out.sv[...] = q(out.sv)
    out.sw[...] = q(out.sw)
    # Keep the structural zeros exact (no source at the bottom level).
    out.su[:, :, 0] = 0.0
    out.sv[:, :, 0] = 0.0
    out.sw[:, :, 0] = 0.0
    out.sw[:, :, nz - 1] = 0.0
    return out
