"""Resource impact of reduced precision (the paper's §V motivation).

Narrower operators and buffers shrink the kernel: operator DSP/logic
costs scale roughly with the square of mantissa width for multipliers and
linearly for adders, and the shift buffers shrink linearly with the
storage width.  This module projects the kernel's footprint at a given
format and answers the question §V poses — how many more kernels fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import FPGADevice
from repro.hardware.resources import ResourceVector, fit_kernels
from repro.kernel.config import KernelConfig
from repro.perf.theoretical import theoretical_gflops
from repro.precision.formats import FLOAT64, NumberFormat

__all__ = ["precision_kernel_resources", "precision_fit_report",
           "PrecisionFitReport"]


def _mul_cost_scale(fmt: NumberFormat) -> float:
    """Multiplier cost relative to float64 (quadratic in mantissa width)."""
    base = 53.0  # float64 significand incl. hidden bit
    width = getattr(fmt, "mantissa_bits", None)
    if width is None:  # fixed point: the full word multiplies
        width = fmt.bits - 1
    else:
        width += 1
    return (width / base) ** 2


def _linear_cost_scale(fmt: NumberFormat) -> float:
    """Adder/register/buffer cost relative to float64 (linear in bits)."""
    return fmt.bits / 64.0


def precision_kernel_resources(config: KernelConfig, device: FPGADevice,
                               fmt: NumberFormat) -> ResourceVector:
    """The advection kernel's footprint at a reduced precision."""
    base = device.kernel_resources(config)
    mul_scale = _mul_cost_scale(fmt)
    lin_scale = _linear_cost_scale(fmt)
    # Multipliers dominate DSP use; adders and wiring dominate logic;
    # buffers scale with storage width.  Blend accordingly.
    dsp_scale = 0.8 * mul_scale + 0.2 * lin_scale
    logic_scale = 0.5 * mul_scale + 0.5 * lin_scale
    return ResourceVector(
        luts=int(base.luts * logic_scale),
        registers=int(base.registers * lin_scale),
        bram_bytes=int(base.bram_bytes * lin_scale),
        uram_bytes=int(base.uram_bytes * lin_scale),
        dsp=max(1, int(base.dsp * dsp_scale)) if base.dsp else 0,
        alms=int(base.alms * logic_scale),
        m20k_bytes=int(base.m20k_bytes * lin_scale),
        mlab_bytes=int(base.mlab_bytes * lin_scale),
    )


@dataclass(frozen=True)
class PrecisionFitReport:
    """How a format changes the multi-kernel picture on one device."""

    device: str
    format_name: str
    bits: int
    kernels_fit: int
    kernels_fit_float64: int
    projected_peak_gflops: float

    @property
    def extra_kernels(self) -> int:
        return self.kernels_fit - self.kernels_fit_float64


def precision_fit_report(config: KernelConfig, device: FPGADevice,
                         fmt: NumberFormat) -> PrecisionFitReport:
    """Kernels that fit, and the projected peak, at a reduced precision.

    The projected peak assumes the clock of the float64 design at the new
    kernel count (narrow logic typically closes timing at least as fast).
    """
    base_fit = fit_kernels(device.kernel_resources(config), device.capacity,
                           device.shell)
    fmt_fit = fit_kernels(precision_kernel_resources(config, device, fmt),
                          device.capacity, device.shell)
    clock_mhz = device.clock.frequency_mhz(max(1, fmt_fit))
    return PrecisionFitReport(
        device=device.name,
        format_name=fmt.name,
        bits=fmt.bits,
        kernels_fit=fmt_fit,
        kernels_fit_float64=base_fit,
        projected_peak_gflops=theoretical_gflops(
            clock_mhz, column_height=config.grid.nz,
            num_kernels=max(1, fmt_fit)),
    )


def sanity_check_float64(config: KernelConfig, device: FPGADevice) -> bool:
    """float64 must reproduce the baseline footprint (identity scaling)."""
    return precision_kernel_resources(config, device, FLOAT64) == \
        device.kernel_resources(config)
