"""Number formats: IEEE-like floats and Q-format fixed point.

A :class:`NumberFormat` quantises float64 values to what a narrower
datapath would hold.  Float formats round the mantissa to ``n`` bits
(round-to-nearest-even via the float32 path where possible, bit masking
otherwise); fixed-point formats scale, round and saturate.

The quantisers are vectorised over NumPy arrays so whole fields can be
pushed through a simulated narrow datapath cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "NumberFormat",
    "FloatFormat",
    "FixedPointFormat",
    "FLOAT64",
    "FLOAT32",
    "BFLOAT16",
]


class NumberFormat:
    """Base class: a way of storing real numbers in ``bits`` bits.

    Concrete formats provide a ``name`` attribute and a ``bits`` property.
    """

    name: str
    bits: int

    def quantise(self, values: np.ndarray | float) -> np.ndarray | float:
        """Round ``values`` to this format (returned as float64 carriers)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, bits={self.bits})"


@dataclass(frozen=True)
class FloatFormat(NumberFormat):
    """A binary floating-point format with a reduced mantissa.

    Parameters
    ----------
    name:
        Label used in reports.
    mantissa_bits:
        Explicit mantissa bits (52 = float64, 23 = float32, 7 = bfloat16).
    exponent_bits:
        Exponent width; only used for the storage-bit count (overflow of
        narrow exponents is not modelled — atmospheric winds are far from
        any float32/bfloat16 range limit).
    """

    name: str
    mantissa_bits: int
    exponent_bits: int = 11

    def __post_init__(self) -> None:
        if not 1 <= self.mantissa_bits <= 52:
            raise ConfigurationError(
                f"mantissa_bits must be in [1, 52], got {self.mantissa_bits}"
            )
        if not 2 <= self.exponent_bits <= 11:
            raise ConfigurationError(
                f"exponent_bits must be in [2, 11], got {self.exponent_bits}"
            )

    @property
    def bits(self) -> int:  # type: ignore[override]
        return 1 + self.exponent_bits + self.mantissa_bits

    def quantise(self, values):
        values = np.asarray(values, dtype=np.float64)
        if self.mantissa_bits >= 52:
            result = values.copy()
        elif self.mantissa_bits == 23 and self.exponent_bits == 8:
            result = values.astype(np.float32).astype(np.float64)
        else:
            # Mask away the low mantissa bits with round-to-nearest: add
            # half an ulp of the target precision, then truncate.
            drop = 52 - self.mantissa_bits
            bits = values.view(np.uint64) if values.flags["C_CONTIGUOUS"] \
                else np.ascontiguousarray(values).view(np.uint64)
            half = np.uint64(1) << np.uint64(drop - 1)
            mask = ~((np.uint64(1) << np.uint64(drop)) - np.uint64(1))
            rounded = ((bits + half) & mask)
            result = rounded.view(np.float64).copy()
            # Preserve exact zeros and non-finite values.
            result = np.where(np.isfinite(values), result, values)
            result = np.where(values == 0.0, 0.0, result)
        if np.isscalar(values) or values.ndim == 0:
            return float(result)
        return result


@dataclass(frozen=True)
class FixedPointFormat(NumberFormat):
    """Qm.n two's-complement fixed point with saturation.

    Parameters
    ----------
    name:
        Label used in reports.
    integer_bits:
        Bits left of the binary point (excluding sign).
    fraction_bits:
        Bits right of the binary point.
    """

    name: str
    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ConfigurationError("bit fields must be >= 0")
        if self.integer_bits + self.fraction_bits == 0:
            raise ConfigurationError("format must have at least one bit")

    @property
    def bits(self) -> int:  # type: ignore[override]
        return 1 + self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        return (2.0 ** self.integer_bits) - self.scale

    @property
    def min_value(self) -> float:
        return -(2.0 ** self.integer_bits)

    def quantise(self, values):
        values = np.asarray(values, dtype=np.float64)
        ticks = np.round(values / self.scale)
        result = np.clip(ticks * self.scale, self.min_value, self.max_value)
        if np.isscalar(values) or values.ndim == 0:
            return float(result)
        return result

    def representable(self, values: np.ndarray | float) -> bool:
        """True if ``values`` quantise without saturating."""
        values = np.asarray(values, dtype=np.float64)
        return bool(np.all(values <= self.max_value)
                    and np.all(values >= self.min_value))


#: The double precision the paper's kernels use.
FLOAT64 = FloatFormat("float64", mantissa_bits=52, exponent_bits=11)
#: IEEE single precision (what Versal AI engines execute natively, §V).
FLOAT32 = FloatFormat("float32", mantissa_bits=23, exponent_bits=8)
#: bfloat16: float32 range with an 8-bit mantissa.
BFLOAT16 = FloatFormat("bfloat16", mantissa_bits=7, exponent_bits=8)
