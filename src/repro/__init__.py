"""repro: reproduction of "Accelerating advection for atmospheric modelling
on Xilinx and Intel FPGAs" (N. Brown, IEEE CLUSTER 2021).

The package implements, in pure Python/NumPy:

* the Met Office Piacsek-Williams (PW) advection scheme used by MONC
  (:mod:`repro.core`) — both a scalar specification and a fast vectorised
  reference;
* a cycle-level dataflow machine simulator (:mod:`repro.dataflow`) and the
  paper's 3D shift buffer (:mod:`repro.shiftbuffer`);
* the advection kernel assembled per the paper's Fig. 2
  (:mod:`repro.kernel`), with a cycle-accurate simulation, a fast
  functional path, and a closed-form cycle model that the simulator
  validates;
* models of the evaluation hardware (:mod:`repro.hardware`) and the
  OpenCL-style host runtime with transfer/compute overlap
  (:mod:`repro.runtime`);
* performance metrics and paper calibration (:mod:`repro.perf`) and the
  experiment harness regenerating every table and figure
  (:mod:`repro.experiments`).

Quick start::

    from repro.core import Grid, thermal_bubble, advect_reference
    grid = Grid(nx=32, ny=32, nz=64)
    sources = advect_reference(thermal_bubble(grid))

See README.md for the full tour and DESIGN.md for the architecture.
"""

from repro import constants
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["constants", "ReproError", "__version__"]
