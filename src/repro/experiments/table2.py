"""Table II: HBM2 versus DDR-DRAM on the Alveo U280.

A single kernel, kernel-only timing, across 1M/4M/16M/67M grid cells from
each memory space; the "overhead" column is the paper's
``HBM2/DDR - 1`` percentage.
"""

from __future__ import annotations

from repro.experiments.common import TABLE2_SIZES, paper_grid, standard_config
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.report import text_table
from repro.hardware import ALVEO_U280
from repro.perf.calibration import paper_value
from repro.perf.metrics import compare_to_paper

__all__ = ["run_table2"]


@register("table2")
def run_table2() -> ExperimentResult:
    config = standard_config()
    rows: list[tuple] = []
    measured: dict[tuple[str, str], float] = {}
    for label in TABLE2_SIZES:
        grid = paper_grid(label)
        hbm = ALVEO_U280.invocation(config.for_grid(grid), grid,
                                    num_kernels=1, memory="hbm2").gflops(grid)
        ddr = ALVEO_U280.invocation(config.for_grid(grid), grid,
                                    num_kernels=1, memory="ddr").gflops(grid)
        measured[("hbm2", label)] = hbm
        measured[("ddr", label)] = ddr
        rows.append((label, hbm, ddr, 100.0 * (hbm / ddr - 1.0)))

    headers = ("grid points", "hbm2 gflops", "ddr gflops", "ddr overhead %")
    comparisons = [
        compare_to_paper("U280 HBM2 @16M", measured[("hbm2", "16M")],
                         paper_value("table2.hbm2_16m_gflops")),
        compare_to_paper("U280 DDR @16M", measured[("ddr", "16M")],
                         paper_value("table2.ddr_16m_gflops")),
        compare_to_paper("U280 HBM2 @1M", measured[("hbm2", "1M")],
                         paper_value("table2.hbm2_1m_gflops")),
        compare_to_paper(
            "DDR overhead @16M (%)",
            100.0 * (measured[("hbm2", "16M")] / measured[("ddr", "16M")] - 1.0),
            paper_value("table2.ddr_overhead_16m_pct"),
        ),
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Table II: HBM2 vs DDR-DRAM on the Alveo U280 (single kernel)",
        headers=headers,
        rows=rows,
        text=text_table(headers, rows,
                        title="Table II (U280 HBM2 vs DDR, kernel-only)"),
        comparisons=comparisons,
    )
