"""Shared workload definitions for the experiment harness."""

from __future__ import annotations

from repro import constants
from repro.core.grid import Grid
from repro.errors import ExperimentError
from repro.hardware import (
    ALVEO_U280,
    STRATIX10_GX2800,
    TESLA_V100,
    XEON_8260M,
)
from repro.kernel.config import KernelConfig

__all__ = [
    "paper_grid",
    "standard_config",
    "MULTI_KERNEL_SIZES",
    "TABLE2_SIZES",
    "SWEEP_DEVICES",
]

#: Grid sizes of the multi-kernel sweeps (Figs. 5-8).
MULTI_KERNEL_SIZES: tuple[str, ...] = ("16M", "67M", "268M", "536M")

#: Grid sizes of Table II.
TABLE2_SIZES: tuple[str, ...] = ("1M", "4M", "16M", "67M")

#: Devices of the multi-kernel sweeps, in the paper's plotting order.
SWEEP_DEVICES = (
    ("cpu", XEON_8260M),
    ("v100", TESLA_V100),
    ("u280", ALVEO_U280),
    ("stratix10", STRATIX10_GX2800),
)


def paper_grid(label: str) -> Grid:
    """The grid behind one of the paper's size labels ('16M', ...)."""
    try:
        cells = constants.PAPER_GRID_LABELS[label]
    except KeyError:
        raise ExperimentError(
            f"unknown grid label {label!r}; known: "
            f"{sorted(constants.PAPER_GRID_LABELS)}"
        ) from None
    return Grid.from_cells(cells)


def standard_config(label: str = "16M") -> KernelConfig:
    """The kernel design used throughout the evaluation."""
    return KernelConfig(grid=paper_grid(label))
