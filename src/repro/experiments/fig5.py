"""Fig. 5: overall performance WITHOUT overlapping transfer and compute.

Six kernels on the U280, five on the Stratix 10, the whole V100, and the
24-core Xeon, across 16M-536M grid cells, *including* the PCIe transfer of
inputs and results via the synchronous (Fig. 5) path.  Higher is better.
"""

from __future__ import annotations

from repro.experiments.common import MULTI_KERNEL_SIZES
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.report import text_table
from repro.experiments.sweeps import SWEEP_DEVICE_LABELS, sweep
from repro.perf.metrics import compare_to_paper

__all__ = ["run_fig5"]


@register("fig5")
def run_fig5() -> ExperimentResult:
    results = sweep(overlapped=False)
    headers = ("grid cells",) + tuple(SWEEP_DEVICE_LABELS.values())
    rows: list[tuple] = []
    for label in MULTI_KERNEL_SIZES:
        row: list = [label]
        for key in SWEEP_DEVICE_LABELS:
            result = results[(key, label)]
            row.append(None if result is None else result.gflops)
        rows.append(tuple(row))

    # The paper's quantitative claim for this figure: synchronous transfer
    # takes ~2x longer on the U280 than the Stratix 10.
    u280 = results[("u280", "16M")]
    stratix = results[("stratix10", "16M")]
    assert u280 is not None and stratix is not None
    comparisons = [
        compare_to_paper(
            "U280/Stratix transfer-time ratio @16M",
            u280.transfer_seconds / stratix.transfer_seconds,
            2.0,
        ),
    ]
    return ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5: overall performance without overlap (GFLOPS)",
        headers=headers,
        rows=rows,
        text=text_table(headers, rows,
                        title="Fig. 5 (no overlap, incl. PCIe; GFLOPS)"),
        comparisons=comparisons,
    )
