"""Plain-text rendering of experiment results.

Experiments produce rows of (label, value...) data; these helpers format
them as aligned text tables (what the benchmark harness prints, and what
EXPERIMENTS.md quotes) and as CSV for further processing.
"""

from __future__ import annotations

from typing import Sequence

from repro.perf.metrics import PaperComparison

__all__ = ["text_table", "csv_table", "comparison_table"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    if value is None:
        return "--"
    return str(value)


def text_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *,
               precision: int = 2, title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    formatted = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(headers[col])),
            *(len(row[col]) for row in formatted)) if formatted
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def csv_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *,
              precision: int = 6) -> str:
    """Render rows as CSV (no quoting: labels here never contain commas)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(_format_cell(cell, precision) for cell in row))
    return "\n".join(lines)


def comparison_table(comparisons: Sequence[PaperComparison], *,
                     title: str | None = None) -> str:
    """Render measured-vs-paper comparisons.

    Quantitative rows show the percentage deviation; ordering rows (the
    paper only asserted a direction) show whether the claim holds.
    """
    rows = [
        (c.label, c.measured, c.paper,
         ("holds" if c.holds else "VIOLATED") if c.kind == "ordering"
         else f"{c.percent_error:+.1f}%")
        for c in comparisons
    ]
    return text_table(
        ["quantity", "measured", "paper", "status"], rows,
        precision=3, title=title,
    )
