"""Table I: kernel-only performance at 16M cells.

Compares one core of the Xeon, all 24 cores, the V100, and a *single* HLS
kernel on each FPGA — ignoring PCIe transfer, exactly as the paper's
kernel-only table does.  The percentage-of-theoretical column uses the
paper's dataflow peak metric; the percentage-of-CPU column is relative to
the 24-core figure.
"""

from __future__ import annotations

from repro.core.flops import grid_flops
from repro.experiments.common import paper_grid, standard_config
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.report import text_table
from repro.hardware import ALVEO_U280, STRATIX10_GX2800, TESLA_V100, XEON_8260M
from repro.perf.calibration import paper_value
from repro.perf.metrics import compare_to_paper
from repro.perf.theoretical import percent_of_theoretical

__all__ = ["run_table1"]

_GRID_LABEL = "16M"


@register("table1")
def run_table1() -> ExperimentResult:
    grid = paper_grid(_GRID_LABEL)
    config = standard_config(_GRID_LABEL)
    flops = grid_flops(grid)

    rows: list[tuple] = []

    # -- CPU ---------------------------------------------------------------
    cpu1 = XEON_8260M.gflops(1)
    cpu24 = XEON_8260M.gflops(24)
    rows.append(("1 core of Xeon CPU", cpu1, None, None))
    rows.append(("24 core Xeon CPU", cpu24, None, 100.0))

    # -- GPU (whole device, data resident) -----------------------------------
    gpu = flops / TESLA_V100.kernel_time(grid) / 1e9
    rows.append(("NVIDIA V100 GPU", gpu, None, 100.0 * gpu / cpu24))

    # -- single FPGA kernels -----------------------------------------------------
    u280 = ALVEO_U280.invocation(config, grid, num_kernels=1,
                                 memory="hbm2").gflops(grid)
    rows.append((
        "Xilinx Alveo U280", u280,
        percent_of_theoretical(u280, ALVEO_U280.clock.frequency_mhz(1)),
        100.0 * u280 / cpu24,
    ))
    stratix = STRATIX10_GX2800.invocation(config, grid,
                                          num_kernels=1).gflops(grid)
    rows.append((
        "Intel Stratix 10", stratix,
        percent_of_theoretical(stratix,
                               STRATIX10_GX2800.clock.frequency_mhz(1)),
        100.0 * stratix / cpu24,
    ))

    headers = ("description", "gflops", "% theoretical", "% cpu")
    comparisons = [
        compare_to_paper("cpu 1-core GFLOPS", cpu1,
                         paper_value("table1.cpu_1core_gflops")),
        compare_to_paper("cpu 24-core GFLOPS", cpu24,
                         paper_value("table1.cpu_24core_gflops")),
        compare_to_paper("V100 GFLOPS", gpu,
                         paper_value("table1.v100_gflops")),
        compare_to_paper("U280 GFLOPS", u280,
                         paper_value("table1.u280_gflops")),
        compare_to_paper("Stratix 10 GFLOPS", stratix,
                         paper_value("table1.stratix_gflops")),
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Table I: kernel-only performance, 16M grid cells",
        headers=headers,
        rows=rows,
        text=text_table(headers, rows,
                        title="Table I (kernel-only, 16M cells)"),
        comparisons=comparisons,
    )
