"""Experiment harness: regenerate every table and figure of the paper.

Each module reproduces one evaluation artefact through the device models
and schedules (never by echoing stored results):

* :mod:`repro.experiments.table1` — Table I, kernel-only comparison,
* :mod:`repro.experiments.table2` — Table II, HBM2 vs DDR on the U280,
* :mod:`repro.experiments.fig5` — Fig. 5, multi-kernel without overlap,
* :mod:`repro.experiments.fig6` — Fig. 6, multi-kernel with overlap,
* :mod:`repro.experiments.fig7` — Fig. 7, power,
* :mod:`repro.experiments.fig8` — Fig. 8, power efficiency.

``python -m repro.experiments.run_all`` prints them all;
:data:`repro.experiments.registry.EXPERIMENTS` maps ids to runners.
"""

from repro.experiments.registry import EXPERIMENTS, ExperimentResult, run_experiment

__all__ = ["EXPERIMENTS", "ExperimentResult", "run_experiment"]
