"""Fig. 6: overall performance WITH overlapping of transfer and compute.

Same configurations as Fig. 5, but using the chunked, event-chained
schedule (CUDA streams on the GPU).  Higher is better.  The paper's
headline observations — the V100 wins everywhere it fits, the U280 beats
the Stratix 10 until it must fall back from HBM2 to DDR at 268M cells —
are checked as comparisons.
"""

from __future__ import annotations

from repro.experiments.common import MULTI_KERNEL_SIZES
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.report import text_table
from repro.experiments.sweeps import SWEEP_DEVICE_LABELS, sweep
from repro.perf.metrics import compare_to_paper

__all__ = ["run_fig6"]


@register("fig6")
def run_fig6() -> ExperimentResult:
    results = sweep(overlapped=True)
    headers = ("grid cells",) + tuple(SWEEP_DEVICE_LABELS.values())
    rows: list[tuple] = []
    for label in MULTI_KERNEL_SIZES:
        row: list = [label]
        for key in SWEEP_DEVICE_LABELS:
            result = results[(key, label)]
            row.append(None if result is None else result.gflops)
        rows.append(tuple(row))

    # Structural claims as boolean-ish comparisons (ratio > 1 == claim holds).
    comparisons = []
    for label in ("16M", "67M"):
        u280 = results[("u280", label)]
        stratix = results[("stratix10", label)]
        assert u280 is not None and stratix is not None
        comparisons.append(compare_to_paper(
            f"U280/Stratix @{label} (paper: >1)",
            u280.gflops / stratix.gflops, 1.0, kind="ordering",
        ))
    for label in ("268M", "536M"):
        u280 = results[("u280", label)]
        stratix = results[("stratix10", label)]
        assert u280 is not None and stratix is not None
        comparisons.append(compare_to_paper(
            f"Stratix/U280 @{label} (paper: >1, DDR fallback)",
            stratix.gflops / u280.gflops, 1.0, kind="ordering",
        ))
    return ExperimentResult(
        experiment_id="fig6",
        title="Fig. 6: overall performance with overlap (GFLOPS)",
        headers=headers,
        rows=rows,
        text=text_table(headers, rows,
                        title="Fig. 6 (overlapped transfer+compute; GFLOPS)"),
        comparisons=comparisons,
    )
