"""Generate a fresh markdown reproduction report from live model runs.

``python -m repro.experiments.markdown_report [path]`` re-derives every
table/figure and the scorecard and renders them as markdown — the
regenerable core of EXPERIMENTS.md, so the committed record can always be
diffed against what the models currently produce.
"""

from __future__ import annotations

import pathlib
import sys

from repro.experiments.registry import all_experiment_ids, run_experiment
from repro.experiments.summary import build_scorecard, build_summary

__all__ = ["render_markdown_report", "write_markdown_report"]


def _markdown_table(headers, rows, *, precision: int = 2) -> str:
    def fmt(value):
        if value is None:
            return "—"
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "---|" * len(headers)]
    for row in rows:
        lines.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
    return "\n".join(lines)


def render_markdown_report() -> str:
    """Run all experiments; return the full markdown report."""
    summary = build_summary()
    scorecard = build_scorecard(summary)

    parts = [
        "# Reproduction report (generated)",
        "",
        "Regenerate with `python -m repro.experiments.markdown_report`.",
        "",
        f"**Scorecard:** {scorecard.summary_line()}",
        "",
    ]
    for experiment_id in all_experiment_ids():
        result = run_experiment(experiment_id)
        parts.append(f"## {result.title}")
        parts.append("")
        parts.append(_markdown_table(result.headers, result.rows))
        parts.append("")
        if result.comparisons:
            comparison_rows = [
                (c.label,
                 f"{c.measured:.3f}",
                 f"{c.paper:.3f}",
                 ("holds" if c.holds else "VIOLATED")
                 if c.kind == "ordering" else f"{c.percent_error:+.1f}%")
                for c in result.comparisons
            ]
            parts.append(_markdown_table(
                ("claim", "measured", "paper", "status"), comparison_rows))
            parts.append("")
    return "\n".join(parts)


def write_markdown_report(path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(render_markdown_report() + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        path = write_markdown_report(argv[0])
        print(f"wrote {path}")
    else:
        print(render_markdown_report())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
