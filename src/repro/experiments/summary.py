"""Machine-readable reproduction summary and scorecard.

Collects every experiment's rows and paper comparisons into one JSON
document, and condenses them into a scorecard (how many published numbers
are matched within tolerance, how many shape claims hold) — the artefact
a reproduction reviewer wants first.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.experiments.registry import all_experiment_ids, run_experiment

__all__ = ["Scorecard", "build_summary", "build_scorecard", "write_summary"]

#: Numeric comparisons are "matched" inside this tolerance (percent).
DEFAULT_TOLERANCE_PCT: float = 15.0


@dataclass(frozen=True)
class Scorecard:
    """Condensed reproduction status.

    Quantitative comparisons (published numbers) are scored by deviation;
    ordering claims (the paper asserted a direction) by whether they hold.
    """

    experiments: int
    quantitative: int
    within_tolerance: int
    orderings: int
    orderings_holding: int
    tolerance_pct: float
    worst_label: str
    worst_error_pct: float

    @property
    def match_fraction(self) -> float:
        total = self.quantitative + self.orderings
        matched = self.within_tolerance + self.orderings_holding
        return matched / total if total else 1.0

    def summary_line(self) -> str:
        return (
            f"{self.within_tolerance}/{self.quantitative} published "
            f"quantities within {self.tolerance_pct:.0f}% and "
            f"{self.orderings_holding}/{self.orderings} ordering claims "
            f"holding, across {self.experiments} artefacts "
            f"(worst quantitative: {self.worst_label} at "
            f"{self.worst_error_pct:+.1f}%)"
        )


def build_summary() -> dict:
    """Run every experiment; return a JSON-serialisable summary."""
    summary: dict = {"experiments": {}}
    for experiment_id in all_experiment_ids():
        result = run_experiment(experiment_id)
        summary["experiments"][experiment_id] = {
            "title": result.title,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "comparisons": [
                {
                    "label": c.label,
                    "measured": c.measured,
                    "paper": c.paper,
                    "percent_error": c.percent_error,
                    "kind": c.kind,
                    "holds": c.holds,
                }
                for c in result.comparisons
            ],
        }
    return summary


def build_scorecard(summary: dict | None = None, *,
                    tolerance_pct: float = DEFAULT_TOLERANCE_PCT) -> Scorecard:
    """Condense a summary into a scorecard."""
    summary = summary or build_summary()
    comparisons = [
        comparison
        for experiment in summary["experiments"].values()
        for comparison in experiment["comparisons"]
    ]
    quantitative = [c for c in comparisons if c["kind"] == "quantitative"]
    orderings = [c for c in comparisons if c["kind"] == "ordering"]
    within = sum(
        1 for c in quantitative if abs(c["percent_error"]) <= tolerance_pct
    )
    worst = max(quantitative, key=lambda c: abs(c["percent_error"]),
                default=None)
    return Scorecard(
        experiments=len(summary["experiments"]),
        quantitative=len(quantitative),
        within_tolerance=within,
        orderings=len(orderings),
        orderings_holding=sum(1 for c in orderings if c["holds"]),
        tolerance_pct=tolerance_pct,
        worst_label=worst["label"] if worst else "n/a",
        worst_error_pct=worst["percent_error"] if worst else 0.0,
    )


def write_summary(path: str | pathlib.Path) -> pathlib.Path:
    """Write the full summary JSON to ``path``."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(build_summary(), indent=2, default=str))
    return path
