"""Fig. 7: power usage with overlapped transfer and compute (lower better).

Power capture in the paper: RAPL (CPU), NVIDIA-SMI (GPU), XRT (U280),
``aocl_mmd_card_info_fn`` (Stratix 10).  The model equivalents report the
active board draw of each run from the Fig. 6 sweep.
"""

from __future__ import annotations

from repro.experiments.common import MULTI_KERNEL_SIZES
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.report import text_table
from repro.experiments.sweeps import SWEEP_DEVICE_LABELS, sweep
from repro.perf.calibration import paper_value
from repro.perf.metrics import compare_to_paper

__all__ = ["run_fig7"]


@register("fig7")
def run_fig7() -> ExperimentResult:
    results = sweep(overlapped=True)
    headers = ("grid cells",) + tuple(SWEEP_DEVICE_LABELS.values())
    rows: list[tuple] = []
    for label in MULTI_KERNEL_SIZES:
        row: list = [label]
        for key in SWEEP_DEVICE_LABELS:
            result = results[(key, label)]
            row.append(None if result is None else result.average_watts)
        rows.append(tuple(row))

    u280_small = results[("u280", "16M")]
    u280_large = results[("u280", "268M")]
    stratix_small = results[("stratix10", "16M")]
    assert u280_small and u280_large and stratix_small
    comparisons = [
        compare_to_paper(
            "Stratix/U280 power ratio @16M",
            stratix_small.average_watts / u280_small.average_watts,
            paper_value("fig7.stratix_over_alveo_power"),
        ),
        compare_to_paper(
            "U280 DDR power delta (W)",
            u280_large.average_watts - u280_small.average_watts,
            paper_value("fig7.u280_ddr_power_delta"),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig7",
        title="Fig. 7: power usage with overlap (Watts)",
        headers=headers,
        rows=rows,
        text=text_table(headers, rows, precision=1,
                        title="Fig. 7 (power in Watts; lower is better)"),
        comparisons=comparisons,
    )
