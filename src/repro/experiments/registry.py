"""Registry mapping experiment ids to their runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ExperimentError
from repro.perf.metrics import PaperComparison

__all__ = ["ExperimentResult", "EXPERIMENTS", "register", "run_experiment"]


@dataclass
class ExperimentResult:
    """Output of one experiment run."""

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple]
    text: str
    comparisons: list[PaperComparison] = field(default_factory=list)

    def row_dict(self) -> list[dict]:
        """Rows as dictionaries keyed by header."""
        return [dict(zip(self.headers, row)) for row in self.rows]


#: experiment id -> zero-argument runner.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator adding a runner to the registry."""

    def deco(fn: Callable[[], ExperimentResult]):
        if experiment_id in EXPERIMENTS:
            raise ExperimentError(
                f"duplicate experiment id {experiment_id!r}"
            )
        EXPERIMENTS[experiment_id] = fn
        return fn

    return deco


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one registered experiment by id (importing runners lazily)."""
    _ensure_loaded()
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    return runner()


def all_experiment_ids() -> Sequence[str]:
    _ensure_loaded()
    return sorted(EXPERIMENTS)


def _ensure_loaded() -> None:
    """Import the experiment modules so their @register decorators run."""
    from repro.experiments import fig5, fig6, fig7, fig8, table1, table2  # noqa: F401
