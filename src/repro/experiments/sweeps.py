"""The multi-kernel device/size sweep shared by Figs. 5-8."""

from __future__ import annotations

from functools import lru_cache

from repro.errors import CapacityError
from repro.experiments.common import (
    MULTI_KERNEL_SIZES,
    SWEEP_DEVICES,
    paper_grid,
    standard_config,
)
from repro.runtime.session import RunResult, AdvectionSession

__all__ = ["sweep", "SWEEP_DEVICE_LABELS"]

SWEEP_DEVICE_LABELS: dict[str, str] = {
    "cpu": "24-core Xeon",
    "v100": "V100 GPU",
    "u280": "Alveo U280",
    "stratix10": "Stratix 10",
}


@lru_cache(maxsize=4)
def sweep(overlapped: bool) -> dict[tuple[str, str], RunResult | None]:
    """Run every (device, size) point of the Figs. 5-8 sweep.

    Returns a mapping ``(device_key, size_label) -> RunResult``, with
    ``None`` where the problem does not fit the device (the V100 at 536M).
    """
    config = standard_config()
    results: dict[tuple[str, str], RunResult | None] = {}
    for key, device in SWEEP_DEVICES:
        for label in MULTI_KERNEL_SIZES:
            grid = paper_grid(label)
            session = AdvectionSession(device, config.for_grid(grid))
            try:
                results[(key, label)] = session.run(grid, overlapped=overlapped)
            except CapacityError:
                results[(key, label)] = None
    return results
