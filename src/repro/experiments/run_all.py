"""Print every reproduced table and figure: ``python -m repro.experiments.run_all``."""

from __future__ import annotations

import sys

from repro.experiments.registry import all_experiment_ids, run_experiment
from repro.experiments.report import comparison_table


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    ids = argv if argv else list(all_experiment_ids())
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        print("=" * 72)
        print(result.title)
        print("=" * 72)
        print(result.text)
        if result.comparisons:
            print()
            print(comparison_table(result.comparisons,
                                   title="paper-vs-measured:"))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
