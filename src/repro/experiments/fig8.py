"""Fig. 8: power efficiency (GFLOPS/Watt) with overlap (higher better).

Derived from the Fig. 6 performance and Fig. 7 power of the same runs.
Checked claims: the CPU is worst everywhere; the U280 is ~2x the Stratix
10 until its DDR fallback; the Stratix 10 beats the V100 at small sizes
with the V100 slightly ahead at the largest size it fits.
"""

from __future__ import annotations

from repro.experiments.common import MULTI_KERNEL_SIZES
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.report import text_table
from repro.experiments.sweeps import SWEEP_DEVICE_LABELS, sweep
from repro.perf.metrics import compare_to_paper

__all__ = ["run_fig8"]


@register("fig8")
def run_fig8() -> ExperimentResult:
    results = sweep(overlapped=True)
    headers = ("grid cells",) + tuple(SWEEP_DEVICE_LABELS.values())
    rows: list[tuple] = []
    for label in MULTI_KERNEL_SIZES:
        row: list = [label]
        for key in SWEEP_DEVICE_LABELS:
            result = results[(key, label)]
            row.append(None if result is None else result.gflops_per_watt)
        rows.append(tuple(row))

    u280 = results[("u280", "16M")]
    stratix = results[("stratix10", "16M")]
    gpu_small = results[("v100", "16M")]
    gpu_large = results[("v100", "268M")]
    stratix_large = results[("stratix10", "268M")]
    assert u280 and stratix and gpu_small and gpu_large and stratix_large
    comparisons = [
        compare_to_paper(
            "U280/Stratix efficiency @16M (paper: ~2x)",
            u280.gflops_per_watt / stratix.gflops_per_watt, 2.0,
        ),
        compare_to_paper(
            "Stratix/V100 efficiency @16M (paper: >1)",
            stratix.gflops_per_watt / gpu_small.gflops_per_watt, 1.0,
            kind="ordering",
        ),
        compare_to_paper(
            "V100/Stratix efficiency @268M (paper: slightly >1)",
            gpu_large.gflops_per_watt / stratix_large.gflops_per_watt, 1.0,
            kind="ordering",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig8",
        title="Fig. 8: power efficiency with overlap (GFLOPS/W)",
        headers=headers,
        rows=rows,
        text=text_table(headers, rows, precision=3,
                        title="Fig. 8 (GFLOPS per Watt; higher is better)"),
        comparisons=comparisons,
    )
