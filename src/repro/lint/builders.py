"""Structural graph builder: the Fig. 2 wiring without field data.

:func:`repro.kernel.builder.build_advection_graph` needs concrete wind
fields and output arrays because it *executes*; the linter only needs the
topology, port wiring, FIFO depths, and stage timing.  This builder mirrors
the production wiring stage for stage and stream for stream — same names,
same ports, same depths — using lightweight
:class:`~repro.lint.spec.SpecStage` stand-ins, so graph-family rules see
exactly the shape the simulator would run, at any grid size, without
allocating a single field array.

The advect stages carry the per-field FLOP declarations
(:func:`repro.core.flops.field_flops`), which is what lets the accounting
rules cross-check a graph against the 63/55-op model.
"""

from __future__ import annotations

from repro.core.flops import field_flops
from repro.dataflow.graph import DataflowGraph
from repro.kernel.config import KernelConfig
from repro.lint.spec import SpecStage

__all__ = ["build_structural_graph"]


def build_structural_graph(config: KernelConfig, *, name: str = "advection",
                           read_ii: int = 1) -> DataflowGraph:
    """The Fig. 2 dataflow topology implied by ``config``, data-free.

    Mirrors :func:`repro.kernel.builder.build_advection_graph`:
    ``read_data -> shift_buffer -> replicate -> advect_{u,v,w} ->
    write_data``, with every stream at ``config.stream_depth``.
    """
    graph = DataflowGraph(name)
    read = graph.add(SpecStage(
        "read_data", outputs=("out",), ii=read_ii,
        latency=config.memory_latency,
    ))
    shift = graph.add(SpecStage(
        "shift_buffer", inputs=("in",), outputs=("out",),
        ii=config.shift_buffer_ii, latency=2,
    ))
    replicate = graph.add(SpecStage(
        "replicate", inputs=("in",), outputs=("u", "v", "w"), latency=1,
    ))
    advects = {
        fld: graph.add(SpecStage(
            f"advect_{fld}", inputs=("in",), outputs=("out",),
            latency=config.advect_latency,
            flops_per_cell=field_flops(field=fld),
            flops_per_cell_top=field_flops(top=True, field=fld),
        ))
        for fld in ("u", "v", "w")
    }
    write = graph.add(SpecStage(
        "write_data", inputs=("su", "sv", "sw"),
        latency=config.memory_latency,
    ))

    depth = config.stream_depth
    graph.connect(read, "out", shift, "in", depth=depth)
    graph.connect(shift, "out", replicate, "in", depth=depth)
    for fld in ("u", "v", "w"):
        graph.connect(replicate, fld, advects[fld], "in", depth=depth)
        graph.connect(advects[fld], "out", write, f"s{fld}", depth=depth)
    return graph
