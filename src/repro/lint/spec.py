"""JSON design specs: lintable descriptions of a kernel deployment.

A spec file names a kernel configuration, a target device, a kernel
count, and (optionally) an explicit dataflow-graph wiring.  It is the
linter's input format for CI: the example specs under ``examples/graphs/``
describe the paper's deployments and must lint clean, and a deliberately
broken spec must fail.  Schema::

    {
      "name": "advection-u280",            // optional, defaults to filename
      "device": "u280",                    // optional catalog alias
      "num_kernels": 6,                    // optional replica count
      "read_ii": 1,                        // optional memory-imposed II
      "kernel": {                          // optional KernelConfig
        "cells": "16M",                    //   or "grid": {"nx","ny","nz"}
        "chunk_width": 64, "stream_depth": 4, "shift_buffer_ii": 1,
        "advect_latency": 28, "memory_latency": 16,
        "partitioned": true, "word_bytes": 8
      },
      "graph": "advection"                 // derived Fig. 2 wiring (default
                                           // when "kernel" is present), or:
      "graph": {
        "stages": [{"name": "read", "outputs": ["out"], "ii": 1,
                    "latency": 16, "flops_per_cell": null}, ...],
        "streams": [{"src": "read.out", "dst": "shift.in", "depth": 4}]
      }
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro import constants
from repro.core.grid import Grid
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import Stage
from repro.errors import ConfigurationError, LintError
from repro.kernel.config import KernelConfig
from repro.lint.registry import LintContext

__all__ = ["SpecStage", "LintTarget", "load_spec", "context_from_spec"]

_KERNEL_KEYS = frozenset({
    "cells", "grid", "chunk_width", "stream_depth", "shift_buffer_ii",
    "advect_latency", "memory_latency", "partitioned", "word_bytes",
})
_TOP_KEYS = frozenset({
    "name", "device", "num_kernels", "read_ii", "kernel", "graph",
})


class SpecStage(Stage):
    """A structural stand-in stage declared by a spec file.

    Carries ports, timing, and optional per-cell FLOP declarations, but no
    functional behaviour — the linter analyses wiring and budgets, it
    never simulates.
    """

    def __init__(self, name: str, *, inputs: tuple[str, ...] = (),
                 outputs: tuple[str, ...] = (), ii: int = 1,
                 latency: int = 1, flops_per_cell: int | None = None,
                 flops_per_cell_top: int | None = None) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self.input_ports = tuple(inputs)
        self.output_ports = tuple(outputs)
        self.flops_per_cell = flops_per_cell
        self.flops_per_cell_top = flops_per_cell_top

    def fire(self, cycle, inputs):  # pragma: no cover - never simulated
        raise NotImplementedError(
            f"SpecStage {self.name!r} is structural only"
        )


@dataclass(frozen=True)
class LintTarget:
    """One lintable subject: a name plus its assembled context."""

    name: str
    context: LintContext


def _require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise LintError(f"{what} must be a JSON object, got {type(value).__name__}")
    return value


def _build_grid(kernel_spec: Mapping[str, Any]) -> Grid:
    if "grid" in kernel_spec:
        dims = _require_mapping(kernel_spec["grid"], '"grid"')
        try:
            return Grid(nx=int(dims["nx"]), ny=int(dims["ny"]),
                        nz=int(dims["nz"]))
        except KeyError as missing:
            raise LintError(f'"grid" needs nx/ny/nz; missing {missing}') from None
    if "cells" in kernel_spec:
        label = str(kernel_spec["cells"])
        try:
            return Grid.from_cells(constants.PAPER_GRID_LABELS[label])
        except KeyError:
            raise LintError(
                f"unknown problem size {label!r}; known: "
                f"{', '.join(constants.PAPER_GRID_LABELS)}"
            ) from None
    raise LintError('"kernel" spec needs either "cells" or "grid"')


def _build_config(kernel_spec: Mapping[str, Any]) -> KernelConfig:
    unknown = set(kernel_spec) - _KERNEL_KEYS
    if unknown:
        raise LintError(
            f'unknown "kernel" keys {sorted(unknown)}; '
            f"allowed: {sorted(_KERNEL_KEYS)}"
        )
    grid = _build_grid(kernel_spec)
    params = {k: kernel_spec[k] for k in _KERNEL_KEYS
              if k in kernel_spec and k not in ("cells", "grid")}
    try:
        return KernelConfig(grid=grid, **params)
    except ConfigurationError as error:
        raise LintError(f"invalid kernel configuration: {error}") from error


def _split_endpoint(endpoint: str, what: str) -> tuple[str, str]:
    stage, sep, port = str(endpoint).rpartition(".")
    if not sep or not stage or not port:
        raise LintError(
            f'{what} endpoint {endpoint!r} must be "stage.port"'
        )
    return stage, port


def _build_graph(graph_spec: Mapping[str, Any], name: str) -> DataflowGraph:
    graph = DataflowGraph(name)
    for stage_spec in graph_spec.get("stages", ()):
        stage_spec = _require_mapping(stage_spec, "stage entry")
        if "name" not in stage_spec:
            raise LintError('every stage entry needs a "name"')
        graph.add(SpecStage(
            str(stage_spec["name"]),
            inputs=tuple(stage_spec.get("inputs", ())),
            outputs=tuple(stage_spec.get("outputs", ())),
            ii=int(stage_spec.get("ii", 1)),
            latency=int(stage_spec.get("latency", 1)),
            flops_per_cell=stage_spec.get("flops_per_cell"),
            flops_per_cell_top=stage_spec.get("flops_per_cell_top"),
        ))
    for stream_spec in graph_spec.get("streams", ()):
        stream_spec = _require_mapping(stream_spec, "stream entry")
        src, src_port = _split_endpoint(stream_spec.get("src", ""), "src")
        dst, dst_port = _split_endpoint(stream_spec.get("dst", ""), "dst")
        kwargs: dict[str, Any] = {}
        if "depth" in stream_spec:
            kwargs["depth"] = int(stream_spec["depth"])
        if "name" in stream_spec:
            kwargs["name"] = str(stream_spec["name"])
        graph.connect(src, src_port, dst, dst_port, **kwargs)
    return graph


def context_from_spec(data: Mapping[str, Any], *,
                      default_name: str = "spec") -> LintTarget:
    """Assemble a :class:`LintTarget` from parsed spec JSON."""
    data = _require_mapping(data, "spec")
    unknown = set(data) - _TOP_KEYS
    if unknown:
        raise LintError(
            f"unknown spec keys {sorted(unknown)}; allowed: "
            f"{sorted(_TOP_KEYS)}"
        )
    name = str(data.get("name", default_name))

    config = None
    if "kernel" in data:
        config = _build_config(_require_mapping(data["kernel"], '"kernel"'))

    device = None
    if "device" in data:
        from repro.hardware.devices import device_by_name

        try:
            device = device_by_name(str(data["device"]))
        except ConfigurationError as error:
            raise LintError(str(error)) from error
        if not hasattr(device, "capacity"):
            raise LintError(
                f"device {data['device']!r} is not an FPGA model; resource "
                f"rules need a fabric capacity"
            )

    graph_spec = data.get("graph", "advection" if config else None)
    graph = None
    if graph_spec == "advection":
        if config is None:
            raise LintError('"graph": "advection" needs a "kernel" spec')
        from repro.lint.builders import build_structural_graph

        graph = build_structural_graph(
            config, name=name, read_ii=int(data.get("read_ii", 1))
        )
    elif graph_spec is not None:
        graph = _build_graph(_require_mapping(graph_spec, '"graph"'), name)

    num_kernels = data.get("num_kernels")
    return LintTarget(name=name, context=LintContext(
        graph=graph,
        config=config,
        device=device,
        num_kernels=None if num_kernels is None else int(num_kernels),
        read_ii=int(data.get("read_ii", 1)),
    ))


def load_spec(path: str | Path) -> LintTarget:
    """Load and assemble one spec file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as error:
        raise LintError(f"cannot read spec {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise LintError(f"spec {path} is not valid JSON: {error}") from error
    return context_from_spec(data, default_name=path.stem)
