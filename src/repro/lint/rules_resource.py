"""Resource-family lint rules (``RS``): device budgets.

Static placement checks against a device's
:class:`~repro.hardware.resources.ResourceVector`: the requested kernel
count must fit alongside the shell under the routable fraction (the
paper's scaling limits — six kernels on the U280, five on the Stratix 10 —
are regression fixtures for exactly this rule), a single kernel must fit
at all, and the resident data set must fit some on-board memory.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Iterable

from repro.hardware.resources import ROUTABLE_FRACTION, ResourceVector
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.registry import LintContext, rule


def _over_budget_axes(need: ResourceVector, have: ResourceVector,
                      ) -> list[tuple[str, int, float]]:
    """Axes where ``need`` exceeds the routable fraction of ``have``."""
    axes = []
    for f in fields(ResourceVector):
        needed = getattr(need, f.name)
        capacity = getattr(have, f.name)
        budget = capacity * ROUTABLE_FRACTION
        if needed > 0 and needed > budget:
            axes.append((f.name, needed, budget))
    return axes


@rule("RS201", name="kernel-count-over-budget", family="resource",
      description="the requested kernel replicas plus the shell must fit "
                  "the device's routable fabric",
      requires=("config", "device", "num_kernels"))
def check_kernel_count(context: LintContext) -> Iterable[Diagnostic]:
    config, device = context.config, context.device
    assert config is not None and device is not None
    assert context.num_kernels is not None
    kernel = device.kernel_resources(config)
    total = device.shell + kernel.scaled(context.num_kernels)
    over = _over_budget_axes(total, device.capacity)
    if over:
        worst = max(over, key=lambda a: a[1] / a[2] if a[2] else float("inf"))
        axis, needed, budget = worst
        fit = device.max_kernels(config)
        yield Diagnostic(
            code="RS201", severity=Severity.ERROR,
            message=(
                f"{context.num_kernels} kernel(s) do not fit "
                f"{device.name}: {axis} needs {needed:,.0f} of a routable "
                f"budget of {budget:,.0f} "
                f"({', '.join(a for a, _, _ in over)} over budget)"
            ),
            location=Location("device", device.name, axis),
            hint=f"this configuration fits at most {fit} kernel(s) on "
                 f"{device.name}",
        )


@rule("RS202", name="placement-headroom", family="resource",
      description="reports how many kernel replicas fit and which axis "
                  "limits further replication",
      requires=("config", "device"), severity=Severity.INFO)
def report_placement(context: LintContext) -> Iterable[Diagnostic]:
    config, device = context.config, context.device
    assert config is not None and device is not None
    fit = device.max_kernels(config)
    if fit == 0:
        return  # RS203 reports the failure
    kernel = device.kernel_resources(config)
    one_more = device.shell + kernel.scaled(fit + 1)
    over = _over_budget_axes(one_more, device.capacity)
    limiting = ", ".join(a for a, _, _ in over) if over else "none"
    used = device.shell + kernel.scaled(fit)
    utilisation = used.utilisation(device.capacity)
    peak_axis, peak = max(utilisation.items(), key=lambda kv: kv[1],
                          default=("-", 0.0))
    yield Diagnostic(
        code="RS202", severity=Severity.INFO,
        message=(
            f"{device.name} fits {fit} kernel(s) of this configuration; "
            f"replication limited by {limiting}; peak utilisation "
            f"{peak:.0%} on {peak_axis}"
        ),
        location=Location("device", device.name),
    )


@rule("RS203", name="kernel-does-not-fit", family="resource",
      description="a single kernel instance must fit the device at all",
      requires=("config", "device"))
def check_single_kernel(context: LintContext) -> Iterable[Diagnostic]:
    config, device = context.config, context.device
    assert config is not None and device is not None
    if device.max_kernels(config) > 0:
        return
    total = device.shell + device.kernel_resources(config)
    over = _over_budget_axes(total, device.capacity)
    axes = ", ".join(a for a, _, _ in over) if over else "unknown"
    yield Diagnostic(
        code="RS203", severity=Severity.ERROR,
        message=(
            f"a single kernel of this configuration does not fit "
            f"{device.name} (over budget on: {axes})"
        ),
        location=Location("device", device.name),
        hint="shrink the chunk width (smaller shift buffers) or use a "
             "narrower word size",
    )


@rule("RS204", name="data-set-exceeds-memories", family="resource",
      description="the resident data set must fit at least one on-board "
                  "memory space",
      requires=("config", "device"))
def check_memory_capacity(context: LintContext) -> Iterable[Diagnostic]:
    config, device = context.config, context.device
    assert config is not None and device is not None
    data_bytes = config.bytes_per_cell_cycle * config.grid.num_cells
    if any(m.fits(data_bytes) for m in device.memories.values()):
        return
    capacities = ", ".join(
        f"{name}={m.spec.capacity_bytes / 2**30:.0f} GiB"
        for name, m in device.memories.items()
    )
    yield Diagnostic(
        code="RS204", severity=Severity.ERROR,
        message=(
            f"resident data set of {data_bytes / 2**30:.1f} GiB exceeds "
            f"every memory space on {device.name} ({capacities})"
        ),
        location=Location("device", device.name, "memory"),
        hint="decompose the domain across cards "
             "(repro.distributed) or reduce word_bytes",
    )
