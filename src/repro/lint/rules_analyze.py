"""Analysis-family lint rules (``SA``): proved dataflow properties.

Where the ``DF`` family reasons about structure (and ``DF004`` about a
*sufficient* condition for backpressure), the ``SA`` rules consume the
static verifier's proof objects (:mod:`repro.analyze`): the diagnostics
below are facts about the abstract machine's exact trajectory, each
carrying a concrete witness, not heuristics.

The analysis runs once per lint pass and is shared between the rules via
``context.extras``.  Graphs with structural errors (unconnected ports,
cycles, empty regions) are not analyzable; the SA rules stay silent and
let ``DF001``–``DF003`` report the root cause.
"""

from __future__ import annotations

from typing import Iterable

from repro.analyze.occupancy import OVERPROVISION_SLACK
from repro.analyze.report import AnalysisReport, analyze_graph
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.registry import LintContext, rule

__all__ = []  # rules register themselves; nothing to re-export

_EXTRAS_KEY = "sa_analysis"


def _analysis(context: LintContext) -> AnalysisReport | None:
    """The shared per-run analysis (None: graph not analyzable)."""
    if _EXTRAS_KEY not in context.extras:
        graph = context.graph
        assert graph is not None
        if any(d.severity is Severity.ERROR
               for d in graph.structural_diagnostics()):
            context.extras[_EXTRAS_KEY] = None
        else:
            context.extras[_EXTRAS_KEY] = analyze_graph(graph)
    report: AnalysisReport | None = context.extras[_EXTRAS_KEY]
    return report


@rule("SA401", name="proved-rate-collapse", family="analysis",
      description="the abstract machine must sustain the graph's ideal "
                  "steady-state period; a proved deadlock or a proved "
                  "period worse than the ideal one is a design error",
      requires=("graph",), severity=Severity.ERROR)
def check_proved_rate(context: LintContext) -> Iterable[Diagnostic]:
    report = _analysis(context)
    if report is None:
        return
    occ = report.occupancy
    witness = occ.witness
    if occ.deadlock is not None:
        yield Diagnostic(
            code="SA401", severity=Severity.ERROR,
            message=f"proved deadlock: {occ.deadlock.describe()}",
            location=Location("graph", report.graph_name),
            hint="apply the minimal stall-free FIFO depths "
                 "(repro analyze --fix-depths)",
        )
        return
    if not occ.throughput_collapsed:
        return
    assert occ.period is not None
    under = [name for name, proof in sorted(occ.streams.items())
             if proof.verdict == "under"]
    fixes = ", ".join(f"{name}: {occ.streams[name].min_safe}"
                      for name in under)
    where = (Location("stream", under[0]) if under
             else Location("graph", report.graph_name))
    detail = f"; witness: {witness.describe()}" if witness else ""
    yield Diagnostic(
        code="SA401", severity=Severity.ERROR,
        message=(
            f"proved throughput collapse: steady state moves "
            f"{occ.period.tokens_per_period} token(s) every "
            f"{occ.period.cycles} cycle(s) against an ideal period of "
            f"{occ.ideal_period}; under-depth stream(s): "
            f"{', '.join(under) or 'none'}{detail}"
        ),
        location=where,
        hint=f"raise FIFO depths to the proved minimal stall-free values "
             f"({fixes}) or run repro analyze --fix-depths",
    )


@rule("SA402", name="under-minimal-depth", family="analysis",
      description="every FIFO should hold the proved worst-case "
                  "occupancy of an unthrottled run; shallower FIFOs "
                  "provably stall their producer",
      requires=("graph",), severity=Severity.WARNING)
def check_minimal_depths(context: LintContext) -> Iterable[Diagnostic]:
    report = _analysis(context)
    if report is None:
        return
    occ = report.occupancy
    for name, proof in sorted(occ.streams.items()):
        if proof.verdict != "under":
            continue
        yield Diagnostic(
            code="SA402", severity=Severity.WARNING,
            message=(
                f"stream {name!r} depth {proof.depth} is below the proved "
                f"minimal stall-free depth {proof.min_safe}; its producer "
                f"blocked {proof.full_stalls} time(s) and the graph lost "
                f"{occ.overhead_cycles} cycle(s) overall"
            ),
            location=Location("stream", name),
            hint=f"set depth >= {proof.min_safe} "
                 f"(repro analyze --fix-depths patches the spec)",
        )


@rule("SA403", name="overprovisioned-fifo", family="analysis",
      description="a FIFO far deeper than the proved worst-case "
                  "occupancy wastes on-chip RAM",
      requires=("graph",), severity=Severity.INFO)
def check_overprovisioned(context: LintContext) -> Iterable[Diagnostic]:
    report = _analysis(context)
    if report is None:
        return
    for name, proof in sorted(report.occupancy.streams.items()):
        if proof.verdict != "over":
            continue
        yield Diagnostic(
            code="SA403", severity=Severity.INFO,
            message=(
                f"stream {name!r} depth {proof.depth} exceeds the proved "
                f"worst-case occupancy {proof.min_safe} by more than "
                f"{OVERPROVISION_SLACK} slots"
            ),
            location=Location("stream", name),
            hint=f"depth {proof.min_safe} is provably stall-free; reclaim "
                 f"the BRAM unless the margin is deliberate",
        )
