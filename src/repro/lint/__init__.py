"""repro.lint: the synthesis-time linter.

A rule-based static-analysis pass over dataflow graphs, kernel
configurations, and device budgets — the reproduction's equivalent of the
checks the HLS tool chains run before a design ever executes.  See
``docs/linting.md`` for the rule catalogue.

Public API
----------
:class:`Diagnostic`, :class:`Severity`, :class:`Location`,
:class:`LintReport`
    The diagnostics data model (:mod:`repro.lint.diagnostics`).
:class:`Rule`, :class:`RuleRegistry`, :class:`LintContext`,
:data:`DEFAULT_REGISTRY`, :func:`rule`
    The rule machinery (:mod:`repro.lint.registry`).
:func:`run_lint`, :func:`lint_graph`, :func:`lint_kernel`
    The runner (:mod:`repro.lint.runner`).
:func:`load_spec`, :func:`context_from_spec`
    JSON design-spec ingestion (:mod:`repro.lint.spec`).
:func:`build_structural_graph`
    Fig. 2 topology without field data (:mod:`repro.lint.builders`).

This ``__init__`` imports only the leaf modules eagerly; the rule modules
(which import the rest of :mod:`repro`) load lazily so that low-level
modules such as :mod:`repro.dataflow.graph` can emit diagnostics without
import cycles.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, LintReport, Location, Severity
from repro.lint.registry import (
    DEFAULT_REGISTRY,
    LintContext,
    Rule,
    RuleRegistry,
    rule,
)

__all__ = [
    "Diagnostic",
    "Severity",
    "Location",
    "LintReport",
    "Rule",
    "RuleRegistry",
    "LintContext",
    "DEFAULT_REGISTRY",
    "rule",
    "run_lint",
    "lint_graph",
    "lint_kernel",
    "load_builtin_rules",
    "load_spec",
    "context_from_spec",
    "build_structural_graph",
]

_LAZY = {
    "run_lint": "repro.lint.runner",
    "lint_graph": "repro.lint.runner",
    "lint_kernel": "repro.lint.runner",
    "load_builtin_rules": "repro.lint.runner",
    "load_spec": "repro.lint.spec",
    "context_from_spec": "repro.lint.spec",
    "build_structural_graph": "repro.lint.builders",
}


def __getattr__(name: str):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
