"""Rule registry and lint context.

A :class:`Rule` packages one static check: a stable code, the rule family
it belongs to, what inputs it needs (``graph``, ``config``, ``device``...),
and a check callable producing :class:`~repro.lint.diagnostics.Diagnostic`
objects.  Rules register themselves into a :class:`RuleRegistry` via the
:func:`rule` decorator; the runner walks the registry, skipping rules whose
requirements the :class:`LintContext` cannot satisfy and rules the caller
disabled.

Code families
-------------
``DF``  dataflow-graph structure (connectivity, topology, FIFO sizing)
``KC``  kernel configuration and Y chunking (halo coverage, II hazards)
``RS``  device resource budgets (fabric fit, on-chip RAM, memory capacity)
``AC``  FLOP accounting (the paper's 63/55-op model)
``SA``  proved static-analysis facts (deadlock, minimal depths, periods)
``BK``  backend deployments (e.g. Versal AI-engine array constraints)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.errors import ChunkingError
from repro.lint.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # imports deferred to avoid cycles at package import
    from repro.dataflow.graph import DataflowGraph
    from repro.hardware.device import FPGADevice
    from repro.kernel.config import KernelConfig
    from repro.shiftbuffer.chunking import ChunkPlan

__all__ = ["LintContext", "Rule", "RuleRegistry", "rule", "DEFAULT_REGISTRY"]


@dataclass
class LintContext:
    """Everything a lint run may inspect.

    Any field may be ``None``; rules declare their requirements and are
    skipped when the context lacks them.  ``chunk_plan`` defaults to the
    config's own plan; passing one explicitly lets callers lint hand-built
    (possibly broken) plans.
    """

    graph: "DataflowGraph | None" = None
    config: "KernelConfig | None" = None
    device: "FPGADevice | None" = None
    num_kernels: int | None = None
    chunk_plan: "ChunkPlan | None" = None
    #: External-memory initiation interval imposed on the read stage.
    read_ii: int = 1
    #: A backend-specific deployment under lint (e.g. a
    #: :class:`repro.backend.versal_aie.VersalDeployment`); only the
    #: ``BK`` rule family requires it, so every existing flow skips
    #: those rules untouched.
    backend_deployment: Any = None
    #: Free-form extras for experiment-specific rules.
    extras: dict[str, Any] = field(default_factory=dict)

    def resolved_chunk_plan(self) -> "ChunkPlan | None":
        if self.chunk_plan is not None:
            return self.chunk_plan
        if self.config is not None:
            try:
                return self.config.chunk_plan()
            except ChunkingError:
                # Geometry the planner rejects outright: the chunk-plan
                # rules are skipped and KC100 reports the rejection.
                return None
        return None

    def has(self, requirement: str) -> bool:
        """True when ``requirement`` is available on this context."""
        if requirement == "chunk_plan":
            return self.resolved_chunk_plan() is not None
        return getattr(self, requirement, None) is not None


CheckFn = Callable[[LintContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One registered static check."""

    code: str
    name: str
    family: str
    description: str
    requires: tuple[str, ...]
    default_severity: Severity
    check: CheckFn

    def applies(self, context: LintContext) -> bool:
        return all(context.has(req) for req in self.requires)

    def run(self, context: LintContext) -> list[Diagnostic]:
        return list(self.check(context))


class RuleRegistry:
    """A keyed collection of rules with per-rule enable/disable."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, new_rule: Rule) -> Rule:
        if new_rule.code in self._rules:
            raise ValueError(f"duplicate lint rule code {new_rule.code!r}")
        self._rules[new_rule.code] = new_rule
        return new_rule

    def get(self, code: str) -> Rule:
        try:
            return self._rules[code]
        except KeyError:
            raise KeyError(
                f"unknown lint rule {code!r}; known: {sorted(self._rules)}"
            ) from None

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, code: str) -> bool:
        return code in self._rules

    def __iter__(self) -> Iterator[Rule]:
        """Rules in stable (code) order."""
        return iter(sorted(self._rules.values(), key=lambda r: r.code))

    def families(self) -> tuple[str, ...]:
        return tuple(sorted({r.family for r in self._rules.values()}))

    def selected(self, *, select: Iterable[str] | None = None,
                 ignore: Iterable[str] | None = None) -> list[Rule]:
        """Rules enabled under ``select``/``ignore`` filters.

        Filters match exact codes, code prefixes (``DF``), or family
        names; ``ignore`` wins over ``select``.
        """
        def matches(r: Rule, patterns: Iterable[str]) -> bool:
            return any(
                r.code == p or r.code.startswith(p) or r.family == p
                for p in patterns
            )

        rules = list(self)
        if select is not None:
            chosen = list(select)
            rules = [r for r in rules if matches(r, chosen)]
        if ignore is not None:
            dropped = list(ignore)
            rules = [r for r in rules if not matches(r, dropped)]
        return rules


#: The registry built-in rule modules register into.
DEFAULT_REGISTRY = RuleRegistry()


def rule(code: str, *, name: str, family: str, description: str,
         requires: tuple[str, ...] = (),
         severity: Severity = Severity.ERROR,
         registry: RuleRegistry | None = None) -> Callable[[CheckFn], CheckFn]:
    """Decorator registering a check function as a lint rule."""

    def decorate(fn: CheckFn) -> CheckFn:
        (registry or DEFAULT_REGISTRY).register(Rule(
            code=code, name=name, family=family, description=description,
            requires=requires, default_severity=severity, check=fn,
        ))
        return fn

    return decorate
