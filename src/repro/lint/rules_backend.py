"""``BK`` rules: backend-deployment constraints (Versal AI-engine array).

The FPGA shift-buffer path prices FIFO depths and fabric budgets with
the ``DF``/``RS`` families; an AI-engine array has neither — its hard
limits are the stream interconnect (PLIO feed budget), the memory-tile
working set, the array geometry, and the vector datapath width.  These
rules inspect a :class:`~repro.lint.registry.LintContext`'s
``backend_deployment`` (duck-typed: ``device``/``point``/``grid`` plus
the derived ``streams_needed``/``tile_bytes_needed``), so the module
stays import-cycle-free and the family is skipped entirely for every
flow that does not target a backend deployment.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.registry import LintContext, rule

__all__: list[str] = []


def _location(deployment: object) -> Location:
    point = getattr(deployment, "point", None)
    detail = point.key() if point is not None else ""
    device = getattr(deployment, "device", None)
    name = getattr(device, "name", "backend")
    return Location("deployment", name, detail)


@rule("BK101", name="vector-lanes-illegal", family="backend",
      description="vector lanes must be a power of two no wider than the "
                  "engine datapath",
      requires=("backend_deployment",))
def check_vector_lanes(context: LintContext) -> Iterable[Diagnostic]:
    deployment = context.backend_deployment
    point = deployment.point
    lanes = point.vector_lanes
    limit = deployment.device.vector_lanes_max
    if lanes < 1 or lanes & (lanes - 1):
        yield Diagnostic(
            code="BK101", severity=Severity.ERROR,
            message=(
                f"vector_lanes = {lanes} is not a power of two; the VLIW "
                f"vector datapath only issues power-of-two lane groups"
            ),
            location=_location(deployment),
            hint="choose lanes from 1, 2, 4, 8",
        )
    elif lanes > limit:
        yield Diagnostic(
            code="BK101", severity=Severity.ERROR,
            message=(
                f"vector_lanes = {lanes} exceeds the engine datapath "
                f"width of {limit} single-precision lanes"
            ),
            location=_location(deployment),
            hint=f"the device issues at most {limit} SP FLOPs per cycle "
                 f"per engine",
        )


@rule("BK102", name="single-buffered-feed", family="backend",
      description="single-buffered memory tiles serialise load and "
                  "compute phases",
      requires=("backend_deployment",), severity=Severity.WARNING)
def check_buffering(context: LintContext) -> Iterable[Diagnostic]:
    deployment = context.backend_deployment
    if getattr(deployment, "buffers", 2) < 2:
        yield Diagnostic(
            code="BK102", severity=Severity.WARNING,
            message=(
                "single-buffered memory tiles serialise PLIO loads with "
                "engine compute; throughput drops to the harmonic mean "
                "of the two rates"
            ),
            location=_location(deployment),
            hint="double-buffer the memory tiles (ping-pong) to overlap "
                 "load and compute",
        )


@rule("BK201", name="plio-stream-budget", family="backend",
      description="tile columns must fit the device's PLIO stream budget",
      requires=("backend_deployment",))
def check_plio_streams(context: LintContext) -> Iterable[Diagnostic]:
    deployment = context.backend_deployment
    needed = deployment.streams_needed
    budget = deployment.device.plio_streams
    if needed > budget:
        yield Diagnostic(
            code="BK201", severity=Severity.ERROR,
            message=(
                f"deployment needs {needed} PLIO streams "
                f"({deployment.point.tile_columns} tile columns x 3 wind "
                f"fields), but the device exposes {budget}"
            ),
            location=_location(deployment),
            hint="reduce tile_columns or share streams across columns "
                 "(halving per-column feed)",
        )


@rule("BK202", name="tile-memory-overflow", family="backend",
      description="the memory-tile working set must fit local plus "
                  "neighbour tile memory",
      requires=("backend_deployment",))
def check_tile_memory(context: LintContext) -> Iterable[Diagnostic]:
    deployment = context.backend_deployment
    needed = deployment.tile_bytes_needed
    usable = deployment.device.tile_usable_bytes
    if needed > usable:
        yield Diagnostic(
            code="BK202", severity=Severity.ERROR,
            message=(
                f"memory-tile working set is {needed} bytes "
                f"({deployment.buffers} buffer(s) of "
                f"{deployment.point.vector_lanes} lanes x "
                f"{deployment.grid.nz}-cell columns), but only {usable} "
                f"bytes of local+neighbour tile memory are reachable"
            ),
            location=_location(deployment),
            hint="narrow the vector width, drop to single buffering, or "
                 "shorten the resident column window",
        )


@rule("BK301", name="array-geometry", family="backend",
      description="the deployment must fit the engine-array geometry",
      requires=("backend_deployment",))
def check_array_geometry(context: LintContext) -> Iterable[Diagnostic]:
    deployment = context.backend_deployment
    point = deployment.point
    device = deployment.device
    if not 1 <= point.tile_columns <= device.columns:
        yield Diagnostic(
            code="BK301", severity=Severity.ERROR,
            message=(
                f"tile_columns = {point.tile_columns} outside the array's "
                f"1..{device.columns} columns"
            ),
            location=_location(deployment),
        )
    if not 1 <= point.engines_per_column <= device.rows:
        yield Diagnostic(
            code="BK301", severity=Severity.ERROR,
            message=(
                f"engines_per_column = {point.engines_per_column} outside "
                f"the array's 1..{device.rows} rows"
            ),
            location=_location(deployment),
        )
