"""Kernel/chunking-family lint rules (``KC``): design parameters.

Checks over a :class:`~repro.kernel.config.KernelConfig` and its implied
:class:`~repro.shiftbuffer.chunking.ChunkPlan`.  The coverage rules
(``KC101``–``KC103``, ``KC108``, ``KC109``) delegate to
:meth:`ChunkPlan.coverage_diagnostics`, the same collector that backs
``validate_coverage`` — the linter and the runtime can never disagree on
what a broken plan is.  The remaining rules flag legal-but-costly designs:
a chunk wider than the domain, an initiation interval above 1 (the URAM
experiment of section III-A), chunk widths in the paper's
burst-inefficiency regime, and high read redundancy.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ChunkingError
from repro.kernel.cycle_model import KernelCycleModel
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.registry import LintContext, rule
from repro.shiftbuffer.chunking import MIN_EFFICIENT_CHUNK

#: Read amplification beyond which the overlap overhead stops being
#: negligible (a 1.5x redundancy means streaming half the domain again).
REDUNDANCY_THRESHOLD: float = 1.5


def _coverage(context: LintContext, codes: tuple[str, ...],
              ) -> Iterable[Diagnostic]:
    plan = context.resolved_chunk_plan()
    assert plan is not None
    return (d for d in plan.coverage_diagnostics() if d.code in codes)


@rule("KC100", name="invalid-chunk-geometry", family="kernel",
      description="the configured chunk geometry is rejected by the "
                  "chunk planner outright",
      requires=("config",))
def check_chunk_geometry(context: LintContext) -> Iterable[Diagnostic]:
    config = context.config
    assert config is not None
    if context.chunk_plan is not None:
        # An explicit plan was supplied; its own coverage rules apply.
        return
    try:
        config.chunk_plan()
    except ChunkingError as error:
        yield Diagnostic(
            code="KC100", severity=Severity.ERROR,
            message=str(error),
            location=Location("config", "kernel", "chunk_width"),
            hint="the planner rejects geometry it cannot tile; widen the "
                 "chunk (or shrink the halo) until chunk_width > halo",
        )


@rule("KC101", name="halo-dominated-chunk", family="kernel",
      description="chunks narrower than the seam overlap re-read more "
                  "halo than they write interior",
      requires=("chunk_plan",), severity=Severity.WARNING)
def check_halo_dominated(context: LintContext) -> Iterable[Diagnostic]:
    return _coverage(context, ("KC101",))


@rule("KC102", name="chunk-seam-mismatch", family="kernel",
      description="neighbouring chunks' write ranges must abut exactly "
                  "(no gap, no double-write)",
      requires=("chunk_plan",))
def check_chunk_seams(context: LintContext) -> Iterable[Diagnostic]:
    return _coverage(context, ("KC102",))


@rule("KC103", name="chunk-coverage-incomplete", family="kernel",
      description="the chunks must tile the entire interior",
      requires=("chunk_plan",))
def check_chunk_coverage(context: LintContext) -> Iterable[Diagnostic]:
    return _coverage(context, ("KC103",))


@rule("KC104", name="chunk-wider-than-domain", family="kernel",
      description="a chunk width above the domain's NY is silently "
                  "clamped; the configured width is misleading",
      requires=("config",), severity=Severity.WARNING)
def check_chunk_wider_than_domain(context: LintContext,
                                  ) -> Iterable[Diagnostic]:
    config = context.config
    assert config is not None
    if config.chunk_width > config.grid.ny:
        yield Diagnostic(
            code="KC104", severity=Severity.WARNING,
            message=(
                f"chunk width {config.chunk_width} exceeds the domain's "
                f"NY={config.grid.ny}; the shift buffers are sized by the "
                f"domain (buffer_ny={config.buffer_ny}) and chunking is a "
                f"no-op"
            ),
            location=Location("config", "kernel", "chunk_width"),
            hint=f"set chunk_width <= {config.grid.ny} (or leave it if the "
                 f"config is reused across larger grids)",
        )


@rule("KC105", name="initiation-interval-hazard", family="kernel",
      description="an effective II above 1 halves (or worse) the "
                  "pipeline's throughput — the paper's URAM experiment",
      requires=("config",), severity=Severity.WARNING)
def check_ii_hazard(context: LintContext) -> Iterable[Diagnostic]:
    config = context.config
    assert config is not None
    model = KernelCycleModel(config, read_ii=context.read_ii)
    if model.effective_ii > 1:
        culprit = ("external-memory read stage"
                   if context.read_ii >= config.shift_buffer_ii
                   else "shift-buffer stage")
        yield Diagnostic(
            code="KC105", severity=Severity.WARNING,
            message=(
                f"effective initiation interval is {model.effective_ii} "
                f"(limited by the {culprit}); throughput drops to "
                f"1/{model.effective_ii} cell per cycle"
            ),
            location=Location("config", "kernel", "shift_buffer_ii"),
            hint="partition the shift-buffer arrays (II=1) or widen the "
                 "memory path; see paper section III-A",
        )
    if not config.partitioned:
        yield Diagnostic(
            code="KC105", severity=Severity.WARNING,
            message=(
                "shift-buffer arrays are not partitioned: more than two "
                "accesses hit one RAM per cycle, forcing the tools to "
                "raise the initiation interval"
            ),
            location=Location("config", "kernel", "partitioned"),
            hint="enable partitioning (HLS array_partition / manual split "
                 "on Intel)",
        )


@rule("KC106", name="burst-inefficient-chunk", family="kernel",
      description="chunk widths below the paper's measured threshold "
                  "degrade external-memory burst efficiency",
      requires=("chunk_plan",), severity=Severity.WARNING)
def check_burst_efficiency(context: LintContext) -> Iterable[Diagnostic]:
    plan = context.resolved_chunk_plan()
    assert plan is not None
    narrowest = min(chunk.write_width for chunk in plan.chunks)
    if narrowest < MIN_EFFICIENT_CHUNK and plan.num_chunks > 1:
        yield Diagnostic(
            code="KC106", severity=Severity.WARNING,
            message=(
                f"narrowest chunk writes {narrowest} cells, below the "
                f"paper's burst-efficiency threshold of "
                f"{MIN_EFFICIENT_CHUNK}; short non-contiguous bursts "
                f"degrade sustained memory bandwidth"
            ),
            location=Location("chunk", "plan", "chunk_width"),
            hint=f"use a chunk width >= {MIN_EFFICIENT_CHUNK} (and ideally "
                 f"one that divides NY)",
        )


@rule("KC107", name="high-read-redundancy", family="kernel",
      description="overlap reads amplify external-memory traffic",
      requires=("chunk_plan",), severity=Severity.WARNING)
def check_read_redundancy(context: LintContext) -> Iterable[Diagnostic]:
    plan = context.resolved_chunk_plan()
    assert plan is not None
    if plan.redundancy > REDUNDANCY_THRESHOLD:
        yield Diagnostic(
            code="KC107", severity=Severity.WARNING,
            message=(
                f"chunk overlap re-reads {plan.overlap_cells} of "
                f"{plan.interior} interior cells "
                f"(redundancy {plan.redundancy:.2f}x > "
                f"{REDUNDANCY_THRESHOLD}x)"
            ),
            location=Location("chunk", "plan"),
            hint="widen the chunks; redundancy falls as "
                 "(width + 2*halo) / width",
        )


@rule("KC108", name="single-chunk-domain", family="kernel",
      description="the whole domain fits one chunk; chunking adds nothing",
      requires=("chunk_plan",), severity=Severity.INFO)
def check_single_chunk(context: LintContext) -> Iterable[Diagnostic]:
    return _coverage(context, ("KC108",))


@rule("KC109", name="ragged-tail-chunk", family="kernel",
      description="interior not divisible by the chunk width leaves a "
                  "narrower tail chunk",
      requires=("chunk_plan",), severity=Severity.INFO)
def check_ragged_tail(context: LintContext) -> Iterable[Diagnostic]:
    return _coverage(context, ("KC109",))
