"""Graph-family lint rules (``DF``): dataflow-region structure.

These are the properties the HLS tools verify when they elaborate a
dataflow region: every port wired, acyclic topology, and FIFO sizing that
cannot deadlock.  ``DF001``–``DF003`` delegate to
:meth:`repro.dataflow.graph.DataflowGraph.structural_diagnostics`, which
owns the structural pass (so :meth:`~repro.dataflow.graph.DataflowGraph.validate`
and the linter can never disagree); ``DF004``–``DF006`` are lint-only
analyses.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.dataflow.graph import Connection, DataflowGraph
from repro.dataflow.stage import Stage
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.registry import LintContext, rule

__all__ = ["reconvergent_paths"]

#: Cap on enumerated fork/join paths; real kernel graphs are tiny, this
#: only guards against pathological inputs.
_MAX_PATHS = 64


def _structural(context: LintContext, code: str) -> Iterable[Diagnostic]:
    assert context.graph is not None
    return (d for d in context.graph.structural_diagnostics()
            if d.code == code)


@rule("DF001", name="unconnected-port", family="graph",
      description="every declared stage port must be connected to exactly "
                  "one stream",
      requires=("graph",))
def check_unconnected_ports(context: LintContext) -> Iterable[Diagnostic]:
    return _structural(context, "DF001")


@rule("DF002", name="empty-graph", family="graph",
      description="a dataflow region must contain at least one stage",
      requires=("graph",))
def check_empty_graph(context: LintContext) -> Iterable[Diagnostic]:
    return _structural(context, "DF002")


@rule("DF003", name="cyclic-topology", family="graph",
      description="the stage topology must be a DAG (no feedback streams)",
      requires=("graph",))
def check_cycles(context: LintContext) -> Iterable[Diagnostic]:
    return _structural(context, "DF003")


def _simple_paths(edges: dict[str, list[Connection]], src: str, dst: str,
                  ) -> Iterator[tuple[Connection, ...]]:
    """All simple stream paths from ``src`` to ``dst`` (DFS, bounded)."""
    emitted = 0
    stack: list[tuple[str, tuple[Connection, ...]]] = [(src, ())]
    while stack and emitted < _MAX_PATHS:
        node, path = stack.pop()
        if node == dst and path:
            emitted += 1
            yield path
            continue
        for conn in edges.get(node, ()):
            if any(c.dst.name == conn.dst.name for c in path):
                continue  # already visited on this path
            stack.append((conn.dst.name, path + (conn,)))


def _path_latency(path: tuple[Connection, ...]) -> int:
    """Cycles a token spends in the stages *between* fork and join."""
    return sum(conn.dst.latency for conn in path[:-1])


def _path_capacity(path: tuple[Connection, ...]) -> int:
    """Tokens the path can buffer: FIFO slots plus in-flight pipeline."""
    fifo = sum(conn.stream.depth for conn in path)
    in_flight = sum(conn.dst.latency for conn in path[:-1])
    return fifo + in_flight


def reconvergent_paths(graph: DataflowGraph,
                       ) -> Iterator[tuple[Stage, Stage,
                                           list[tuple[Connection, ...]]]]:
    """Yield (fork, join, paths) triples with two or more parallel paths."""
    edges: dict[str, list[Connection]] = {}
    indegree: dict[str, int] = {}
    for conn in graph.connections():
        edges.setdefault(conn.src.name, []).append(conn)
        indegree[conn.dst.name] = indegree.get(conn.dst.name, 0) + 1
    forks = [s for s in graph.stages if len(edges.get(s.name, ())) >= 2]
    joins = [s for s in graph.stages if indegree.get(s.name, 0) >= 2]
    for fork in forks:
        for join in joins:
            if fork.name == join.name:
                continue
            paths = list(_simple_paths(edges, fork.name, join.name))
            if len(paths) >= 2:
                yield fork, join, paths


@rule("DF004", name="reconvergent-depth-mismatch", family="graph",
      description="on fork/join (reconvergent) paths, the latency skew "
                  "between branches must fit in the shallower branch's "
                  "FIFO capacity, or the fork stalls the whole region",
      requires=("graph",), severity=Severity.WARNING)
def check_reconvergent_depths(context: LintContext) -> Iterable[Diagnostic]:
    assert context.graph is not None
    for fork, join, paths in reconvergent_paths(context.graph):
        latencies = [_path_latency(p) for p in paths]
        capacities = [_path_capacity(p) for p in paths]
        slowest = max(latencies)
        for path, latency, capacity in zip(paths, latencies, capacities):
            skew = slowest - latency
            if skew > capacity:
                via = " -> ".join(
                    [fork.name] + [c.dst.name for c in path]
                )
                yield Diagnostic(
                    code="DF004", severity=Severity.WARNING,
                    message=(
                        f"reconvergent paths {fork.name!r} -> {join.name!r}: "
                        f"branch via {via!r} buffers at most {capacity} "
                        f"tokens but the slowest sibling branch lags by "
                        f"{skew} cycles; the join will backpressure the "
                        f"fork (deadlock risk with data-dependent rates)"
                    ),
                    location=Location("stage", fork.name),
                    hint=f"deepen the branch FIFOs by at least "
                         f"{skew - capacity} slots (stream depth= in "
                         f"DataflowGraph.connect)",
                )


@rule("DF005", name="isolated-stage", family="graph",
      description="a stage with no streams attached can never exchange "
                  "data with the rest of the region",
      requires=("graph",), severity=Severity.WARNING)
def check_isolated_stages(context: LintContext) -> Iterable[Diagnostic]:
    assert context.graph is not None
    graph = context.graph
    if len(graph.stages) < 2:
        return
    for stage in graph.stages:
        declares_ports = stage.input_ports or stage.output_ports
        if declares_ports and not stage.inputs and not stage.outputs:
            yield Diagnostic(
                code="DF005", severity=Severity.WARNING,
                message=(
                    f"stage {stage.name!r} is isolated: declared ports but "
                    f"no stream reaches or leaves it"
                ),
                location=Location("stage", stage.name),
                hint="connect the stage or drop it from the graph",
            )


@rule("DF006", name="single-register-fifo", family="graph",
      description="a depth-1 FIFO cannot hold a produced value while the "
                  "consumer is busy; producer and consumer run in "
                  "lock-step, halving throughput on any hiccup",
      requires=("graph",), severity=Severity.INFO)
def check_shallow_streams(context: LintContext) -> Iterable[Diagnostic]:
    assert context.graph is not None
    for stream in context.graph.streams:
        if stream.depth < 2:
            yield Diagnostic(
                code="DF006", severity=Severity.INFO,
                message=(
                    f"stream {stream.name!r} has depth {stream.depth}; "
                    f"below the tool default of 2 (producer + consumer "
                    f"register)"
                ),
                location=Location("stream", stream.name),
                hint="use depth >= 2 unless the lock-step coupling is "
                     "intentional",
            )
