"""Graph-family lint rules (``DF``): dataflow-region structure.

These are the properties the HLS tools verify when they elaborate a
dataflow region: every port wired, acyclic topology, and FIFO sizing that
cannot deadlock.  ``DF001``–``DF003`` delegate to
:meth:`repro.dataflow.graph.DataflowGraph.structural_diagnostics`, which
owns the structural pass (so :meth:`~repro.dataflow.graph.DataflowGraph.validate`
and the linter can never disagree); ``DF004``–``DF006`` are lint-only
analyses.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.dataflow.graph import Connection, DataflowGraph
from repro.dataflow.stage import Stage
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.registry import LintContext, rule

__all__ = ["reconvergent_paths"]

#: Cap on enumerated fork/join paths; real kernel graphs are tiny, this
#: only guards against pathological inputs.
_MAX_PATHS = 64


def _structural(context: LintContext, code: str) -> Iterable[Diagnostic]:
    assert context.graph is not None
    return (d for d in context.graph.structural_diagnostics()
            if d.code == code)


@rule("DF001", name="unconnected-port", family="graph",
      description="every declared stage port must be connected to exactly "
                  "one stream",
      requires=("graph",))
def check_unconnected_ports(context: LintContext) -> Iterable[Diagnostic]:
    return _structural(context, "DF001")


@rule("DF002", name="empty-graph", family="graph",
      description="a dataflow region must contain at least one stage",
      requires=("graph",))
def check_empty_graph(context: LintContext) -> Iterable[Diagnostic]:
    return _structural(context, "DF002")


@rule("DF003", name="cyclic-topology", family="graph",
      description="the stage topology must be a DAG (no feedback streams)",
      requires=("graph",))
def check_cycles(context: LintContext) -> Iterable[Diagnostic]:
    return _structural(context, "DF003")


def _reachable(edges: dict[str, list[str]], start: str) -> set[str]:
    """Nodes reachable from ``start`` (excluding ``start`` unless cyclic)."""
    seen: set[str] = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for nxt in edges.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def _simple_paths(edges: dict[str, list[Connection]], src: str, dst: str,
                  ) -> Iterator[tuple[Connection, ...]]:
    """Simple stream paths from ``src`` to ``dst`` (DFS, bounded).

    The walk is pruned to nodes that can still reach ``dst``, so every
    DFS branch terminates in an emitted path: the work is bounded by
    ``_MAX_PATHS`` times the path length, not by the (exponential) number
    of partial paths in the downstream cone.
    """
    back: dict[str, list[str]] = {}
    for conns in edges.values():
        for conn in conns:
            back.setdefault(conn.dst.name, []).append(conn.src.name)
    reaches_dst = _reachable(back, dst) | {dst}
    emitted = 0
    stack: list[tuple[str, tuple[Connection, ...]]] = [(src, ())]
    while stack and emitted < _MAX_PATHS:
        node, path = stack.pop()
        if node == dst and path:
            emitted += 1
            yield path
            continue
        for conn in edges.get(node, ()):
            if conn.dst.name not in reaches_dst:
                continue
            if any(c.dst.name == conn.dst.name for c in path):
                continue  # already visited on this path
            stack.append((conn.dst.name, path + (conn,)))


def _path_latency(path: tuple[Connection, ...]) -> int:
    """Cycles a token spends in the stages *between* fork and join."""
    return sum(conn.dst.latency for conn in path[:-1])


def _path_capacity(path: tuple[Connection, ...]) -> int:
    """Tokens the path can buffer: FIFO slots plus in-flight pipeline."""
    fifo = sum(conn.stream.depth for conn in path)
    in_flight = sum(conn.dst.latency for conn in path[:-1])
    return fifo + in_flight


def _reconvergent_pairs(graph: DataflowGraph,
                        edges: dict[str, list[Connection]],
                        ) -> Iterator[tuple[Stage, Stage]]:
    """(fork, join) pairs joined by two or more distinct paths.

    Path *counts* come from a topological DP saturated at 2 — no
    enumeration, so dense fork–join lattices (where the true count is
    exponential) cost O(forks * edges).
    """
    indegree: dict[str, int] = {}
    for conns in edges.values():
        for conn in conns:
            indegree[conn.dst.name] = indegree.get(conn.dst.name, 0) + 1
    forks = [s for s in graph.stages if len(edges.get(s.name, ())) >= 2]
    joins = [s for s in graph.stages if indegree.get(s.name, 0) >= 2]
    if not forks or not joins:
        return
    order = graph.topological_order()
    for fork in forks:
        counts = {fork.name: 1}
        for stage in order:
            here = counts.get(stage.name, 0)
            if not here:
                continue
            for conn in edges.get(stage.name, ()):
                dst = conn.dst.name
                counts[dst] = min(2, counts.get(dst, 0) + here)
        for join in joins:
            if join.name != fork.name and counts.get(join.name, 0) >= 2:
                yield fork, join


def reconvergent_paths(graph: DataflowGraph,
                       ) -> Iterator[tuple[Stage, Stage,
                                           list[tuple[Connection, ...]]]]:
    """Yield (fork, join, paths) triples with two or more parallel paths.

    Path lists are capped at ``_MAX_PATHS``; use the DP aggregates in
    :func:`check_reconvergent_depths` when only extremal latencies or
    capacities are needed.
    """
    edges: dict[str, list[Connection]] = {}
    for conn in graph.connections():
        edges.setdefault(conn.src.name, []).append(conn)
    for fork, join in _reconvergent_pairs(graph, edges):
        paths = list(_simple_paths(edges, fork.name, join.name))
        if len(paths) >= 2:
            yield fork, join, paths


def _worst_branch(graph: DataflowGraph, edges: dict[str, list[Connection]],
                  fork: Stage, join: Stage,
                  ) -> tuple[int, tuple[Connection, ...]] | None:
    """Max branch latency and the min-(latency+capacity) path, by DP.

    Restricted to the fork→join cone, one topological pass computes the
    slowest branch latency and — with backpointers — the concrete branch
    whose latency-plus-capacity is smallest, i.e. the one least able to
    absorb the skew.  Replaces enumerating every simple path (exponential
    on fork–join lattices) with O(edges) work per pair.
    """
    back: dict[str, list[str]] = {}
    succ: dict[str, list[str]] = {}
    for conns in edges.values():
        for conn in conns:
            succ.setdefault(conn.src.name, []).append(conn.dst.name)
            back.setdefault(conn.dst.name, []).append(conn.src.name)
    on_path = ((_reachable(succ, fork.name) | {fork.name})
               & (_reachable(back, join.name) | {join.name}))
    max_lat = {fork.name: 0}
    min_lat_cap = {fork.name: 0}
    backptr: dict[str, Connection] = {}
    for stage in graph.topological_order():
        name = stage.name
        if name not in on_path or name not in max_lat or name == join.name:
            continue
        for conn in edges.get(name, ()):
            dst = conn.dst.name
            if dst not in on_path:
                continue
            # Tokens spend conn.dst.latency cycles inside every stage
            # *between* fork and join; the join itself is outside the
            # buffered region (it consumes, it does not delay siblings).
            step = conn.dst.latency if dst != join.name else 0
            lat = max_lat[name] + step
            if lat > max_lat.get(dst, -1):
                max_lat[dst] = lat
            # latency+capacity telescopes to per-edge weights: the FIFO's
            # slots plus the intermediate stage's latency counted twice
            # (once as lag, once as in-flight buffering).
            lat_cap = min_lat_cap[name] + conn.stream.depth + 2 * step
            if dst not in min_lat_cap or lat_cap < min_lat_cap[dst]:
                min_lat_cap[dst] = lat_cap
                backptr[dst] = conn
    if join.name not in max_lat or max_lat[join.name] <= min_lat_cap[join.name]:
        return None
    path: list[Connection] = []
    node = join.name
    while node != fork.name:
        conn = backptr[node]
        path.append(conn)
        node = conn.src.name
    return max_lat[join.name], tuple(reversed(path))


@rule("DF004", name="reconvergent-depth-mismatch", family="graph",
      description="on fork/join (reconvergent) paths, the latency skew "
                  "between branches must fit in the shallower branch's "
                  "FIFO capacity, or the fork stalls the whole region",
      requires=("graph",), severity=Severity.WARNING)
def check_reconvergent_depths(context: LintContext) -> Iterable[Diagnostic]:
    assert context.graph is not None
    graph = context.graph
    edges: dict[str, list[Connection]] = {}
    for conn in graph.connections():
        edges.setdefault(conn.src.name, []).append(conn)
    for fork, join in _reconvergent_pairs(graph, edges):
        worst = _worst_branch(graph, edges, fork, join)
        if worst is None:
            continue
        slowest, path = worst
        latency = _path_latency(path)
        capacity = _path_capacity(path)
        skew = slowest - latency
        via = " -> ".join([fork.name] + [c.dst.name for c in path])
        yield Diagnostic(
            code="DF004", severity=Severity.WARNING,
            message=(
                f"reconvergent paths {fork.name!r} -> {join.name!r}: "
                f"branch via {via!r} buffers at most {capacity} "
                f"tokens but the slowest sibling branch lags by "
                f"{skew} cycles; the join will backpressure the "
                f"fork (deadlock risk with data-dependent rates)"
            ),
            location=Location("stage", fork.name),
            hint=f"deepen the branch FIFOs by at least "
                 f"{skew - capacity} slots (stream depth= in "
                 f"DataflowGraph.connect)",
        )


@rule("DF005", name="isolated-stage", family="graph",
      description="a stage with no streams attached can never exchange "
                  "data with the rest of the region",
      requires=("graph",), severity=Severity.WARNING)
def check_isolated_stages(context: LintContext) -> Iterable[Diagnostic]:
    assert context.graph is not None
    graph = context.graph
    if len(graph.stages) < 2:
        return
    for stage in graph.stages:
        declares_ports = stage.input_ports or stage.output_ports
        if declares_ports and not stage.inputs and not stage.outputs:
            yield Diagnostic(
                code="DF005", severity=Severity.WARNING,
                message=(
                    f"stage {stage.name!r} is isolated: declared ports but "
                    f"no stream reaches or leaves it"
                ),
                location=Location("stage", stage.name),
                hint="connect the stage or drop it from the graph",
            )


@rule("DF006", name="single-register-fifo", family="graph",
      description="a depth-1 FIFO cannot hold a produced value while the "
                  "consumer is busy; producer and consumer run in "
                  "lock-step, halving throughput on any hiccup",
      requires=("graph",), severity=Severity.INFO)
def check_shallow_streams(context: LintContext) -> Iterable[Diagnostic]:
    assert context.graph is not None
    for stream in context.graph.streams:
        if stream.depth < 2:
            yield Diagnostic(
                code="DF006", severity=Severity.INFO,
                message=(
                    f"stream {stream.name!r} has depth {stream.depth}; "
                    f"below the tool default of 2 (producer + consumer "
                    f"register)"
                ),
                location=Location("stream", stream.name),
                hint="use depth >= 2 unless the lock-step coupling is "
                     "intentional",
            )
