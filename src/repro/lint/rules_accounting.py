"""Accounting-family lint rules (``AC``): the 63/55-op FLOP model.

Every GFLOPS figure in the reproduction divides by the FLOP counts of
:mod:`repro.core.flops`; these rules pin that model to the paper's
published numbers (63 operations per cell, 55 at the column top) and
cross-check any per-stage accounting a dataflow graph carries against it.
A drift here silently re-scales every performance result, which is why it
is linted rather than trusted.
"""

from __future__ import annotations

from typing import Iterable

from repro import constants
from repro.core.flops import cell_flops, column_flops, grid_flops, strict_grid_flops
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.registry import LintContext, rule

#: The paper's published per-cell operation counts (section III).
PAPER_OPS_PER_CELL: int = 63
PAPER_OPS_PER_TOP_CELL: int = 55

#: The paper's quoted theoretical ops/cycle at the MONC default column
#: height of 64 — which :func:`repro.constants.derived_ops_per_cycle`
#: must reproduce exactly from the 63/55 model.
PAPER_OPS_PER_CYCLE_AT_64: float = 62.875

#: Below this strict/paper ratio the convention difference stops being
#: negligible and quoted GFLOPS overstate executed operations.
CONVENTION_RATIO_FLOOR: float = 0.9


@rule("AC301", name="paper-op-model-drift", family="accounting",
      description="the per-cell operation counts must match the paper's "
                  "63/55 figures",
      requires=())
def check_paper_constants(context: LintContext) -> Iterable[Diagnostic]:
    checks = (
        ("cell_flops()", cell_flops(), PAPER_OPS_PER_CELL),
        ("cell_flops(top=True)", cell_flops(top=True),
         PAPER_OPS_PER_TOP_CELL),
        ("constants.OPS_PER_CELL", constants.OPS_PER_CELL,
         PAPER_OPS_PER_CELL),
        ("constants.OPS_PER_TOP_CELL", constants.OPS_PER_TOP_CELL,
         PAPER_OPS_PER_TOP_CELL),
    )
    for name, actual, expected in checks:
        if actual != expected:
            yield Diagnostic(
                code="AC301", severity=Severity.ERROR,
                message=(
                    f"{name} = {actual}, but the paper's operation model "
                    f"requires {expected}; every GFLOPS figure would be "
                    f"silently re-scaled"
                ),
                location=Location("model", "core.flops", name),
                hint="restore the 21-op per-field / 4-op top-saving "
                     "constants, or recalibrate every experiment",
            )


@rule("AC302", name="column-accounting-mismatch", family="accounting",
      description="column and grid FLOP totals must compose from the "
                  "per-cell counts",
      requires=("config",))
def check_column_accounting(context: LintContext) -> Iterable[Diagnostic]:
    config = context.config
    assert config is not None
    nz = config.grid.nz
    expected_column = (nz - 1) * cell_flops() + cell_flops(top=True)
    actual_column = column_flops(nz)
    if actual_column != expected_column:
        yield Diagnostic(
            code="AC302", severity=Severity.ERROR,
            message=(
                f"column_flops({nz}) = {actual_column}, expected "
                f"{expected_column} ((nz-1) full cells + one top cell)"
            ),
            location=Location("model", "core.flops", "column_flops"),
        )
    expected_grid = config.grid.num_columns * actual_column
    actual_grid = grid_flops(config.grid)
    if actual_grid != expected_grid:
        yield Diagnostic(
            code="AC302", severity=Severity.ERROR,
            message=(
                f"grid_flops = {actual_grid}, expected {expected_grid} "
                f"(num_columns * column_flops)"
            ),
            location=Location("model", "core.flops", "grid_flops"),
        )


@rule("AC303", name="stage-flops-mismatch", family="accounting",
      description="per-stage FLOP declarations in a graph must sum to the "
                  "63/55-op cell model",
      requires=("graph",))
def check_stage_flops(context: LintContext) -> Iterable[Diagnostic]:
    assert context.graph is not None
    declaring = [s for s in context.graph.stages
                 if getattr(s, "flops_per_cell", None) is not None]
    if not declaring:
        return
    total = sum(s.flops_per_cell for s in declaring)
    total_top = sum(
        getattr(s, "flops_per_cell_top", s.flops_per_cell)
        for s in declaring
    )
    if total != cell_flops():
        yield Diagnostic(
            code="AC303", severity=Severity.ERROR,
            message=(
                f"stages declare {total} operations per cell "
                f"({', '.join(s.name for s in declaring)}), but the model "
                f"requires {cell_flops()}"
            ),
            location=Location("graph", context.graph.name),
            hint="each advect stage contributes 21 ops "
                 "(constants.OPS_PER_FIELD)",
        )
    if total_top != cell_flops(top=True):
        yield Diagnostic(
            code="AC303", severity=Severity.ERROR,
            message=(
                f"stages declare {total_top} operations per column-top "
                f"cell, but the model requires {cell_flops(top=True)}"
            ),
            location=Location("graph", context.graph.name),
            hint="the one-sided vertical term saves 4 ops on the U and V "
                 "stages only",
        )


@rule("AC305", name="derived-ops-per-cycle-drift", family="accounting",
      description="the theoretical ops/cycle must derive from the column "
                  "height and the per-cell operation model, reproducing "
                  "62.875 at the MONC default height",
      requires=())
def check_derived_ops_per_cycle(context: LintContext) -> Iterable[Diagnostic]:
    # The quoted 62.875 must fall out of the formula at the default
    # height, not be hard-coded anywhere.
    at_default = constants.derived_ops_per_cycle(
        constants.DEFAULT_COLUMN_HEIGHT)
    if at_default != PAPER_OPS_PER_CYCLE_AT_64:
        yield Diagnostic(
            code="AC305", severity=Severity.ERROR,
            message=(
                f"derived_ops_per_cycle({constants.DEFAULT_COLUMN_HEIGHT}) "
                f"= {at_default}, but the paper quotes "
                f"{PAPER_OPS_PER_CYCLE_AT_64}; the theoretical-peak "
                f"denominator of every roofline report has drifted"
            ),
            location=Location("model", "constants", "derived_ops_per_cycle"),
            hint="the figure must equal ((h-1)*63 + 55) / h at h=64",
        )
    # The historical alias must stay in lock-step with the derivation.
    heights = (2, 8, constants.DEFAULT_COLUMN_HEIGHT, 96, 128)
    for height in heights:
        derived = constants.derived_ops_per_cycle(height)
        composed = ((height - 1) * constants.OPS_PER_CELL
                    + constants.OPS_PER_TOP_CELL) / height
        alias = constants.average_ops_per_cycle(height)
        if derived != composed or alias != derived:
            yield Diagnostic(
                code="AC305", severity=Severity.ERROR,
                message=(
                    f"ops/cycle at column height {height} does not compose "
                    f"from the operation model: derived={derived}, "
                    f"composed={composed}, alias={alias}"
                ),
                location=Location("model", "constants",
                                  "derived_ops_per_cycle"),
            )
            break


@rule("AC304", name="convention-divergence", family="accounting",
      description="the paper convention charges cells the numerics skip; "
                  "on short columns the divergence inflates GFLOPS",
      requires=("config",), severity=Severity.INFO)
def check_convention_divergence(context: LintContext,
                                ) -> Iterable[Diagnostic]:
    config = context.config
    assert config is not None
    paper = grid_flops(config.grid)
    strict = strict_grid_flops(config.grid)
    ratio = strict / paper if paper else 1.0
    if ratio < CONVENTION_RATIO_FLOOR:
        yield Diagnostic(
            code="AC304", severity=Severity.INFO,
            message=(
                f"paper-convention FLOPs exceed executed operations by "
                f"{(1 - ratio):.0%} at nz={config.grid.nz}; quoted GFLOPS "
                f"overstate executed work accordingly"
            ),
            location=Location("config", "kernel", "grid.nz"),
            hint="quote strict_grid_flops alongside grid_flops for short "
                 "columns",
        )
