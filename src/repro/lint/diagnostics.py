"""Structured diagnostics: the currency of the synthesis-time linter.

The HLS tool chains the paper relies on never *run* a broken design: the
dataflow region is statically checked (port connectivity, II scheduling,
RAM budgets) and violations come back as a report of coded messages.  This
module is the reproduction's equivalent report format.

A :class:`Diagnostic` is one finding: a stable code (``DF001``), a
severity, a human message, an optional :class:`Location` naming the object
at fault, and a fix hint.  A :class:`LintReport` is an ordered collection
with text and JSON renderings and an exit-code policy (errors fail the
build, warnings do not unless the caller opts into strictness).

This module is deliberately a leaf: it imports nothing from the rest of
:mod:`repro`, so low-level modules (the dataflow graph, the chunk planner)
can *emit* diagnostics without creating import cycles.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

__all__ = ["Severity", "Location", "Diagnostic", "LintReport"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings would make the HLS tools reject the design (or the
    simulator deadlock/corrupt results); ``WARNING`` findings synthesise
    but degrade performance or waste resources; ``INFO`` findings are
    advisory observations.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Location:
    """The object a diagnostic points at.

    ``kind`` is a coarse category (``stage``, ``stream``, ``config``,
    ``device``, ``chunk``, ``model``); ``name`` identifies the instance;
    ``detail`` optionally narrows further (a port, a resource axis).
    """

    kind: str
    name: str
    detail: str = ""

    def __str__(self) -> str:
        base = f"{self.kind}:{self.name}"
        return f"{base}.{self.detail}" if self.detail else base


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding."""

    code: str
    severity: Severity
    message: str
    location: Location | None = None
    hint: str = ""
    rule: str = ""
    family: str = ""

    def render(self) -> str:
        """One-line human rendering, ``grep``- and editor-friendly."""
        where = f" [{self.location}]" if self.location else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.code} {self.severity}:{where} {self.message}{hint}"

    def to_dict(self) -> dict:
        """JSON-serialisable form (the schema the CLI emits)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": str(self.location) if self.location else None,
            "hint": self.hint or None,
            "rule": self.rule or None,
            "family": self.family or None,
        }


def _sort_key(diag: Diagnostic) -> tuple:
    # Deterministic (code, location, message) order: stable under rule
    # registration order and severity policy changes, so CI JSON diffs
    # only move when a finding actually appears or disappears.
    return (diag.code, str(diag.location) if diag.location else "",
            diag.message)


@dataclass(frozen=True)
class LintReport:
    """An ordered, queryable collection of diagnostics for one subject."""

    subject: str = ""
    diagnostics: tuple[Diagnostic, ...] = field(default=())

    @classmethod
    def collect(cls, subject: str, diagnostics: list[Diagnostic] | tuple[Diagnostic, ...]) -> "LintReport":
        """Build a report with diagnostics sorted by (code, location,
        message)."""
        return cls(subject=subject,
                   diagnostics=tuple(sorted(diagnostics, key=_sort_key)))

    # -- queries ---------------------------------------------------------------

    def by_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when the subject would pass synthesis (no errors)."""
        return not self.errors

    @property
    def codes(self) -> tuple[str, ...]:
        """Distinct diagnostic codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def exit_code(self, *, strict: bool = False) -> int:
        """CLI exit status: 1 on errors (or warnings when ``strict``)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def merged(self, other: "LintReport") -> "LintReport":
        """This report plus another's diagnostics (multi-subject runs)."""
        subject = self.subject if self.subject == other.subject else (
            f"{self.subject}+{other.subject}" if self.subject else other.subject
        )
        return LintReport.collect(
            subject, list(self.diagnostics) + list(other.diagnostics)
        )

    # -- renderings ------------------------------------------------------------

    def summary_line(self) -> str:
        return (f"{self.subject or 'lint'}: {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s), {len(self.infos)} info(s)")

    def render_text(self) -> str:
        """Multi-line human report (summary last, like compiler output)."""
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary_line())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
                "codes": list(self.codes),
                "ok": self.ok,
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
