"""The lint runner: applies the rule catalogue to a context.

:func:`run_lint` is the primitive — walk a registry, skip rules whose
requirements the context cannot satisfy or that the caller disabled,
collect diagnostics into a :class:`~repro.lint.diagnostics.LintReport`.
:func:`lint_graph` and :func:`lint_kernel` are the convenience entry
points the engine pre-flight hook and the CLI use.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import TYPE_CHECKING, Iterable

from repro.lint.diagnostics import LintReport
from repro.lint.registry import DEFAULT_REGISTRY, LintContext, RuleRegistry

if TYPE_CHECKING:
    from repro.dataflow.graph import DataflowGraph
    from repro.hardware.device import FPGADevice
    from repro.kernel.config import KernelConfig

__all__ = ["run_lint", "lint_graph", "lint_kernel", "load_builtin_rules"]

_BUILTIN_RULE_MODULES = (
    "repro.lint.rules_graph",
    "repro.lint.rules_kernel",
    "repro.lint.rules_resource",
    "repro.lint.rules_accounting",
    "repro.lint.rules_analyze",
    "repro.lint.rules_backend",
)


def load_builtin_rules() -> RuleRegistry:
    """Import the built-in rule modules (idempotent) and return the registry."""
    for module in _BUILTIN_RULE_MODULES:
        importlib.import_module(module)
    return DEFAULT_REGISTRY


def run_lint(context: LintContext, *, registry: RuleRegistry | None = None,
             select: Iterable[str] | None = None,
             ignore: Iterable[str] | None = None,
             subject: str = "") -> LintReport:
    """Run every applicable, enabled rule over ``context``.

    Parameters
    ----------
    context:
        What to lint; rules whose requirements (graph, config, device...)
        are missing are skipped, not failed.
    registry:
        Rule catalogue (default: the built-in rules).
    select, ignore:
        Enable/disable filters matching rule codes, code prefixes
        (``"DF"``), or family names (``"resource"``); ``ignore`` wins.
    subject:
        Label for the report (defaults to the graph's name if present).
    """
    if registry is None:
        registry = load_builtin_rules()
    if not subject and context.graph is not None:
        subject = context.graph.name
    diagnostics = []
    for rule in registry.selected(select=select, ignore=ignore):
        if rule.applies(context):
            for diag in rule.run(context):
                diagnostics.append(dataclasses.replace(
                    diag,
                    rule=diag.rule or rule.name,
                    family=diag.family or rule.family,
                ))
    return LintReport.collect(subject or "lint", diagnostics)


def lint_graph(graph: "DataflowGraph", **kwargs) -> LintReport:
    """Lint a wired dataflow graph (graph + accounting families)."""
    return run_lint(LintContext(graph=graph), **kwargs)


def lint_kernel(config: "KernelConfig",
                device: "FPGADevice | None" = None,
                num_kernels: int | None = None, *,
                graph: "DataflowGraph | None" = None,
                read_ii: int = 1, **kwargs) -> LintReport:
    """Lint a kernel design, deriving its Fig. 2 graph if none is given."""
    if graph is None:
        from repro.lint.builders import build_structural_graph

        graph = build_structural_graph(config, read_ii=read_ii)
    return run_lint(
        LintContext(graph=graph, config=config, device=device,
                    num_kernels=num_kernels, read_ii=read_ii),
        **kwargs,
    )
