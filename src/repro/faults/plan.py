"""The deterministic fault-injection plane.

A :class:`FaultPlan` holds declarative :class:`FaultSpec` entries and is
consulted by the runtime layers at well-defined *opportunities*:

========  =============================================  ==================
site      one opportunity per                            kinds
========  =============================================  ==================
transfer  transfer attempt in the schedule simulator     ``fail``, ``stall``
fifo      word pushed into a matching dataflow stream    ``corrupt``, ``drop``
stage     engine run, per matching stage                 ``freeze``
replica   (kernel replica, chunk) seam                   ``slow``, ``kill``
rank      rank compute in the distributed driver         ``drop``
device    job dispatched to a fleet device lane          ``loss``, ``blip``
========  =============================================  ==================

Whether a spec fires at an opportunity is a pure function of
``(plan seed, spec index, site, name, occurrence index)`` — a keyed-hash
draw, not a shared RNG stream — so decisions do not depend on the order
in which unrelated sites are queried, and identical seeds reproduce
identical fault traces.  Every firing is appended to :attr:`FaultPlan.trace`.

Specs are *transient* by default (``count=1``): after firing once they go
inert, which is what lets retry/checkpoint recovery succeed and the run
finish bit-identical to the fault-free golden output.  ``count=None``
makes a fault persistent, driving the retry budget to exhaustion and a
typed :class:`~repro.errors.RetryExhaustedError` instead.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Callable, Iterable

from repro.dataflow.stream import DROP_WORD, CorruptedWord
from repro.errors import ConfigurationError

__all__ = ["FaultSpec", "FaultPlan", "FaultEvent"]

#: Legal fault kinds per injection site.
SITE_KINDS: dict[str, frozenset[str]] = {
    "transfer": frozenset({"fail", "stall"}),
    "fifo": frozenset({"corrupt", "drop"}),
    "stage": frozenset({"freeze"}),
    "replica": frozenset({"slow", "kill"}),
    "rank": frozenset({"drop"}),
    "device": frozenset({"loss", "blip"}),
}


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: where it strikes, how, and how often.

    Parameters
    ----------
    site:
        Injection site (see module table).
    kind:
        Fault kind, legal for the site.
    match:
        ``fnmatch`` glob against the opportunity name (a command name,
        stream name, stage name, ``k<p>:chunk<j>`` replica seam, or
        ``rank<r>``).
    probability:
        Per-opportunity firing chance in (0, 1]; drawn deterministically.
    count:
        Total firings before the spec goes inert (``None`` = persistent).
    seconds:
        ``transfer``/``stall``: extra modelled seconds the transfer
        hangs for; ``None`` means it never completes (the schedule
        watchdog fires instead).  ``device``/``blip``: modelled seconds
        the lane stays down before a half-open probe can succeed
        (``None`` lets the fleet scheduler apply its default downtime).
    cycles:
        ``stage``/``freeze`` only: cycles the stage stays frozen
        (``None`` = forever, surfacing as a deadlock or watchdog trip).
    at_cycle:
        ``stage``/``freeze`` only: first frozen cycle (default 0).
    factor:
        ``replica``/``slow`` only: read-stage II multiplier (>= 1).
    """

    site: str
    kind: str
    match: str = "*"
    probability: float = 1.0
    count: int | None = 1
    seconds: float | None = None
    cycles: int | None = None
    at_cycle: int = 0
    factor: float = 2.0

    def __post_init__(self) -> None:
        kinds = SITE_KINDS.get(self.site)
        if kinds is None:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known: "
                f"{sorted(SITE_KINDS)}"
            )
        if self.kind not in kinds:
            raise ConfigurationError(
                f"site {self.site!r} does not support kind {self.kind!r}; "
                f"legal: {sorted(kinds)}"
            )
        if not 0 < self.probability <= 1:
            raise ConfigurationError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.count is not None and self.count < 1:
            raise ConfigurationError(
                f"count must be >= 1 or None, got {self.count}"
            )
        if self.seconds is not None and self.seconds < 0:
            raise ConfigurationError(
                f"seconds must be >= 0, got {self.seconds}"
            )
        if self.cycles is not None and self.cycles < 1:
            raise ConfigurationError(
                f"cycles must be >= 1 or None, got {self.cycles}"
            )
        if self.at_cycle < 0:
            raise ConfigurationError(
                f"at_cycle must be >= 0, got {self.at_cycle}"
            )
        if self.factor < 1:
            raise ConfigurationError(
                f"factor must be >= 1, got {self.factor}"
            )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the plan's trace."""

    site: str
    name: str
    kind: str
    spec_index: int
    occurrence: int

    def key(self) -> tuple[str, str, str, int, int]:
        """Hashable identity used for trace-equality checks."""
        return (self.site, self.name, self.kind, self.spec_index,
                self.occurrence)


class FaultPlan:
    """A seeded set of fault specs plus the trace of what actually fired.

    The plan is mutable state shared across one faulted run (including
    its retries): occurrence counters advance monotonically, so a
    count-capped spec that struck an operation once stays inert when the
    recovery layer re-attempts it — the definition of a transient fault.
    Call :meth:`reset` to replay the identical fault sequence from the
    start (the chaos harness does, to verify trace determinism).
    """

    def __init__(self, specs: Iterable[FaultSpec], *, seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self.trace: list[FaultEvent] = []
        self._fired = [0] * len(self.specs)
        self._seen: dict[tuple[int, str], int] = {}
        self._sites = frozenset(spec.site for spec in self.specs)

    @property
    def active(self) -> bool:
        """True when any spec exists (fault-free plans cost nothing)."""
        return bool(self.specs)

    def targets(self, site: str) -> bool:
        """True when any spec could strike ``site`` at all."""
        return site in self._sites

    def matches(self, site: str, name: str) -> bool:
        """True when some spec's glob covers this opportunity name."""
        return any(spec.site == site and fnmatchcase(name, spec.match)
                   for spec in self.specs)

    def reset(self) -> None:
        """Forget all firings; the next run replays the same sequence."""
        self.trace.clear()
        self._fired = [0] * len(self.specs)
        self._seen.clear()

    def trace_key(self) -> tuple[tuple[str, str, str, int, int], ...]:
        """The whole trace as a comparable tuple (determinism checks)."""
        return tuple(event.key() for event in self.trace)

    # -- the single decision primitive ----------------------------------------

    def _chance(self, spec_index: int, site: str, name: str,
                occurrence: int, probability: float) -> bool:
        # blake2b, not a CRC: checksums of near-identical short keys are
        # strongly correlated, which would make all of one run's draws
        # rise and fall together.
        digest = hashlib.blake2b(
            f"{self.seed}|{spec_index}|{site}|{name}|{occurrence}".encode(),
            digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64 < probability

    def draw(self, site: str, name: str) -> FaultSpec | None:
        """Consume one opportunity; return the spec that fires, if any.

        Occurrence counters advance for *every* matching spec whether or
        not it fires, keeping each spec's probability draws independent
        of what other specs did — the property that makes traces stable
        under spec-list edits that only append.
        """
        hit: FaultSpec | None = None
        for index, spec in enumerate(self.specs):
            if spec.site != site or not fnmatchcase(name, spec.match):
                continue
            key = (index, name)
            occurrence = self._seen.get(key, 0) + 1
            self._seen[key] = occurrence
            if hit is not None:
                continue
            if spec.count is not None and self._fired[index] >= spec.count:
                continue
            if spec.probability < 1.0 and not self._chance(
                    index, site, name, occurrence, spec.probability):
                continue
            self._fired[index] += 1
            self.trace.append(FaultEvent(
                site=site, name=name, kind=spec.kind,
                spec_index=index, occurrence=occurrence))
            hit = spec
        return hit

    # -- site-specific conveniences --------------------------------------------

    def stream_hook(self, stream_name: str) -> Callable[[Any], Any] | None:
        """A push hook for one stream, or None when no spec matches it."""
        if not self.matches("fifo", stream_name):
            return None

        def hook(item: Any) -> Any:
            spec = self.draw("fifo", stream_name)
            if spec is None:
                return item
            if spec.kind == "drop":
                return DROP_WORD
            return CorruptedWord(item)

        return hook

    def fifo_strike_within(self, name: str, words: int) -> int | None:
        """Preview: index of the first striking push among the next
        ``words`` pushes to stream ``name``, or None when all are safe.

        A pure function of the plan's current counters — nothing moves.
        The batched exact engine uses this to cap an analytic window at
        the provably strike-free push prefix: over-shortening a window
        is always safe (the strike then happens on the scalar path at
        its exact opportunity), while the preview never under-predicts
        because draws are keyed hashes of monotone occurrence counters.
        Costs one hash per live probabilistic spec per word — the same
        hashes a scalar run's push hooks would compute.
        """
        live = [
            (index, spec) for index, spec in enumerate(self.specs)
            if spec.site == "fifo" and fnmatchcase(name, spec.match)
            and (spec.count is None or self._fired[index] < spec.count)
        ]
        if not live:
            return None
        for offset in range(words):
            for index, spec in live:
                occurrence = self._seen.get((index, name), 0) + offset + 1
                if spec.probability >= 1.0 or self._chance(
                        index, "fifo", name, occurrence, spec.probability):
                    return offset
        return None

    def skip_fifo(self, name: str, words: int) -> None:
        """Advance fifo occurrence counters past ``words`` skipped pushes.

        Called by the batched exact engine after a window whose pushes
        bypassed the stream hooks (bulk relay): every matching spec's
        occurrence counter moves exactly as ``words`` scalar pushes
        would have moved it, so all later draws stay bit-identical.
        Only sound for prefixes :meth:`fifo_strike_within` proved safe.
        """
        if words <= 0:
            return
        for index, spec in enumerate(self.specs):
            if spec.site == "fifo" and fnmatchcase(name, spec.match):
                key = (index, name)
                self._seen[key] = self._seen.get(key, 0) + words

    def freeze_window(self, stage_name: str) -> tuple[int, int | None] | None:
        """Freeze window ``(start, stop)`` for one stage this run, if any.

        One opportunity per engine run per matching stage; ``stop`` is
        ``None`` for a permanent freeze.
        """
        if not self.matches("stage", stage_name):
            return None
        spec = self.draw("stage", stage_name)
        if spec is None or spec.kind != "freeze":
            return None
        start = spec.at_cycle
        stop = None if spec.cycles is None else start + spec.cycles
        return (start, stop)

    def replica_fault(self, replica: int, chunk: int) -> FaultSpec | None:
        """The fault striking replica ``replica`` at chunk ``chunk``, if any."""
        return self.draw("replica", f"k{replica}:chunk{chunk}")

    def rank_fault(self, rank: int) -> FaultSpec | None:
        """The fault striking ``rank``'s compute this attempt, if any."""
        return self.draw("rank", f"rank{rank}")

    def device_fault(self, lane: str) -> FaultSpec | None:
        """The fault striking device lane ``lane`` at this dispatch, if any.

        One opportunity per job dispatched to the lane: a ``loss`` kills
        the lane permanently (its circuit breaker opens and half-open
        probes keep failing), a ``blip`` takes it down for
        ``spec.seconds`` of modelled time after which a probe re-admits
        it.  In-flight work reshards to the surviving lanes either way.
        """
        return self.draw("device", lane)
