"""Chaos harness: seeded fault scenarios checked against one invariant.

Every scenario injects faults from a deterministic
:class:`~repro.faults.plan.FaultPlan` into one of the runtime layers and
asserts the resilience invariant:

    every run either completes **bit-identical** to the fault-free golden
    output, or raises a **typed** :class:`~repro.errors.ReproError`
    within its watchdog budget — never a hang, never silent corruption.

Scenario families cover the injection sites end to end: PCIe transfer
fails/stalls/hangs through the schedule simulator, FIFO word corruption
and loss through the dataflow engine (with chunk-seam checkpoint
recovery), permanent stage freezes caught by the cycle watchdog, kernel
replica slow-downs and kills (quarantine + rescheduling onto survivors),
rank drops in the distributed driver (respawn under the retry
policy), and whole-device losses/blips under the serving fleet
(in-flight jobs reshard to surviving lanes and must complete
bit-identical to a fault-free fleet run of the same offered load).
Each scenario is executed twice with the same seed and must reproduce
the identical fault trace and outcome — the determinism half of the
contract.

Timing-only families (``transfer-*``) have no numerical product; for
them "completes" means the schedule finishes inside its watchdog budget.
Data integrity under transfer faults is a property of the data-plane
families, which do compare bitwise against the golden output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ReproError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy

__all__ = ["CHAOS_FAMILIES", "ChaosOutcome", "ChaosReport", "run_chaos"]

#: Every scenario family the harness knows, in sweep order.
CHAOS_FAMILIES: tuple[str, ...] = (
    "transfer-fail",
    "transfer-stall",
    "transfer-hang",
    "fifo-corrupt",
    "fifo-drop",
    "fifo-persistent",
    "stage-freeze",
    "replica-kill",
    "replica-slow",
    "rank-drop",
    "device-loss",
    "device-blip",
)

#: Families quick enough for the CI smoke sweep (one engine run each).
SMOKE_FAMILIES: tuple[str, ...] = (
    "transfer-fail",
    "transfer-hang",
    "fifo-corrupt",
    "fifo-drop",
    "replica-kill",
    "rank-drop",
    "device-loss",
)

#: Generous per-engine-run cycle budget for the tiny chaos grids.
_WATCHDOG_CYCLES: int = 200_000


@dataclass
class ChaosOutcome:
    """Verdict of one seeded scenario (and its determinism replay)."""

    family: str
    seed: int
    #: ``identical`` | ``completed`` | ``error`` | a violation label.
    status: str
    #: exception class name when ``status == "error"``.
    error: str | None
    #: number of fault events actually injected.
    events: int
    ok: bool
    detail: str = ""
    #: why the batched exact engine fell back to per-cycle ticking for
    #: this scenario's run, if it did (see
    #: :attr:`repro.dataflow.engine.RunStats.batch_fallback_reason`).
    batch_fallback_reason: str | None = None

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "seed": self.seed,
            "status": self.status,
            "error": self.error,
            "events": self.events,
            "ok": self.ok,
            "detail": self.detail,
            "batch_fallback_reason": self.batch_fallback_reason,
        }


@dataclass
class ChaosReport:
    """All outcomes of one chaos sweep."""

    outcomes: list[ChaosOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def violations(self) -> list[ChaosOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "scenarios": len(self.outcomes),
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    def render_text(self) -> str:
        lines = []
        for outcome in self.outcomes:
            verdict = "ok  " if outcome.ok else "FAIL"
            what = outcome.status
            if outcome.error:
                what += f"[{outcome.error}]"
            line = (f"{verdict} {outcome.family:>16} seed={outcome.seed}  "
                    f"{what}  ({outcome.events} faults)")
            if outcome.batch_fallback_reason:
                line += f"  fallback={outcome.batch_fallback_reason}"
            if outcome.detail:
                line += f"  {outcome.detail}"
            lines.append(line)
        good = sum(outcome.ok for outcome in self.outcomes)
        lines.append(f"{good}/{len(self.outcomes)} scenarios uphold the "
                     f"invariant")
        return "\n".join(lines)


# -- per-family execution -----------------------------------------------------


def _specs_for(family: str) -> list[FaultSpec]:
    if family == "transfer-fail":
        return [FaultSpec("transfer", "fail", match="h2d*",
                          probability=0.5, count=2)]
    if family == "transfer-stall":
        return [FaultSpec("transfer", "stall", match="*",
                          probability=0.5, count=3, seconds=1e-3)]
    if family == "transfer-hang":
        return [FaultSpec("transfer", "stall", match="d2h*",
                          probability=0.5, count=1)]  # seconds=None: hang
    if family == "fifo-corrupt":
        return [FaultSpec("fifo", "corrupt", match="*",
                          probability=0.05, count=1)]
    if family == "fifo-drop":
        return [FaultSpec("fifo", "drop", match="*",
                          probability=0.05, count=1)]
    if family == "fifo-persistent":
        # Strikes every retry too: recovery cannot converge, the budget
        # must exhaust into a typed error.
        return [FaultSpec("fifo", "corrupt", match="*",
                          probability=0.05, count=None)]
    if family == "stage-freeze":
        return [FaultSpec("stage", "freeze", match="*",
                          probability=0.3, count=1, at_cycle=50)]
    if family == "replica-kill":
        return [FaultSpec("replica", "kill", match="k1:*",
                          probability=0.5, count=1)]
    if family == "replica-slow":
        return [FaultSpec("replica", "slow", match="*",
                          probability=0.5, count=2, factor=3.0)]
    if family == "rank-drop":
        return [FaultSpec("rank", "drop", match="*",
                          probability=0.3, count=2)]
    if family == "device-loss":
        # Kill one named fleet lane permanently, mid-job; pair it with
        # background transfer faults so breaker evidence accumulates on
        # a survivor too.
        return [FaultSpec("device", "loss", match="u280-0",
                          probability=0.5, count=1),
                FaultSpec("transfer", "fail", match="u280-1:h2d*",
                          probability=0.1, count=2)]
    if family == "device-blip":
        # Transient downtime on any lane: breakers must re-admit via
        # the half-open probe once the blip elapses.
        return [FaultSpec("device", "blip", match="*",
                          probability=0.3, count=2, seconds=0.01)]
    raise ConfigurationError(
        f"unknown chaos family {family!r}; known: {list(CHAOS_FAMILIES)}"
    )


def _run_once(family: str, seed: int, nx: int, ny: int,
              nz: int) -> tuple[str, str | None, tuple, str, str | None]:
    """One scenario execution.

    Returns ``(status, error_name, trace_key, detail, fallback)`` where
    ``status`` is ``identical``/``completed``/``error``/
    ``silent-corruption`` and ``fallback`` is the batched engine's
    :attr:`~repro.dataflow.engine.RunStats.batch_fallback_reason` (when
    the scenario ran the exact engine and it fell back).
    """
    from repro.core.grid import Grid
    from repro.core.reference import advect_reference
    from repro.core.wind import random_wind

    plan = FaultPlan(_specs_for(family), seed=seed)
    retry = RetryPolicy(max_attempts=4)

    if family.startswith("device"):
        return _run_fleet_once(family, plan, retry, seed, nx, ny, nz)

    if family.startswith("transfer"):
        from repro.hardware.pcie import PCIeLink
        from repro.runtime.overlap import ChunkWork, build_overlapped_schedule
        from repro.runtime.simulator import simulate_schedule

        link = PCIeLink(streamed_bandwidth=8e9, synchronous_bandwidth=2e9)

        def build():
            chunks = [ChunkWork(index=i, in_bytes=1.5e6, out_bytes=0.75e6,
                                kernel_seconds=0.4e-3) for i in range(6)]
            return build_overlapped_schedule(chunks, link)

        golden = simulate_schedule(build())
        budget = golden.makespan * 20 + 0.1
        try:
            result = simulate_schedule(build(), fault_plan=plan, retry=retry,
                                       watchdog_seconds=budget)
        except ReproError as error:
            return "error", type(error).__name__, plan.trace_key(), "", None
        if result.makespan > budget:
            return ("watchdog-breach", None, plan.trace_key(),
                    f"makespan {result.makespan:.4g}s past {budget:.4g}s",
                    None)
        return "completed", None, plan.trace_key(), "", None

    grid = Grid(nx=nx, ny=ny, nz=nz)
    fields = random_wind(grid, seed=seed, magnitude=2.0)
    golden_sources = advect_reference(fields)
    fallback: str | None = None

    try:
        if family.startswith("replica"):
            from repro.kernel.config import KernelConfig
            from repro.kernel.multi_simulate import simulate_multi_kernel

            config = KernelConfig(grid=grid, chunk_width=max(2, ny // 3))
            result = simulate_multi_kernel(
                config, fields, num_kernels=2, fault_plan=plan, retry=retry,
                watchdog=_WATCHDOG_CYCLES)
            sources = result.sources
        elif family == "rank-drop":
            from repro.distributed.driver import DistributedAdvection
            from repro.distributed.topology import ProcessGrid

            topology = ProcessGrid(grid, 2, 3)
            driver = DistributedAdvection(topology, fault_plan=plan,
                                          retry=retry)
            sources = driver.compute(fields)
        else:
            from repro.kernel.config import KernelConfig
            from repro.kernel.simulate import simulate_kernel

            config = KernelConfig(grid=grid, chunk_width=max(2, ny // 3))
            result = simulate_kernel(config, fields, fault_plan=plan,
                                     retry=retry,
                                     watchdog=_WATCHDOG_CYCLES)
            sources = result.sources
            fallback = result.aggregate_stats().batch_fallback_reason
    except ReproError as error:
        return "error", type(error).__name__, plan.trace_key(), "", None

    diff = sources.max_abs_difference(golden_sources)
    if diff != 0.0:
        return ("silent-corruption", None, plan.trace_key(),
                f"max abs difference {diff:g} vs golden", fallback)
    return "identical", None, plan.trace_key(), "", fallback


def _run_fleet_once(family: str, plan: FaultPlan, retry: RetryPolicy,
                    seed: int, nx: int, ny: int, nz: int,
                    ) -> tuple[str, str | None, tuple, str, str | None]:
    """One fleet scenario: chaos leg vs fault-free golden leg.

    The same seeded Poisson load is offered twice — once to a fleet
    under the device fault plan, once to a pristine fleet — and every
    job that completed in both legs must carry the same checksum.  Jobs
    the chaos leg failed must have failed *typed* (the scheduler's
    driver converts only :class:`~repro.errors.ReproError` into
    outcomes; anything else propagates out of this function as a
    harness error).
    """
    from repro.serve import Fleet, FleetScheduler, PoissonLoad, run_load

    load = PoissonLoad(jobs=8, rate_hz=400.0, seed=seed, nx=nx, ny=ny,
                       nz=nz, exact_fraction=0.25, distinct_inputs=4)

    def one_leg(fault_plan: FaultPlan | None):
        fleet = Fleet.from_spec("2xu280+1xstratix10")
        scheduler = FleetScheduler(fleet, fault_plan=fault_plan,
                                   retry=retry)
        return run_load(scheduler, load)

    try:
        chaos_report = one_leg(plan)
    except ReproError as error:
        return "error", type(error).__name__, plan.trace_key(), "", None
    golden_report = one_leg(None)
    golden = {outcome.spec.job_id: outcome.result.checksum
              for outcome in golden_report.completed
              if outcome.result is not None}
    for outcome in chaos_report.completed:
        assert outcome.result is not None
        expected = golden.get(outcome.spec.job_id)
        if expected is not None and outcome.result.checksum != expected:
            return ("silent-corruption", None, plan.trace_key(),
                    f"job {outcome.spec.job_id} diverged from the "
                    "fault-free fleet run", None)
    counters = chaos_report.counters()
    detail = (f"{len(chaos_report.completed)}/"
              f"{len(chaos_report.outcomes)} jobs, "
              f"{counters['reshards']} reshards, "
              f"{counters['redrives']} redrives")
    errors = chaos_report.error_counts()
    if errors:
        detail += ", typed: " + ",".join(
            f"{name} x{count}" for name, count in errors.items())
    return "identical", None, plan.trace_key(), detail, None


def run_chaos(*, families: tuple[str, ...] | list[str] | None = None,
              seeds: int = 4, seed_base: int = 0, nx: int = 6, ny: int = 9,
              nz: int = 5) -> ChaosReport:
    """Sweep ``seeds`` seeded scenarios per family and judge each one.

    Seeds run from ``seed_base`` to ``seed_base + seeds - 1`` (CI shards
    the sweep across disjoint bases).  Every scenario runs **twice** with
    the same seed; diverging outcomes or fault traces are reported as
    ``nondeterministic`` violations.
    """
    if seeds < 1:
        raise ConfigurationError(f"seeds must be >= 1, got {seeds}")
    chosen = tuple(families) if families is not None else CHAOS_FAMILIES
    for family in chosen:
        _specs_for(family)  # validate names before running anything
    report = ChaosReport()
    for family in chosen:
        for seed in range(seed_base, seed_base + seeds):
            first = _run_once(family, seed, nx, ny, nz)
            second = _run_once(family, seed, nx, ny, nz)
            status, error, trace, detail, fallback = first
            events = len(trace)
            if first != second:
                report.outcomes.append(ChaosOutcome(
                    family=family, seed=seed, status="nondeterministic",
                    error=None, events=events, ok=False,
                    detail=f"replay diverged: {first[:2]} vs {second[:2]}"))
                continue
            ok = status in ("identical", "completed", "error")
            report.outcomes.append(ChaosOutcome(
                family=family, seed=seed, status=status, error=error,
                events=events, ok=ok, detail=detail,
                batch_fallback_reason=fallback))
    return report
