"""Deterministic fault injection and the resilience machinery around it.

The package has three layers:

* :mod:`repro.faults.plan` — the injection plane: a seeded
  :class:`~repro.faults.plan.FaultPlan` of declarative
  :class:`~repro.faults.plan.FaultSpec` entries that runtime layers
  consult at well-defined opportunities (one per transfer attempt, FIFO
  word, engine run, replica chunk, rank compute).  Identical seeds
  reproduce identical fault traces.
* :mod:`repro.faults.retry` — :class:`~repro.faults.retry.RetryPolicy`,
  the budget-capped exponential-backoff policy shared by every recovery
  path (transfer retries, chunk restarts, rank respawns).
* :mod:`repro.faults.chaos` — the chaos harness behind ``repro chaos``:
  a seeded scenario matrix asserting the invariant that every faulted
  run either completes bit-identical to the fault-free golden output or
  raises a typed :class:`~repro.errors.ReproError` within its watchdog
  budget.  Imported explicitly (``from repro.faults.chaos import ...``)
  so that importing the injection plane never drags in the kernel stack.

See ``docs/resilience.md`` for the fault model and recovery semantics.
"""

from repro.faults.plan import FaultEvent, FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy

__all__ = ["FaultSpec", "FaultPlan", "FaultEvent", "RetryPolicy"]
