"""Budget-capped retry with exponential backoff and deterministic jitter.

One policy object serves every recovery path in the runtime: PCIe
transfer retries in the schedule simulator, chunk restarts in the
checkpointed kernel simulation, and rank respawns in the distributed
driver.  Delays are *modelled* seconds — nothing here sleeps; the
discrete-event layers add the delay to their simulated timelines.

Jitter is deterministic: the per-attempt factor is derived from a keyed
hash of ``(seed, attempt)``, so two runs with the same policy produce identical
backoff sequences — a requirement of the chaos harness's reproducible
fault traces (plain ``random`` jitter would make retry timing differ
between the run and its golden replay).

One policy object is frequently shared by many *concurrent* jobs (the
fleet scheduler hands every admitted job the same budget).  Sharing the
policy must not share the jitter stream: if two interleaved jobs drew
from one ``(seed, attempt)`` sequence, the per-job backoff trace would
depend on interleaving order and identical seeds would stop reproducing
identical per-job traces.  :meth:`RetryPolicy.for_job` derives an
independently keyed stream per job — ``seed XOR blake2b(job id)`` — so
each job's delays are a pure function of ``(policy seed, job id,
failure index)``, whatever the other jobs are doing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator

from repro.errors import ConfigurationError, FaultError, RetryExhaustedError

__all__ = ["RetryPolicy"]


def _unit_draw(*key: object) -> float:
    """Deterministic uniform draw in [0, 1) from a tuple of key parts."""
    digest = hashlib.blake2b(
        "|".join(str(part) for part in key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed operation, and how long to wait.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (>= 1).  ``max_attempts=1``
        means "never retry": the first failure raises immediately.
    base_delay:
        Modelled seconds before the first retry.
    backoff:
        Multiplier applied per subsequent retry (>= 1).
    jitter:
        Fractional spread of each delay, in [0, 1): the k-th delay is
        scaled by a deterministic factor in ``[1 - jitter, 1 + jitter]``.
    max_delay:
        Optional cap on any single delay (the backoff budget).
    seed:
        Seed for the deterministic jitter factors.
    """

    max_attempts: int = 3
    base_delay: float = 1e-3
    backoff: float = 2.0
    jitter: float = 0.1
    max_delay: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise ConfigurationError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.backoff < 1:
            raise ConfigurationError(
                f"backoff must be >= 1, got {self.backoff}"
            )
        if not 0 <= self.jitter < 1:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        if self.max_delay is not None and self.max_delay < 0:
            raise ConfigurationError(
                f"max_delay must be >= 0, got {self.max_delay}"
            )

    def for_job(self, job_id: str) -> "RetryPolicy":
        """This policy with a jitter stream keyed to one job.

        The derived seed is ``seed XOR blake2b(job_id)``, so concurrent
        jobs sharing one policy object draw from independent
        deterministic streams: job A's delays do not move when job B
        retries in between, and re-running the same job id under the
        same policy seed replays the identical backoff trace.
        """
        digest = hashlib.blake2b(str(job_id).encode(),
                                 digest_size=8).digest()
        return replace(self, seed=self.seed ^ int.from_bytes(digest, "big"))

    def delay(self, failure_index: int) -> float:
        """Modelled seconds to wait after the ``failure_index``-th failure."""
        if failure_index < 0:
            raise ConfigurationError(
                f"failure_index must be >= 0, got {failure_index}"
            )
        raw = self.base_delay * self.backoff**failure_index
        if self.max_delay is not None:
            raw = min(raw, self.max_delay)
        factor = 1.0 + self.jitter * (
            2.0 * _unit_draw(self.seed, failure_index) - 1.0)
        return raw * factor

    def delays(self) -> Iterator[float]:
        """The full backoff sequence (``max_attempts - 1`` delays)."""
        for k in range(self.max_attempts - 1):
            yield self.delay(k)

    def total_delay(self, failures: int) -> float:
        """Modelled seconds of backoff spent on ``failures`` failures."""
        return sum(self.delay(k) for k in range(failures))

    def call(self, fn: Callable[[], Any], *,
             retry_on: tuple[type[BaseException], ...] = (FaultError,),
             describe: str = "operation",
             on_retry: Callable[[int, BaseException], None] | None = None,
             ) -> Any:
        """Run ``fn`` until it succeeds or the attempt budget is spent.

        Catches only ``retry_on`` exceptions; anything else propagates
        unchanged.  On budget exhaustion raises
        :class:`~repro.errors.RetryExhaustedError` chained to the last
        failure.  ``on_retry(failure_index, error)`` is invoked before
        each re-attempt (restore a checkpoint, respawn a rank, ...).
        """
        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            if attempt and on_retry is not None and last is not None:
                on_retry(attempt - 1, last)
            try:
                return fn()
            except retry_on as error:
                last = error
        raise RetryExhaustedError(
            f"{describe} failed after {self.max_attempts} attempts "
            f"(last error: {last})"
        ) from last
