"""A generic cycle-level dataflow machine simulator.

The paper's central methodology is to view the FPGA kernel as an
application-specific *dataflow machine*: independent stages running
concurrently, streaming values to each other, each producing one result per
clock cycle in steady state (initiation interval II = 1).  This subpackage
implements exactly that abstraction:

* :class:`~repro.dataflow.stream.Stream` — a bounded FIFO channel (an HLS
  stream / OpenCL channel) with backpressure and stall statistics,
* :class:`~repro.dataflow.stage.Stage` — a pipelined processing stage with a
  configurable initiation interval and pipeline latency,
* :class:`~repro.dataflow.graph.DataflowGraph` — stage wiring plus
  structural validation, and
* :class:`~repro.dataflow.engine.DataflowEngine` — the cycle-driven
  simulator, which reports cycle counts, stall breakdowns and per-stage
  occupancy so dataflow designs can be compared quantitatively, and
* :func:`~repro.dataflow.compiled.compile_graph` — the batched-execution
  compiler behind the engine's default exact mode, which lowers a graph
  to topological levels and NumPy control-state vectors and advances
  proved-uniform windows of whole periods per Python-level step.
"""

from repro.dataflow.compiled import CompiledGraph, compile_graph
from repro.dataflow.engine import DataflowEngine, RunStats
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.monitors import StreamProbe, ThroughputMonitor
from repro.dataflow.stage import ConstStage, FunctionStage, SinkStage, SourceStage, Stage
from repro.dataflow.stream import Stream

__all__ = [
    "Stream",
    "Stage",
    "SourceStage",
    "SinkStage",
    "FunctionStage",
    "ConstStage",
    "DataflowGraph",
    "DataflowEngine",
    "RunStats",
    "CompiledGraph",
    "compile_graph",
    "StreamProbe",
    "ThroughputMonitor",
]
