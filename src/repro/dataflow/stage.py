"""Dataflow stages: pipelined processing elements with streams in and out.

A :class:`Stage` models one box of the paper's Fig. 2 — an independent
region of the FPGA running concurrently with every other stage.  Hardware
behaviour captured here:

* **Initiation interval (II)** — a stage may accept a new input every
  ``ii`` cycles.  The whole point of the paper's shift-buffer design is to
  hold II at 1; the URAM experiment in section III-A shows what II = 2 does
  to throughput, and the simulator reproduces that effect.
* **Pipeline latency** — results emerge ``latency`` cycles after their
  inputs were consumed, and up to ``latency`` results can be in flight.
* **Backpressure** — a stage only fires when each input stream has the
  items it needs and it only retires a result when the destination streams
  have room; otherwise it stalls and the stall is attributed to the
  limiting stream.

Subclasses implement :meth:`Stage.fire`, a pure function from consumed
input items to produced output items, keeping the timing model strictly
separated from the functional behaviour.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.dataflow.bulk import (
    Bulk,
    FireBulkResult,
    ListBulk,
    ListFireResult,
    UniformFireResult,
)
from repro.dataflow.stream import Stream
from repro.errors import DataflowError, GraphError

__all__ = [
    "Stage",
    "StageStats",
    "SourceStage",
    "SinkStage",
    "FunctionStage",
    "ConstStage",
]

#: Cached entry shape for single-item "out"-port firings (sources).
_ONE_OUT_SHAPE = (("out", 1),)


@dataclass
class StageStats:
    """Lifetime statistics of one stage."""

    fires: int = 0
    retired: int = 0
    input_stalls: int = 0
    output_stalls: int = 0
    ii_waits: int = 0
    pipeline_full_stalls: int = 0

    def reset(self) -> None:
        self.fires = 0
        self.retired = 0
        self.input_stalls = 0
        self.output_stalls = 0
        self.ii_waits = 0
        self.pipeline_full_stalls = 0


class Stage:
    """Base class for dataflow stages.

    Parameters
    ----------
    name:
        Unique name within the graph.
    ii:
        Initiation interval in cycles (>= 1).
    latency:
        Pipeline depth in cycles (>= 1): cycles between consuming inputs
        and the result being available to push downstream.
    """

    #: Input port names this stage declares; overridden by subclasses.
    input_ports: tuple[str, ...] = ()
    #: Output port names this stage declares; overridden by subclasses.
    output_ports: tuple[str, ...] = ()
    #: True when one firing consumes exactly one word per input port and
    #: produces exactly one per output port — the semantics the static
    #: analyzer (:mod:`repro.analyze`) interprets.  Stages that batch or
    #: gate their I/O (the shift buffer, the arbitrated reader) clear
    #: this, which withholds compile-time period hints from
    #: :func:`repro.dataflow.compiled.compile_graph` without affecting
    #: runtime recurrence detection.
    unit_rate: bool = True

    def __init__(self, name: str, *, ii: int = 1, latency: int = 1) -> None:
        if ii < 1:
            raise DataflowError(f"stage {name!r}: ii must be >= 1, got {ii}")
        if latency < 1:
            raise DataflowError(
                f"stage {name!r}: latency must be >= 1, got {latency}"
            )
        self.name = name
        self.ii = ii
        self.latency = latency
        self.inputs: dict[str, Stream] = {}
        self.outputs: dict[str, Stream] = {}
        self.stats = StageStats()
        # Entries are (ready_cycle, produced, shape) where shape is the
        # per-port item-count tuple, computed once at fire time so the
        # fast-forward signature never re-derives it per cycle.
        self._pipeline: deque[
            tuple[int, dict[str, list[Any]], tuple]
        ] = deque()
        self._next_fire_cycle = 0

    # -- wiring (called by DataflowGraph) --------------------------------------

    def bind_input(self, port: str, stream: Stream) -> None:
        if port not in self.input_ports:
            raise GraphError(
                f"stage {self.name!r} has no input port {port!r}; "
                f"declared: {self.input_ports}"
            )
        if port in self.inputs:
            raise GraphError(
                f"input port {self.name}.{port} already connected"
            )
        self.inputs[port] = stream

    def bind_output(self, port: str, stream: Stream) -> None:
        if port not in self.output_ports:
            raise GraphError(
                f"stage {self.name!r} has no output port {port!r}; "
                f"declared: {self.output_ports}"
            )
        if port in self.outputs:
            raise GraphError(
                f"output port {self.name}.{port} already connected"
            )
        self.outputs[port] = stream

    def check_wired(self) -> None:
        """Raise :class:`GraphError` if any declared port is unconnected."""
        missing_in = set(self.input_ports) - set(self.inputs)
        missing_out = set(self.output_ports) - set(self.outputs)
        if missing_in or missing_out:
            raise GraphError(
                f"stage {self.name!r} has unconnected ports: "
                f"inputs {sorted(missing_in)}, outputs {sorted(missing_out)}"
            )

    # -- behaviour hooks --------------------------------------------------------

    def required_inputs(self) -> Mapping[str, int]:
        """Items needed on each input port for one firing (default: 1 each)."""
        return {port: 1 for port in self.input_ports}

    def fire(self, cycle: int, inputs: Mapping[str, list[Any]]
             ) -> Mapping[str, list[Any]]:
        """Consume ``inputs`` and return items per output port.

        Must be pure with respect to simulation timing: all timing is
        handled by the base class.  May return an empty mapping (consume
        without producing, e.g. while a shift buffer primes).
        """
        raise NotImplementedError

    def exhausted(self) -> bool:
        """True when this stage will never fire again given no new input.

        Source stages override this; ordinary stages are exhausted by
        construction (they only react to input).
        """
        return True

    # -- simulation ----------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Results currently inside the pipeline."""
        return len(self._pipeline)

    def is_idle(self) -> bool:
        """No in-flight work and nothing consumable on the inputs."""
        if self._pipeline:
            return False
        if not self.exhausted():
            return False
        return not any(
            stream.can_pop(count)
            for stream, count in (
                (self.inputs[p], c) for p, c in self.required_inputs().items()
            )
        ) if self.inputs else True

    def _retire(self, cycle: int) -> bool:
        """Push the oldest matured result downstream if possible.

        Returns True if progress was made.  Results retire strictly in
        order (hardware pipelines are FIFO).
        """
        if not self._pipeline:
            return False
        ready_cycle, produced, _shape = self._pipeline[0]
        if ready_cycle > cycle:
            return False
        # All destinations must have room for everything this firing produced.
        for port, items in produced.items():
            stream = self.outputs[port]
            if not stream.can_push(len(items)):
                stream.note_full_stall()
                self.stats.output_stalls += 1
                return False
        for port, items in produced.items():
            stream = self.outputs[port]
            for item in items:
                stream.push(item)
        self._pipeline.popleft()
        self.stats.retired += 1
        return True

    def _try_fire(self, cycle: int) -> bool:
        """Attempt to consume inputs and start one firing."""
        if cycle < self._next_fire_cycle:
            self.stats.ii_waits += 1
            return False
        if len(self._pipeline) >= self.latency:
            # The pipeline is as deep as it is long; a clogged exit
            # backpressures the entrance.
            self.stats.pipeline_full_stalls += 1
            return False
        if self.exhausted() and not self.input_ports:
            return False
        needed = self.required_inputs()
        for port, count in needed.items():
            stream = self.inputs[port]
            if not stream.can_pop(count):
                stream.note_empty_stall()
                self.stats.input_stalls += 1
                return False
        consumed = {
            port: [self.inputs[port].pop() for _ in range(count)]
            for port, count in needed.items()
        }
        produced = dict(self.fire(cycle, consumed))
        unknown = set(produced) - set(self.output_ports)
        if unknown:
            raise DataflowError(
                f"stage {self.name!r} produced on undeclared ports "
                f"{sorted(unknown)}"
            )
        self.stats.fires += 1
        self._next_fire_cycle = cycle + self.ii
        if produced:
            self._pipeline.append((
                cycle + self.latency, produced,
                tuple((p, len(v)) for p, v in produced.items()),
            ))
        return True

    def tick(self, cycle: int) -> bool:
        """Advance one cycle: retire then fire.  Returns True on progress."""
        progressed = self._retire(cycle)
        progressed |= self._try_fire(cycle)
        return progressed

    # -- fast-forward hooks (see DataflowEngine, mode="fast") -------------------

    def ff_signature(self, cycle: int) -> tuple | None:
        """Hashable summary of all *control* state, or None to veto.

        The fast-forward engine detects steady state by finding two cycles
        with identical control state: pipeline fill (entry ages and output
        shapes), the II timer, and any subclass state that influences
        *when* or *how many* items the stage produces.  Data values must
        not influence control for the analytic advance to be exact; a
        stage whose output counts depend on input values must override
        this to return ``None`` (vetoing fast-forward for the whole run).

        Ready ages are clamped at zero: an overdue pipeline entry behaves
        identically however long it has been due.  This runs once per
        simulated cycle in fast mode, so it leans on the shape tuples
        cached at fire time instead of re-deriving them.
        """
        pipe = tuple([
            (ready - cycle if ready > cycle else 0, shape)
            for ready, _produced, shape in self._pipeline
        ])
        wait = self._next_fire_cycle - cycle
        return (wait if wait > 0 else 0, pipe)

    def ff_fire_capacity(self, want: int) -> int:
        """How many of ``want`` firings this stage could still perform.

        Sources bound this by their remaining items, the shift buffer by
        its block size; stages fed purely by streams have no cap of their
        own (the engine already bounds them by upstream supply).
        """
        return want

    def ff_pipeline_entries(self) -> list[dict[str, list[Any]]]:
        """The produced-output dicts currently in the pipeline, in order."""
        return [produced for _ready, produced, _shape in self._pipeline]

    def fire_bulk(self, count: int, inputs: dict[str, Bulk],
                  cycle: int) -> FireBulkResult:
        """Perform ``count`` firings in one step.

        ``inputs`` holds exactly the items consumed, per port, in stream
        order.  The default materialises everything and loops
        :meth:`fire`; stages with a vectorised path override this — the
        results must be bit-identical to the looped path.
        """
        mats = {port: bulk.materialize() for port, bulk in inputs.items()}
        needed = self.required_inputs()
        for port, per_fire in needed.items():
            if len(mats.get(port, ())) != per_fire * count:
                raise DataflowError(
                    f"stage {self.name!r} fire_bulk: port {port!r} got "
                    f"{len(mats.get(port, ()))} items for {count} firings "
                    f"of {per_fire}"
                )
        firings = []
        for i in range(count):
            consumed = {
                port: mats[port][i * per: (i + 1) * per]
                for port, per in needed.items()
            }
            firings.append(dict(self.fire(cycle, consumed)))
        return ListFireResult(firings)

    def ff_commit(self, old_cycle: int, new_cycle: int, *, fires: int,
                  retired: int,
                  tail_outputs: list[dict[str, list[Any]]]) -> None:
        """Install the post-advance pipeline and counters.

        ``tail_outputs`` are the ``len(self._pipeline)`` output dicts left
        in flight at the end of the advance (pre-advance entries not yet
        retired, then the newest producing firings); by periodicity they
        slot into the pipeline with the same ready ages, in order, that
        the pre-advance entries had.
        """
        if len(tail_outputs) != len(self._pipeline):
            raise DataflowError(
                f"stage {self.name!r}: fast-forward pipeline mismatch "
                f"({len(tail_outputs)} tail firings vs "
                f"{len(self._pipeline)} entries)"
            )
        new_pipe: deque[tuple[int, dict[str, list[Any]], tuple]] = deque()
        for (ready, _old_prod, shape), produced in zip(self._pipeline,
                                                       tail_outputs):
            if tuple((p, len(v)) for p, v in produced.items()) != shape:
                raise DataflowError(
                    f"stage {self.name!r}: fast-forward entry shape changed "
                    f"(not a true steady state)"
                )
            new_pipe.append(
                (new_cycle + max(ready - old_cycle, 0), produced, shape))
        self._pipeline = new_pipe
        self._next_fire_cycle = new_cycle + max(
            self._next_fire_cycle - old_cycle, 0)
        self.stats.fires += fires
        self.stats.retired += retired

    def reset(self) -> None:
        """Clear simulation state (pipeline, counters, fire schedule)."""
        self._pipeline.clear()
        self._next_fire_cycle = 0
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, ii={self.ii}, latency={self.latency})"


class SourceStage(Stage):
    """Streams the items of an iterable into the graph, one per firing.

    Models the *read data* stage reading from external memory; the memory
    model can impose a larger II via ``ii`` to represent bandwidth limits.
    """

    input_ports: tuple[str, ...] = ()
    output_ports = ("out",)

    def __init__(self, name: str, items: Iterable[Any], *, ii: int = 1,
                 latency: int = 1) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self._iter = iter(items)
        self._exhausted = False
        self._buffer: deque[Any] = deque()

    def _prefetch(self, count: int) -> None:
        """Pull up to ``count`` items from the iterable into the buffer."""
        while len(self._buffer) < count and not self._exhausted:
            try:
                self._buffer.append(next(self._iter))
            except StopIteration:
                self._exhausted = True

    def exhausted(self) -> bool:
        self._prefetch(1)
        return not self._buffer

    def _try_fire(self, cycle: int) -> bool:
        if cycle < self._next_fire_cycle:
            self.stats.ii_waits += 1
            return False
        if len(self._pipeline) >= self.latency:
            self.stats.pipeline_full_stalls += 1
            return False
        if self.exhausted():
            return False
        item = self._buffer.popleft()
        self.stats.fires += 1
        self._next_fire_cycle = cycle + self.ii
        self._pipeline.append(
            (cycle + self.latency, {"out": [item]}, _ONE_OUT_SHAPE))
        return True

    def ff_signature(self, cycle: int) -> tuple | None:
        base = super().ff_signature(cycle)
        return base + (not self.exhausted(),) if base is not None else None

    def ff_fire_capacity(self, want: int) -> int:
        self._prefetch(want)
        return min(want, len(self._buffer))

    def fire_bulk(self, count: int, inputs: dict[str, Bulk],
                  cycle: int) -> FireBulkResult:
        self._prefetch(count)
        if len(self._buffer) < count:
            raise DataflowError(
                f"source {self.name!r}: fast-forward wants {count} items, "
                f"only {len(self._buffer)} remain"
            )
        items = [self._buffer.popleft() for _ in range(count)]
        return UniformFireResult({"out": ListBulk(items)})

    def fire(self, cycle: int, inputs: Mapping[str, list[Any]]):  # pragma: no cover
        raise DataflowError("SourceStage.fire should never be called")


class SinkStage(Stage):
    """Collects every item arriving on its input port.

    Models the *write data* stage writing results to external memory.
    """

    input_ports = ("in",)
    output_ports: tuple[str, ...] = ()

    def __init__(self, name: str, *, ii: int = 1, latency: int = 1) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self.collected: list[Any] = []

    def fire(self, cycle: int, inputs: Mapping[str, list[Any]]):
        self.collected.extend(inputs["in"])
        return {}

    def reset(self) -> None:
        super().reset()
        self.collected.clear()


class FunctionStage(Stage):
    """Applies a callable to each input item, one output per input."""

    input_ports = ("in",)
    output_ports = ("out",)

    def __init__(self, name: str, fn: Callable[[Any], Any], *, ii: int = 1,
                 latency: int = 1) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self._fn = fn

    def fire(self, cycle: int, inputs: Mapping[str, list[Any]]):
        return {"out": [self._fn(item) for item in inputs["in"]]}


class ConstStage(Stage):
    """Emits a fixed value ``count`` times (handy in unit tests)."""

    input_ports: tuple[str, ...] = ()
    output_ports = ("out",)

    def __init__(self, name: str, value: Any, count: int, *, ii: int = 1,
                 latency: int = 1) -> None:
        super().__init__(name, ii=ii, latency=latency)
        self._value = value
        self._remaining = count

    def exhausted(self) -> bool:
        return self._remaining <= 0

    def _try_fire(self, cycle: int) -> bool:
        if cycle < self._next_fire_cycle:
            self.stats.ii_waits += 1
            return False
        if len(self._pipeline) >= self.latency:
            self.stats.pipeline_full_stalls += 1
            return False
        if self._remaining <= 0:
            return False
        self._remaining -= 1
        self.stats.fires += 1
        self._next_fire_cycle = cycle + self.ii
        self._pipeline.append(
            (cycle + self.latency, {"out": [self._value]}, _ONE_OUT_SHAPE))
        return True

    def ff_signature(self, cycle: int) -> tuple | None:
        base = super().ff_signature(cycle)
        return base + (self._remaining > 0,) if base is not None else None

    def ff_fire_capacity(self, want: int) -> int:
        return min(want, self._remaining)

    def fire_bulk(self, count: int, inputs: dict[str, Bulk],
                  cycle: int) -> FireBulkResult:
        if count > self._remaining:
            raise DataflowError(
                f"const {self.name!r}: fast-forward wants {count} firings, "
                f"only {self._remaining} remain"
            )
        self._remaining -= count
        return UniformFireResult({"out": ListBulk([self._value] * count)})

    def fire(self, cycle: int, inputs: Mapping[str, list[Any]]):  # pragma: no cover
        raise DataflowError("ConstStage.fire should never be called")
