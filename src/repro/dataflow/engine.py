"""The cycle-driven simulation engine.

The engine ticks every stage once per clock cycle, in topological order
(producers before consumers, so a value can traverse at most one stage per
cycle *boundary* while each stage still enforces its own pipeline latency).
It terminates when the whole machine is quiescent — every source exhausted,
every pipeline drained, every stream empty — and reports cycle counts plus
stall breakdowns, the numbers the paper uses to argue a design achieves
II = 1.

Fast-forward mode
-----------------
``mode="fast"`` adds steady-state fast-forwarding.  Every library stage's
firing *counts* depend only on control state (pipeline fill, II timer,
shift-buffer position), never on data values.  The engine therefore
fingerprints the complete control state each cycle
(:meth:`~repro.dataflow.stage.Stage.ff_signature` per stage plus every
stream occupancy); when the same fingerprint recurs ``P`` cycles later the
machine is provably periodic — a deterministic system revisiting a state
replays it exactly — and ``N`` whole periods are advanced in one step:

* counters (fires, retirements, stalls, pushes, pops) grow by ``N`` times
  their per-period delta, measured between the two matching cycles;
* data flows through the graph in bulk: each stage's
  :meth:`~repro.dataflow.stage.Stage.fire_bulk` processes its ``N × F``
  firings at once (vectorised where the stage supports it), and FIFO
  semantics pin the few items left in streams and stage pipelines when
  per-cycle ticking resumes;
* ``N`` is capped by every stage's remaining capacity
  (:meth:`~repro.dataflow.stage.Stage.ff_fire_capacity`), so the advance
  stops exactly at boundary events — source exhaustion, chunk seams — and
  the engine drops back to exact ticking for ramp-down.

Any stage whose output counts could depend on data values vetoes the whole
mechanism by returning ``None`` from ``ff_signature`` (the arbitrated
multi-kernel read stage does so the moment its arbiter has ever starved
it), and attaching monitors or a fault plan disables fast-forward too:
skipped cycles can be neither sampled nor faulted.  In all such cases
``mode="fast"`` behaves exactly like ``mode="exact"`` and the reason for
the demotion is surfaced on :attr:`RunStats.ff_veto_reason` (and by
``repro simulate``) rather than being swallowed.

Batched exact mode
------------------
``mode="exact"`` no longer has to be the slow path.  With
``batched=True`` (the default) the engine compiles the graph
(:mod:`repro.dataflow.compiled`) and executes provably periodic windows
of whole steady-state periods as single batched steps — the same
periodicity proof and FIFO-exact bulk relay as fast-forward, but
*event-aware* instead of all-or-nothing: monitor sample cycles, fault
freeze boundaries and previewed FIFO fault strikes bound each window
and are always executed on the scalar path, so monitored and faulted
runs accelerate too instead of demoting wholesale.  Results are
bit-identical to ``batched=False`` scalar ticking — statistics, stream
occupancies, sink data, fault traces, and raised errors — with the
batched/scalar split reported on :attr:`RunStats.batched_windows` /
:attr:`RunStats.batched_cycles` and any mid-run fallback reason on
:attr:`RunStats.batch_fallback_reason`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.dataflow.compiled import (EventCalendar, compile_graph,
                                     execute_window)
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.monitors import Monitor
from repro.dataflow.stage import Stage
from repro.errors import DataflowError, FaultError, LintError, WatchdogTimeout

if TYPE_CHECKING:  # imported lazily to keep dataflow import-cycle free
    from repro.faults.plan import FaultPlan
    from repro.observe.metrics import MetricRegistry
    from repro.observe.trace import Tracer

__all__ = ["DataflowEngine", "RunStats"]

#: Fast-forward signature table cap: beyond this many distinct control
#: states the run is clearly not periodic at a useful scale; the table is
#: cleared to bound memory and detection re-arms from scratch.
_FF_TABLE_CAP = 65_536

#: Consecutive probe misses before a batched-mode *learned* period is
#: dropped and table detection resumes (a statically proven period is
#: never dropped — a wrong one only costs speed).
_LEARNED_MISS_CAP = 8


@dataclass
class RunStats:
    """Result of one engine run."""

    cycles: int
    #: stage name -> fires
    fires: dict[str, int] = field(default_factory=dict)
    #: stage name -> {"input": n, "output": n, "ii": n, "pipeline": n}
    stalls: dict[str, dict[str, int]] = field(default_factory=dict)
    #: stream name -> max occupancy observed
    stream_high_water: dict[str, int] = field(default_factory=dict)
    #: number of analytic steady-state advances performed (fast mode)
    ff_advances: int = 0
    #: total cycles skipped by those advances (fast mode)
    ff_cycles: int = 0
    #: why a ``mode="fast"`` run was (partly) demoted to exact ticking:
    #: a monitor, an active fault plan, or a data-dependent stage veto.
    #: ``None`` for exact-mode runs and undemoted fast runs.
    ff_veto_reason: str | None = None
    #: number of batched windows committed (exact mode, ``batched=True``)
    batched_windows: int = 0
    #: cycles executed inside those batched windows; the scalar-fallback
    #: remainder is ``cycles - batched_cycles``.
    batched_cycles: int = 0
    #: why batched exact execution was (partly) disabled mid-run: an
    #: every-cycle monitor, a corrupted word left in flight, or a
    #: data-dependent stage veto.  ``None`` when batching never had to
    #: fall back (including fast-mode and ``batched=False`` runs).
    batch_fallback_reason: str | None = None

    def throughput(self, stage: str) -> float:
        """Average results per cycle for one stage (1.0 == ideal II=1)."""
        if self.cycles <= 0:
            return 0.0
        return self.fires.get(stage, 0) / self.cycles

    def total_stalls(self, stage: str) -> int:
        return sum(self.stalls.get(stage, {}).values())

    @classmethod
    def merge(cls, runs: Iterable["RunStats"]) -> "RunStats":
        """Aggregate several runs (e.g. per-chunk stats) into one summary.

        Cycles, fires, stalls, and fast-forward counters add up; stream
        high-water marks take the maximum, matching their meaning as a
        sizing bound.  Distinct ``ff_veto_reason`` values are all kept
        (joined with ``"; "`` in first-seen order) — different chunks can
        demote for different causes and each deserves to surface.
        """
        merged = cls(cycles=0)
        reasons: list[str] = []
        fallback_reasons: list[str] = []
        for run in runs:
            merged.cycles += run.cycles
            for name, fires in run.fires.items():
                merged.fires[name] = merged.fires.get(name, 0) + fires
            for name, stalls in run.stalls.items():
                into = merged.stalls.setdefault(name, {})
                for kind, count in stalls.items():
                    into[kind] = into.get(kind, 0) + count
            for name, high in run.stream_high_water.items():
                merged.stream_high_water[name] = max(
                    merged.stream_high_water.get(name, 0), high)
            merged.ff_advances += run.ff_advances
            merged.ff_cycles += run.ff_cycles
            merged.batched_windows += run.batched_windows
            merged.batched_cycles += run.batched_cycles
            if run.ff_veto_reason is not None \
                    and run.ff_veto_reason not in reasons:
                reasons.append(run.ff_veto_reason)
            if run.batch_fallback_reason is not None \
                    and run.batch_fallback_reason not in fallback_reasons:
                fallback_reasons.append(run.batch_fallback_reason)
        merged.ff_veto_reason = "; ".join(reasons) if reasons else None
        merged.batch_fallback_reason = (
            "; ".join(fallback_reasons) if fallback_reasons else None)
        return merged

    def to_dict(self) -> dict:
        """JSON-ready dump (stable key order for golden snapshots)."""
        return {
            "cycles": self.cycles,
            "fires": {name: self.fires[name] for name in sorted(self.fires)},
            "stalls": {
                name: dict(self.stalls[name]) for name in sorted(self.stalls)
            },
            "stream_high_water": {
                name: self.stream_high_water[name]
                for name in sorted(self.stream_high_water)
            },
            "ff_advances": self.ff_advances,
            "ff_cycles": self.ff_cycles,
            "ff_veto_reason": self.ff_veto_reason,
            "batched_windows": self.batched_windows,
            "batched_cycles": self.batched_cycles,
            "batch_fallback_reason": self.batch_fallback_reason,
        }

    def summary(self) -> str:
        """Human-readable multi-line run summary."""
        lines = [f"cycles: {self.cycles}"]
        if self.ff_advances:
            lines[0] += (
                f" ({self.ff_cycles} fast-forwarded in "
                f"{self.ff_advances} advances)"
            )
        if self.batched_windows:
            lines[0] += (
                f" ({self.batched_cycles} batched in "
                f"{self.batched_windows} windows, "
                f"{self.cycles - self.batched_cycles} scalar)"
            )
        if self.ff_veto_reason is not None:
            lines.append(f"  fast-forward demoted: {self.ff_veto_reason}")
        if self.batch_fallback_reason is not None:
            lines.append(
                f"  batched fallback: {self.batch_fallback_reason}")
        for name in sorted(self.fires):
            stalls = self.stalls.get(name, {})
            lines.append(
                f"  {name}: fires={self.fires[name]} "
                f"throughput={self.throughput(name):.3f} "
                f"stalls(in={stalls.get('input', 0)}, out={stalls.get('output', 0)}, "
                f"ii={stalls.get('ii', 0)}, pipe={stalls.get('pipeline', 0)})"
            )
        return "\n".join(lines)


class DataflowEngine:
    """Runs a :class:`DataflowGraph` to quiescence.

    Parameters
    ----------
    graph:
        The wired dataflow graph; :meth:`DataflowGraph.validate` is called
        before the first cycle.
    max_cycles:
        Hard cap to bound runaway simulations.
    monitors:
        Optional probes sampled once per cycle (honouring each monitor's
        ``sample_every``/``sample_phase`` stride, when present).
    mode:
        ``"exact"`` ticks every cycle; ``"fast"`` additionally
        fast-forwards provably periodic steady-state phases (see module
        docstring).  Both modes produce identical :class:`RunStats`
        (modulo the ``ff_*``/``batched_*`` counters) and identical sink
        data.
    batched:
        Exact mode only (ignored under ``mode="fast"``, whose
        fast-forward machinery supersedes it): execute provably periodic
        event-free windows as batched steps via
        :mod:`repro.dataflow.compiled` (see module docstring).  On by
        default; ``batched=False`` is the escape hatch back to pure
        per-cycle scalar ticking.  Results are bit-identical either
        way — only wall-clock time and the ``batched_*`` counters
        change.
    lint:
        When True, run the full graph-family lint pass
        (:func:`repro.lint.lint_graph`) before the first cycle and raise
        :class:`~repro.errors.LintError` on any error diagnostic — the
        synthesis-time pre-flight the HLS tools would perform.  Off by
        default: :meth:`DataflowGraph.validate` already covers the hard
        structural errors, and tests deliberately run odd graphs.
    watchdog:
        Optional cycle budget for the whole run.  Where ``max_cycles``
        models the simulator's own runaway guard, the watchdog models the
        *host's* patience: exceeding it raises
        :class:`~repro.errors.WatchdogTimeout` (a
        :class:`~repro.errors.FaultError`), which the checkpointed layers
        treat as a retriable fault.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`.  At run start the
        engine arms matching FIFO fault hooks and stage freeze windows;
        an active plan demotes ``mode="fast"`` to exact ticking (skipped
        cycles could not be faulted).
    tracer:
        Optional :class:`~repro.observe.trace.Tracer`.  When enabled, the
        run emits one activity span per stage (first to last progressing
        cycle, with fire/stall counts attached), prime/steady phase spans
        for stages exposing ``first_emit_cycle`` (the shift buffer),
        fast-forward advance spans, and demotion markers — all on the
        engine's cycle clock.  Unlike monitors, a tracer does *not* veto
        ``mode="fast"``: it records phase boundaries and aggregates that
        analytic advances preserve exactly, never per-cycle samples.
    proven_period:
        A statically proven steady-state period (from
        :mod:`repro.analyze`), only meaningful with ``mode="fast"``.  The
        engine then skips the runtime recurrence hunt entirely: instead
        of fingerprinting every cycle into a table, it arms a single
        probe and compares the control state exactly ``proven_period``
        cycles later, advancing on a match and re-arming on a miss (the
        transient).  Every fast-forward safety interlock — data-dependent
        stage vetoes, monitor/fault-plan demotion, capacity caps — still
        applies, with the demotion reason surfaced as usual; a wrong
        period can therefore cost speed but never correctness.
    metrics:
        Optional :class:`~repro.observe.metrics.MetricRegistry`.  At the
        end of the run the engine feeds ``engine_cycles``,
        ``stage_fires``/``stage_stalls`` counters, ``fifo_high_water``
        gauges and a ``stage_throughput`` histogram — a once-per-run
        cost, so an attached registry (enabled or not) leaves the tick
        loop untouched.
    """

    def __init__(self, graph: DataflowGraph, *, max_cycles: int = 10_000_000,
                 monitors: list[Monitor] | None = None,
                 stall_grace: int | None = None, mode: str = "exact",
                 batched: bool = True,
                 lint: bool = False, watchdog: int | None = None,
                 fault_plan: "FaultPlan | None" = None,
                 tracer: "Tracer | None" = None,
                 metrics: "MetricRegistry | None" = None,
                 proven_period: int | None = None) -> None:
        if max_cycles < 1:
            raise DataflowError(f"max_cycles must be >= 1, got {max_cycles}")
        if stall_grace is not None and stall_grace < 1:
            raise DataflowError(
                f"stall_grace must be >= 1, got {stall_grace}"
            )
        if mode not in ("exact", "fast"):
            raise DataflowError(
                f"mode must be 'exact' or 'fast', got {mode!r}"
            )
        if watchdog is not None and watchdog < 1:
            raise DataflowError(
                f"watchdog must be >= 1, got {watchdog}"
            )
        if proven_period is not None:
            if proven_period < 1:
                raise DataflowError(
                    f"proven_period must be >= 1, got {proven_period}"
                )
            if mode != "fast":
                raise DataflowError(
                    "proven_period requires mode='fast' (exact mode never "
                    "fast-forwards)"
                )
        self.graph = graph
        self.max_cycles = max_cycles
        self.monitors = list(monitors or [])
        self.stall_grace = stall_grace
        self.mode = mode
        self.batched = batched
        self.lint = lint
        self.watchdog = watchdog
        self.fault_plan = fault_plan
        self.tracer = tracer
        self.metrics = metrics
        self.proven_period = proven_period

    def run(self) -> RunStats:
        """Simulate until quiescence and return run statistics."""
        if self.lint:
            from repro.lint import lint_graph

            report = lint_graph(self.graph)
            if not report.ok:
                raise LintError(
                    f"lint pre-flight failed for graph "
                    f"{self.graph.name!r}:\n{report.render_text()}"
                )
        self.graph.validate()
        order = self.graph.topological_order()
        # Arm the fault plan: FIFO word hooks and stage freeze windows.
        plan = self.fault_plan
        plan_active = plan is not None and plan.active
        freeze: dict[str, tuple[int, int | None]] = {}
        if plan is not None and plan_active:
            for stream in self.graph.streams:
                hook = plan.stream_hook(stream.name)
                if hook is not None:
                    stream.fault_hook = hook
            for stage in order:
                window = plan.freeze_window(stage.name)
                if window is not None:
                    freeze[stage.name] = window
        # A machine can legitimately make no visible progress for up to the
        # largest II (waiting out the interval); anything longer without
        # progress while non-idle is a deadlock (e.g. an undersized FIFO).
        # Stages gated by external resources (a starved memory arbiter)
        # may stall longer — callers model that via ``stall_grace``.
        grace = self.stall_grace if self.stall_grace is not None else (
            max(s.ii for s in order) + max(s.latency for s in order) + 1
        )
        # Monitors sampled on a stride skip the call entirely off-phase;
        # an empty monitor list skips the whole loop.
        monitor_plan = [
            (m, getattr(m, "sample_every", 1), getattr(m, "sample_phase", 0))
            for m in self.monitors
        ]
        # Fast-forward requires every cycle to be observable-equivalent;
        # monitors sample individual cycles and fault plans strike them,
        # so either forces exact ticking — with the reason surfaced.
        veto_reason: str | None = None
        if self.mode == "fast":
            if self.monitors:
                veto_reason = ("monitors attached: per-cycle sampling "
                               "requires exact ticking")
            elif plan_active:
                veto_reason = ("fault injection active: skipped cycles "
                               "could not be faulted")
        ff_enabled = self.mode == "fast" and veto_reason is None
        # Batched exact: the same periodicity machinery, re-armed for
        # exact mode with event-aware windows (repro.dataflow.compiled).
        # Monitors and fault plans bound windows instead of vetoing them;
        # only an every-cycle monitor leaves nothing to batch.
        batch_reason: str | None = None
        batched = self.mode == "exact" and self.batched
        calendar: EventCalendar | None = None
        if batched:
            for monitor, every, _phase in monitor_plan:
                if every <= 1:
                    batched = False
                    batch_reason = (
                        f"monitor {type(monitor).__name__} samples every "
                        f"cycle: no window can be skipped"
                    )
                    break
        if batched:
            compiled = compile_graph(self.graph)
            calendar = EventCalendar(
                monitors=[(every, phase)
                          for _, every, phase in monitor_plan],
                freeze=freeze,
                plan=plan if plan_active else None,
                hooked=[stream.name for stream in self.graph.streams
                        if stream.fault_hook is not None],
            )
        ff_table: dict[Any, tuple[int, tuple[dict, dict]]] = {}
        proven = self.proven_period
        if proven is None and batched:
            # Statically proved steady-state horizon (unit-rate graphs
            # only): probe at that period instead of table hunting.
            proven = compiled.period_hint
        #: Armed probe under a proven period: (signature, cycle, snapshot).
        probe: tuple[Any, int, tuple] | None = None
        #: Batched-mode learned period: after the first table hit, probe
        #: at the committed period so windows re-open immediately after
        #: each scalar event cycle.  Dropped after repeated misses.
        learned: int | None = None
        probe_misses = 0
        ff_advances = 0
        ff_cycles = 0
        batched_windows = 0
        batched_cycles = 0
        plan_trace_len = len(plan.trace) if plan is not None else 0
        boundaries = calendar.boundaries if calendar is not None else ()
        boundary_idx = 0
        streams = list(self.graph.streams)
        stream_index = {stream.name: i for i, stream in enumerate(streams)}
        cap = (self.max_cycles if self.watchdog is None
               else min(self.max_cycles, self.watchdog))
        # Activity tracking (stage name -> [first, last] progressing cycle)
        # only runs with an *enabled* tracer: the flag is hoisted here so a
        # compiled-in-but-disabled tracer costs nothing inside the loop.
        tracer = self.tracer
        trace_on = tracer is not None and tracer.enabled
        activity: dict[str, list[int]] = {}
        veto_cycle: int | None = None

        cycle = 0
        last_progress = 0
        while cycle < cap:
            progressed = False
            if trace_on:
                for stage in order:
                    window = freeze.get(stage.name) if freeze else None
                    if window is not None and window[0] <= cycle and (
                            window[1] is None or cycle < window[1]):
                        continue  # frozen: the stage does nothing
                    if stage.tick(cycle):
                        progressed = True
                        slot = activity.get(stage.name)
                        if slot is None:
                            activity[stage.name] = [cycle, cycle]
                        else:
                            slot[1] = cycle
            elif not freeze:
                for stage in order:
                    progressed |= stage.tick(cycle)
            else:
                for stage in order:
                    window = freeze.get(stage.name)
                    if window is not None and window[0] <= cycle and (
                            window[1] is None or cycle < window[1]):
                        continue  # frozen: the stage does nothing
                    progressed |= stage.tick(cycle)
            for monitor, every, phase in monitor_plan:
                if every <= 1 or cycle % every == phase:
                    monitor.sample(cycle, self.graph)
            if progressed:
                last_progress = cycle
            else:
                if self._quiescent():
                    cycle += 1
                    break
                if cycle - last_progress > grace:
                    raise DataflowError(
                        f"dataflow deadlock in graph {self.graph.name!r} at "
                        f"cycle {cycle}: no progress for {cycle - last_progress} "
                        f"cycles; stream states: "
                        + ", ".join(
                            f"{s.name}={s.occupancy}/{s.depth}"
                            for s in self.graph.streams
                        )
                    )
            if batched and plan_active:
                # A fault struck on the scalar path this cycle.  A
                # corrupt strike leaves a CorruptedWord in flight, and
                # the bulk relay would consume it past the consumer-side
                # ECC check — scalar ticking for the rest of the run.
                # Any other strike (a dropped word) perturbs the
                # counters mid-measurement: a period measured across it
                # would replay polluted deltas (the producer's retire
                # rate includes the vanished word, the consumer's pop
                # rate does not), so recurrence detection restarts from
                # the post-strike state.
                assert plan is not None
                if len(plan.trace) != plan_trace_len:
                    ff_table.clear()
                    probe = None
                    for event in plan.trace[plan_trace_len:]:
                        if event.site == "fifo" and event.kind == "corrupt":
                            batched = False
                            batch_reason = (
                                f"corrupted word in flight on stream "
                                f"{event.name!r}: bulk relay would bypass "
                                f"the consumer-side ECC check"
                            )
                            veto_cycle = cycle
                            break
                    plan_trace_len = len(plan.trace)
            if batched and boundary_idx < len(boundaries) \
                    and boundaries[boundary_idx] <= cycle + 1:
                # Crossing a freeze boundary changes which stages tick:
                # periods measured across it are invalid.
                while boundary_idx < len(boundaries) \
                        and boundaries[boundary_idx] <= cycle + 1:
                    boundary_idx += 1
                ff_table.clear()
                probe = None
            if ff_enabled or batched:
                sig, veto_stage = self._ff_machine_signature(order, cycle + 1)
                if sig is None:
                    # A stage vetoed (data-dependent control, e.g. a
                    # starved arbiter): exact ticking for the rest of
                    # the run.
                    reason = (
                        f"stage {veto_stage!r} vetoed steady-state "
                        f"detection (data-dependent control)"
                    )
                    if ff_enabled:
                        veto_reason = reason
                    else:
                        batch_reason = reason
                    ff_enabled = False
                    batched = False
                    ff_table.clear()
                    probe = None
                    veto_cycle = cycle
                else:
                    hit: tuple[int, tuple] | None = None
                    horizon = proven if proven is not None else learned
                    if horizon is not None:
                        # Known period (statically proven or learned
                        # from a committed window): no table, one probe.
                        if probe is not None \
                                and (cycle + 1) - probe[1] == horizon:
                            if sig == probe[0]:
                                hit = (probe[1], probe[2])
                                probe_misses = 0
                            elif proven is None:
                                probe_misses += 1
                                if probe_misses >= _LEARNED_MISS_CAP:
                                    # The learned period went stale;
                                    # back to table detection.
                                    learned = None
                                    probe_misses = 0
                            probe = None  # re-armed below on a miss
                        if hit is None and probe is None \
                                and (proven is not None
                                     or learned is not None):
                            probe = (sig, cycle + 1, self._ff_snapshot(order))
                    elif sig in ff_table:
                        hit = ff_table[sig]
                    else:
                        if len(ff_table) >= _FF_TABLE_CAP:
                            ff_table.clear()
                        ff_table[sig] = (cycle + 1, self._ff_snapshot(order))
                    if hit is None:
                        cycle += 1
                        continue
                    first_cycle, snapshot = hit
                    period = (cycle + 1) - first_cycle
                    fires_before = ({s.name: s.stats.fires for s in order}
                                    if trace_on else None)
                    skipped = execute_window(
                        order, streams, stream_index, cycle + 1, period,
                        snapshot, cap, calendar if batched else None)
                    if skipped > 0:
                        if batched:
                            batched_windows += 1
                            batched_cycles += skipped
                            # Probe at the committed period from now on:
                            # windows re-open one period after each
                            # scalar event cycle instead of re-hunting.
                            learned = period
                            probe_misses = 0
                        else:
                            ff_advances += 1
                            ff_cycles += skipped
                        if trace_on:
                            assert fires_before is not None
                            label = "batched" if batched else "fast-forward"
                            tracer.add_span(
                                f"{label} x{skipped}", "engine",
                                cycle + 1, cycle + 1 + skipped,
                                category=label,
                                period=period)
                            for stage in order:
                                if stage.stats.fires \
                                        <= fires_before[stage.name]:
                                    continue
                                slot = activity.get(stage.name)
                                if slot is None:
                                    activity[stage.name] = [cycle + 1,
                                                            cycle + skipped]
                                else:
                                    slot[1] = cycle + skipped
                        cycle += skipped
                        last_progress = cycle
                        # Counters moved: every stored snapshot is stale.
                        ff_table.clear()
                        probe = None
                    elif skipped < 0:
                        # No room for even one period (sources at their
                        # end): the remaining run is short; tick it.
                        ff_enabled = False
                        batched = False
                        ff_table.clear()
                        probe = None
                    # skipped == 0: a parked zero-fire period, or an
                    # event due within one period — detection state
                    # stays valid; tick the next cycle scalar.
            cycle += 1
        else:
            if self.watchdog is not None and cap == self.watchdog:
                raise WatchdogTimeout(
                    f"graph {self.graph.name!r} exceeded its watchdog "
                    f"budget of {self.watchdog} cycles without quiescing"
                )
            raise DataflowError(
                f"graph {self.graph.name!r} did not quiesce within "
                f"{self.max_cycles} cycles"
            )

        if plan is not None and plan.active:
            # End-of-run accounting: a healthy quiescent stream has seen
            # every pushed word popped (or still holds it).  A shortfall
            # means an injected drop swallowed data that nothing checked
            # downstream — surface it as a typed error, never silently.
            for stream in self.graph.streams:
                lost = (stream.stats.pushes - stream.stats.pops
                        - stream.occupancy)
                if lost > 0:
                    raise FaultError(
                        f"{lost} word(s) lost in flight on stream "
                        f"{stream.name!r} (push/pop accounting mismatch "
                        f"at quiescence)"
                    )

        stats = RunStats(
            cycles=cycle,
            fires={s.name: s.stats.fires for s in order},
            stalls={
                s.name: {
                    "input": s.stats.input_stalls,
                    "output": s.stats.output_stalls,
                    "ii": s.stats.ii_waits,
                    "pipeline": s.stats.pipeline_full_stalls,
                }
                for s in order
            },
            stream_high_water={
                s.name: s.stats.max_occupancy for s in self.graph.streams
            },
            ff_advances=ff_advances,
            ff_cycles=ff_cycles,
            ff_veto_reason=veto_reason,
            batched_windows=batched_windows,
            batched_cycles=batched_cycles,
            batch_fallback_reason=batch_reason,
        )
        if trace_on:
            self._emit_spans(stats, order, activity, veto_cycle)
        if self.metrics is not None and self.metrics.enabled:
            self._emit_metrics(stats)
        return stats

    # -- observability (end-of-run, never in the tick loop) ---------------------

    def _emit_spans(self, stats: RunStats, order: list[Stage],
                    activity: dict[str, list[int]],
                    veto_cycle: int | None) -> None:
        """Emit the run's spans onto the attached (enabled) tracer."""
        tracer = self.tracer
        assert tracer is not None
        tracer.add_span(
            self.graph.name, "engine", 0, stats.cycles, category="run",
            cycles=stats.cycles, ff_advances=stats.ff_advances,
            ff_cycles=stats.ff_cycles,
            batched_windows=stats.batched_windows,
            batched_cycles=stats.batched_cycles)
        if stats.ff_veto_reason is not None:
            tracer.instant("fast-forward demoted", "engine",
                           ts=float(veto_cycle if veto_cycle is not None
                                    else 0),
                           reason=stats.ff_veto_reason)
        if stats.batch_fallback_reason is not None:
            tracer.instant("batched execution fell back", "engine",
                           ts=float(veto_cycle if veto_cycle is not None
                                    else 0),
                           reason=stats.batch_fallback_reason)
        for stage in order:
            window = activity.get(stage.name)
            if window is None:
                continue
            first, last = window[0], window[1] + 1
            stalls = stats.stalls[stage.name]
            tracer.add_span(
                "active", stage.name, first, last, category="stage",
                fires=stats.fires[stage.name],
                throughput=round(stats.throughput(stage.name), 4),
                **stalls)
            # Stages exposing first_emit_cycle (the shift buffer) split
            # into the paper's prime/steady phases: priming consumes
            # without producing, steady state emits every cycle.
            first_emit = getattr(stage, "first_emit_cycle", None)
            if first_emit is not None and first <= first_emit <= last:
                tracer.add_span("prime", stage.name, first, first_emit,
                                category="phase")
                tracer.add_span("steady", stage.name, first_emit, last,
                                category="phase")
        for stream in self.graph.streams:
            if stream.stats.max_occupancy:
                tracer.counter("fifo_high_water", "fifo",
                               ts=float(stats.cycles),
                               **{stream.name: stream.stats.max_occupancy})

    def _emit_metrics(self, stats: RunStats) -> None:
        """Fold the run's statistics into the attached registry."""
        registry = self.metrics
        assert registry is not None
        registry.counter(
            "engine_cycles", "simulated cycles to quiescence",
        ).inc(stats.cycles)
        registry.counter(
            "engine_runs", "engine runs folded into this registry",
        ).inc()
        fires = registry.counter("stage_fires", "firings per stage")
        stalls = registry.counter(
            "stage_stalls", "stall cycles per stage and kind")
        throughput = registry.histogram(
            "stage_throughput", "per-run fires/cycle per stage")
        for name, count in stats.fires.items():
            fires.inc(count, stage=name)
            throughput.observe(stats.throughput(name), stage=name)
        for name, kinds in stats.stalls.items():
            for kind, count in kinds.items():
                stalls.inc(count, stage=name, kind=kind)
        high_water = registry.gauge(
            "fifo_high_water", "max FIFO occupancy per stream")
        for name, high in stats.stream_high_water.items():
            high_water.set_max(high, stream=name)
        registry.counter(
            "ff_advances", "analytic steady-state advances",
        ).inc(stats.ff_advances)
        registry.counter(
            "ff_cycles", "cycles skipped by fast-forward",
        ).inc(stats.ff_cycles)
        if stats.ff_veto_reason is not None:
            registry.counter(
                "ff_demotions", "fast-mode runs demoted to exact ticking",
            ).inc(reason=stats.ff_veto_reason)
        if self.mode == "exact" and self.batched:
            registry.counter(
                "batched_windows", "batched exact windows committed",
            ).inc(stats.batched_windows)
            registry.counter(
                "scalar_fallback_cycles",
                "exact-mode cycles ticked scalar outside batched windows",
            ).inc(stats.cycles - stats.batched_cycles)
            if stats.batch_fallback_reason is not None:
                registry.counter(
                    "batch_fallbacks",
                    "batched exact runs that fell back to scalar ticking",
                ).inc(reason=stats.batch_fallback_reason)

    # -- fast-forward internals -------------------------------------------------

    def _ff_machine_signature(self, order: list[Stage], at_cycle: int
                              ) -> tuple[tuple | None, str | None]:
        """``(fingerprint, None)``, or ``(None, stage_name)`` on a veto."""
        stage_sigs = []
        append = stage_sigs.append
        for stage in order:
            sig = stage.ff_signature(at_cycle)
            if sig is None:
                return None, stage.name
            append(sig)
        return (
            tuple(stage_sigs),
            tuple([stream.occupancy for stream in self.graph.streams]),
        ), None

    def _ff_snapshot(self, order: list[Stage]) -> tuple[tuple, tuple]:
        """Counter snapshot paired with a signature's first occurrence.

        Flat tuples aligned with ``order`` / ``graph.streams`` — built
        once per simulated cycle, so no dict overhead.
        """
        stage_counts = tuple([
            (s.stats.fires, s.stats.retired, s.stats.input_stalls,
             s.stats.output_stalls, s.stats.ii_waits,
             s.stats.pipeline_full_stalls)
            for s in order
        ])
        stream_counts = tuple([
            (st.stats.pushes, st.stats.pops, st.stats.full_stalls,
             st.stats.empty_stalls)
            for st in self.graph.streams
        ])
        return (stage_counts, stream_counts)

    def _quiescent(self) -> bool:
        """True when nothing can ever happen again."""
        return all(stage.is_idle() for stage in self.graph.stages) and all(
            stream.is_empty for stream in self.graph.streams
        )
