"""The cycle-driven simulation engine.

The engine ticks every stage once per clock cycle, in topological order
(producers before consumers, so a value can traverse at most one stage per
cycle *boundary* while each stage still enforces its own pipeline latency).
It terminates when the whole machine is quiescent — every source exhausted,
every pipeline drained, every stream empty — and reports cycle counts plus
stall breakdowns, the numbers the paper uses to argue a design achieves
II = 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataflow.graph import DataflowGraph
from repro.dataflow.monitors import Monitor
from repro.errors import DataflowError, LintError

__all__ = ["DataflowEngine", "RunStats"]


@dataclass
class RunStats:
    """Result of one engine run."""

    cycles: int
    #: stage name -> fires
    fires: dict[str, int] = field(default_factory=dict)
    #: stage name -> {"input": n, "output": n, "ii": n, "pipeline": n}
    stalls: dict[str, dict[str, int]] = field(default_factory=dict)
    #: stream name -> max occupancy observed
    stream_high_water: dict[str, int] = field(default_factory=dict)

    def throughput(self, stage: str) -> float:
        """Average results per cycle for one stage (1.0 == ideal II=1)."""
        if self.cycles <= 0:
            return 0.0
        return self.fires.get(stage, 0) / self.cycles

    def total_stalls(self, stage: str) -> int:
        return sum(self.stalls.get(stage, {}).values())

    def summary(self) -> str:
        """Human-readable multi-line run summary."""
        lines = [f"cycles: {self.cycles}"]
        for name in sorted(self.fires):
            stalls = self.stalls.get(name, {})
            lines.append(
                f"  {name}: fires={self.fires[name]} "
                f"throughput={self.throughput(name):.3f} "
                f"stalls(in={stalls.get('input', 0)}, out={stalls.get('output', 0)}, "
                f"ii={stalls.get('ii', 0)}, pipe={stalls.get('pipeline', 0)})"
            )
        return "\n".join(lines)


class DataflowEngine:
    """Runs a :class:`DataflowGraph` to quiescence.

    Parameters
    ----------
    graph:
        The wired dataflow graph; :meth:`DataflowGraph.validate` is called
        before the first cycle.
    max_cycles:
        Hard cap to bound runaway simulations.
    monitors:
        Optional probes sampled once per cycle.
    lint:
        When True, run the full graph-family lint pass
        (:func:`repro.lint.lint_graph`) before the first cycle and raise
        :class:`~repro.errors.LintError` on any error diagnostic — the
        synthesis-time pre-flight the HLS tools would perform.  Off by
        default: :meth:`DataflowGraph.validate` already covers the hard
        structural errors, and tests deliberately run odd graphs.
    """

    def __init__(self, graph: DataflowGraph, *, max_cycles: int = 10_000_000,
                 monitors: list[Monitor] | None = None,
                 stall_grace: int | None = None, lint: bool = False) -> None:
        if max_cycles < 1:
            raise DataflowError(f"max_cycles must be >= 1, got {max_cycles}")
        if stall_grace is not None and stall_grace < 1:
            raise DataflowError(
                f"stall_grace must be >= 1, got {stall_grace}"
            )
        self.graph = graph
        self.max_cycles = max_cycles
        self.monitors = list(monitors or [])
        self.stall_grace = stall_grace
        self.lint = lint

    def run(self) -> RunStats:
        """Simulate until quiescence and return run statistics."""
        if self.lint:
            from repro.lint import lint_graph

            report = lint_graph(self.graph)
            if not report.ok:
                raise LintError(
                    f"lint pre-flight failed for graph "
                    f"{self.graph.name!r}:\n{report.render_text()}"
                )
        self.graph.validate()
        order = self.graph.topological_order()
        # A machine can legitimately make no visible progress for up to the
        # largest II (waiting out the interval); anything longer without
        # progress while non-idle is a deadlock (e.g. an undersized FIFO).
        # Stages gated by external resources (a starved memory arbiter)
        # may stall longer — callers model that via ``stall_grace``.
        grace = self.stall_grace if self.stall_grace is not None else (
            max(s.ii for s in order) + max(s.latency for s in order) + 1
        )

        cycle = 0
        last_progress = 0
        while cycle < self.max_cycles:
            progressed = False
            for stage in order:
                progressed |= stage.tick(cycle)
            for monitor in self.monitors:
                monitor.sample(cycle, self.graph)
            if progressed:
                last_progress = cycle
            else:
                if self._quiescent():
                    cycle += 1
                    break
                if cycle - last_progress > grace:
                    raise DataflowError(
                        f"dataflow deadlock in graph {self.graph.name!r} at "
                        f"cycle {cycle}: no progress for {cycle - last_progress} "
                        f"cycles; stream states: "
                        + ", ".join(
                            f"{s.name}={s.occupancy}/{s.depth}"
                            for s in self.graph.streams
                        )
                    )
            cycle += 1
        else:
            raise DataflowError(
                f"graph {self.graph.name!r} did not quiesce within "
                f"{self.max_cycles} cycles"
            )

        return RunStats(
            cycles=cycle,
            fires={s.name: s.stats.fires for s in order},
            stalls={
                s.name: {
                    "input": s.stats.input_stalls,
                    "output": s.stats.output_stalls,
                    "ii": s.stats.ii_waits,
                    "pipeline": s.stats.pipeline_full_stalls,
                }
                for s in order
            },
            stream_high_water={
                s.name: s.stats.max_occupancy for s in self.graph.streams
            },
        )

    def _quiescent(self) -> bool:
        """True when nothing can ever happen again."""
        return all(stage.is_idle() for stage in self.graph.stages) and all(
            stream.is_empty for stream in self.graph.streams
        )
