"""Lazy bulk containers for the engine's fast-forward data path.

When the engine fast-forwards N periods of a steady-state machine
(:mod:`repro.dataflow.engine`), every stage processes thousands of items in
one step.  Materialising each item as a Python object would forfeit most of
the speedup, so batch data travels between stages as :class:`Bulk` objects:
ordered, sliceable sequences that only materialise real stream items on
demand — for the few items that remain inside FIFOs and stage pipelines
when exact per-cycle simulation resumes.

``ListBulk`` wraps already-materialised items; ``ChainBulk`` concatenates
heterogeneous parts (e.g. a FIFO's leftover items followed by an
array-backed block).  Domain-specific array-backed bulks (cell blocks,
stencil windows, advection results) live with the kernel stages in
:mod:`repro.kernel.stages`.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.errors import DataflowError

__all__ = ["Bulk", "ListBulk", "ChainBulk", "FireBulkResult",
           "ListFireResult", "UniformFireResult"]


class Bulk:
    """An ordered batch of stream items, materialised only on demand."""

    def __len__(self) -> int:
        raise NotImplementedError

    def slice(self, start: int, stop: int) -> "Bulk":
        """The sub-batch ``[start, stop)`` (cheap, no materialisation)."""
        raise NotImplementedError

    def materialize(self) -> list[Any]:
        """All items of this batch as real stream-item objects."""
        raise NotImplementedError

    def parts(self) -> Iterator["Bulk"]:
        """Homogeneous sub-batches, in order (self by default)."""
        yield self

    def _check_range(self, start: int, stop: int) -> None:
        if not (0 <= start <= stop <= len(self)):
            raise DataflowError(
                f"bulk slice [{start}, {stop}) out of range for "
                f"{len(self)} items"
            )


class ListBulk(Bulk):
    """A batch backed by an in-memory list of real items."""

    def __init__(self, items: Sequence[Any]) -> None:
        self.items = list(items)

    def __len__(self) -> int:
        return len(self.items)

    def slice(self, start: int, stop: int) -> "ListBulk":
        self._check_range(start, stop)
        return ListBulk(self.items[start:stop])

    def materialize(self) -> list[Any]:
        return list(self.items)


class ChainBulk(Bulk):
    """Concatenation of several batches, in order."""

    def __init__(self, parts: Sequence[Bulk]) -> None:
        self._parts = [p for p in parts if len(p)]
        self._len = sum(len(p) for p in self._parts)

    def __len__(self) -> int:
        return self._len

    def parts(self) -> Iterator[Bulk]:
        for part in self._parts:
            yield from part.parts()

    def slice(self, start: int, stop: int) -> Bulk:
        self._check_range(start, stop)
        picked: list[Bulk] = []
        offset = 0
        for part in self._parts:
            lo = max(start - offset, 0)
            hi = min(stop - offset, len(part))
            if lo < hi:
                picked.append(part.slice(lo, hi))
            offset += len(part)
        if len(picked) == 1:
            return picked[0]
        return ChainBulk(picked)

    def materialize(self) -> list[Any]:
        out: list[Any] = []
        for part in self._parts:
            out.extend(part.materialize())
        return out


class FireBulkResult:
    """Outcome of a stage's batched firing run.

    The engine needs three views of the batch: per-port item totals (to
    route the flow downstream), the *tail* — the last few producing
    firings, individually materialised, which re-enter the stage's
    pipeline — and the *head* — everything before the tail, as a lazy
    bulk per port.
    """

    #: Number of firings that produced at least one output item.
    producing_firings: int = 0

    def port_total(self, port: str) -> int:
        """Total items emitted on ``port`` across all firings."""
        raise NotImplementedError

    def tail_firings(self, count: int) -> list[dict[str, list[Any]]]:
        """Materialised outputs of the last ``count`` producing firings."""
        raise NotImplementedError

    def head_bulk(self, port: str, count: int) -> Bulk:
        """Items emitted on ``port`` by the first ``count`` producing
        firings, as a lazy bulk."""
        raise NotImplementedError


class ListFireResult(FireBulkResult):
    """Fire-bulk result backed by a list of per-firing output mappings.

    The default for stages without a vectorised path: the engine loops
    :meth:`~repro.dataflow.stage.Stage.fire` and wraps the outputs here.
    """

    def __init__(self, firings: Sequence[Mapping[str, list[Any]]]) -> None:
        #: Only firings that produced something enter a stage pipeline.
        self.producing = [dict(f) for f in firings if f]
        self.producing_firings = len(self.producing)

    def port_total(self, port: str) -> int:
        return sum(len(f.get(port, ())) for f in self.producing)

    def tail_firings(self, count: int) -> list[dict[str, list[Any]]]:
        if count == 0:
            return []
        return [dict(f) for f in self.producing[-count:]]

    def head_bulk(self, port: str, count: int) -> Bulk:
        items: list[Any] = []
        for firing in self.producing[:count]:
            items.extend(firing.get(port, ()))
        return ListBulk(items)


class UniformFireResult(FireBulkResult):
    """Fire-bulk result for stages emitting exactly one item per port per
    firing (sources, replicate, the advect stages): each port's output is
    one bulk whose i-th item belongs to the i-th firing."""

    def __init__(self, outputs: Mapping[str, Bulk]) -> None:
        self.outputs = dict(outputs)
        lengths = {len(b) for b in self.outputs.values()}
        if len(lengths) > 1:
            raise DataflowError(
                f"uniform fire result with ragged port lengths: "
                f"{ {p: len(b) for p, b in self.outputs.items()} }"
            )
        self.producing_firings = lengths.pop() if lengths else 0

    def port_total(self, port: str) -> int:
        return len(self.outputs[port])

    def tail_firings(self, count: int) -> list[dict[str, list[Any]]]:
        n = self.producing_firings
        tails = {
            port: bulk.slice(n - count, n).materialize()
            for port, bulk in self.outputs.items()
        }
        return [
            {port: [tails[port][i]] for port in tails}
            for i in range(count)
        ]

    def head_bulk(self, port: str, count: int) -> Bulk:
        return self.outputs[port].slice(0, count)
