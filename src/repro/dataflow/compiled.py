"""Compile a :class:`DataflowGraph` into a batched exact executor.

The per-cycle interpreter in :mod:`repro.dataflow.engine` pays Python
dispatch for every stage on every cycle.  This module closes that gap
from the *exact* side (ROADMAP open item 1): it compiles a graph into a
static plan — topological levels from the schedule DP in
:mod:`repro.analyze.schedule`, NumPy vectors for FIFO occupancies,
credits and stage pipeline fill — and executes provably uniform windows
of ``W = n × period`` cycles as single batched steps, the same way the
FPGA executes a whole steady-state window per clock region
(Zohouri-style wide blocking, applied to the simulator itself).

Correctness model
-----------------
A window may only be batched when the engine has *proved* the machine
periodic over it: the control-state fingerprint at the window start
matches a fingerprint ``period`` cycles earlier, so a deterministic
machine must replay those cycles exactly.  The per-period counter deltas
are then applied ``n`` times at once (vectorised over stages and
streams) and the data relayed through the graph in bulk.  Everything
that could make a cycle *observable* is an **event** that bounds the
window instead of being skipped:

* **monitor samples** — a window never covers a cycle a monitor would
  sample; the engine ticks that cycle scalar, then re-enters batching;
* **freeze boundaries** — fault-plan freeze windows change which stages
  tick, so detection state resets at each boundary and no window ever
  crosses one;
* **FIFO fault strikes** — armed stream hooks draw per *push*, so the
  :class:`~repro.faults.plan.FaultPlan` previews the next strike
  (:meth:`~repro.faults.plan.FaultPlan.fifo_strike_within`) and the
  window is capped to the provably strike-free push prefix; skipped
  pushes advance the occurrence counters
  (:meth:`~repro.faults.plan.FaultPlan.skip_fifo`) so later draws are
  bit-identical to a scalar run;
* **stalls and arbiter decisions** — transient stalls never recur in the
  fingerprint, so stall cycles are always ticked scalar (periodic
  steady-state stalls are part of the proved orbit and replay exactly);
  a data-dependent arbiter vetoes fingerprinting altogether and demotes
  the rest of the run to scalar ticking.

Window width
------------
For fully unit-rate graphs the occupancy prover
(:func:`repro.analyze.occupancy.prove_occupancy`) supplies the proved
steady-state period and stall-free verdict at compile time; the engine
then arms a single probe at that horizon instead of hunting for a
recurrence in a fingerprint table.  Graphs with non-unit-rate stages
(the shift buffer) fall back to runtime recurrence detection — a wrong
or missing hint costs speed, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np

from repro.dataflow.bulk import Bulk, ChainBulk, ListBulk
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.stage import Stage
from repro.dataflow.stream import Stream
from repro.errors import DataflowError

if TYPE_CHECKING:  # imported lazily to keep dataflow import-cycle free
    from repro.faults.plan import FaultPlan

__all__ = ["CompiledGraph", "EventCalendar", "compile_graph",
           "period_deltas", "execute_window"]

#: Graphs larger than this skip the compile-time occupancy proof — the
#: abstract interpretation is cheap but not free, and huge graphs are
#: exactly where runtime recurrence detection amortises best.
_STATIC_HINT_MAX_STAGES: int = 96


@dataclass
class CompiledGraph:
    """A :class:`DataflowGraph` lowered to a static batched-execution plan.

    Stage order, levels and start cycles come from the schedule DP
    (:func:`repro.analyze.schedule.start_cycles`); the static per-stage
    and per-stream properties are NumPy vectors so window planning is
    array arithmetic, not attribute chasing.  The live control state —
    FIFO occupancies, credits (free slots) and pipeline fill — is
    exposed as vectors too, aligned with :attr:`order` /
    :attr:`streams`.
    """

    graph: DataflowGraph
    #: Stages in topological order (the engine's tick order).
    order: list[Stage]
    #: Streams in the graph's canonical order (snapshot row order).
    streams: list[Stream]
    #: Stage names grouped by topological level, sources first.
    levels: tuple[tuple[str, ...], ...]
    #: name -> (level, exact first-fire cycle) from the schedule DP.
    timing: dict[str, tuple[int, int]]
    #: Static per-stage vectors aligned with :attr:`order`.
    ii: np.ndarray = field(repr=False)
    latency: np.ndarray = field(repr=False)
    #: Static per-stream depth vector aligned with :attr:`streams`.
    depths: np.ndarray = field(repr=False)
    #: name -> row index into the stage / stream vectors.
    stage_index: dict[str, int]
    stream_index: dict[str, int]
    #: True when every stage declares unit-rate I/O — the precondition
    #: for trusting the static analyzer's period proof.
    unit_rate: bool
    #: Proved steady-state period (cycles) from the occupancy prover,
    #: or None when no proof applies; a probe horizon, not a promise.
    period_hint: int | None = None
    #: The prover's stall-free verdict under the configured depths.
    stall_free: bool | None = None
    #: Minimal stall-free depth per stream (occupancy prover bound).
    min_safe_depths: dict[str, int] | None = None

    def occupancy(self) -> np.ndarray:
        """Current FIFO occupancy vector (aligned with :attr:`streams`)."""
        return np.fromiter((s.occupancy for s in self.streams),
                           dtype=np.int64, count=len(self.streams))

    def credits(self) -> np.ndarray:
        """Free slots per FIFO — the flow-control credit each producer
        holds, exactly as an AXI-Stream / Avalon-ST credit counter
        would."""
        return self.depths - self.occupancy()

    def pipeline_fill(self) -> np.ndarray:
        """In-flight pipeline entries per stage (aligned with
        :attr:`order`)."""
        return np.fromiter((s.in_flight for s in self.order),
                           dtype=np.int64, count=len(self.order))

    def control_state(self) -> dict[str, np.ndarray]:
        """The complete batched-execution control state, as vectors."""
        return {
            "occupancy": self.occupancy(),
            "credits": self.credits(),
            "pipeline_fill": self.pipeline_fill(),
        }

    def describe(self) -> dict[str, Any]:
        """JSON-ready summary of the compiled plan (docs and CLI)."""
        return {
            "graph": self.graph.name,
            "stages": len(self.order),
            "streams": len(self.streams),
            "levels": [list(level) for level in self.levels],
            "unit_rate": self.unit_rate,
            "period_hint": self.period_hint,
            "stall_free": self.stall_free,
        }


def compile_graph(graph: DataflowGraph, *,
                  analyze: bool = True) -> CompiledGraph:
    """Lower ``graph`` to a :class:`CompiledGraph`.

    ``analyze=True`` additionally runs the occupancy prover on fully
    unit-rate graphs to obtain a compile-time period hint and stall-free
    verdict; any analysis failure (non-conforming graph, proved
    deadlock) simply withholds the hint.
    """
    # Lazy import: repro.analyze builds on repro.dataflow, so the
    # schedule DP is pulled in at compile time, not at module import.
    from repro.analyze.schedule import start_cycles

    order = graph.topological_order()
    streams = list(graph.streams)
    timing = start_cycles(graph)
    n_levels = max((lvl for lvl, _ in timing.values()), default=-1) + 1
    levels: list[list[str]] = [[] for _ in range(n_levels)]
    for stage in order:  # keep topological order within each level
        levels[timing[stage.name][0]].append(stage.name)
    compiled = CompiledGraph(
        graph=graph,
        order=order,
        streams=streams,
        levels=tuple(tuple(level) for level in levels),
        timing=timing,
        ii=np.fromiter((s.ii for s in order), dtype=np.int64,
                       count=len(order)),
        latency=np.fromiter((s.latency for s in order), dtype=np.int64,
                            count=len(order)),
        depths=np.fromiter((s.depth for s in streams), dtype=np.int64,
                           count=len(streams)),
        stage_index={s.name: i for i, s in enumerate(order)},
        stream_index={s.name: i for i, s in enumerate(streams)},
        unit_rate=all(getattr(s, "unit_rate", True) for s in order),
    )
    if analyze and compiled.unit_rate \
            and 0 < len(order) <= _STATIC_HINT_MAX_STAGES:
        _attach_static_hint(compiled)
    return compiled


def _attach_static_hint(compiled: CompiledGraph) -> None:
    """Attach the occupancy prover's period/stall-free facts, if provable."""
    from repro.analyze.occupancy import prove_occupancy

    try:
        proof = prove_occupancy(compiled.graph)
    except Exception:  # noqa: BLE001 - a failed proof only costs the hint
        return
    if not proof.safe:
        return
    compiled.stall_free = proof.stall_free
    compiled.min_safe_depths = proof.minimal_depths()
    if proof.period is not None and proof.period.cycles > 0:
        compiled.period_hint = proof.period.cycles


class EventCalendar:
    """Everything that bounds a batched window to stay observable.

    The calendar answers one question: starting at ``sig_cycle``, how
    many whole periods may be skipped before a cycle that *must* be
    ticked scalar — a monitor sample, a freeze-window boundary, or a
    FIFO fault strike?  Windows are capped, never silently extended, so
    every observable event happens on the scalar path at exactly the
    cycle (or push) a fully scalar run would produce it.
    """

    def __init__(self, *,
                 monitors: Iterable[tuple[int, int]] = (),
                 freeze: dict[str, tuple[int, int | None]] | None = None,
                 plan: "FaultPlan | None" = None,
                 hooked: Sequence[str] = ()) -> None:
        #: (every, phase) strides; every-cycle monitors (stride <= 1)
        #: must be rejected by the caller — no window can skip anything.
        self.monitors = [(every, phase) for every, phase in monitors
                         if every > 1]
        bounds: set[int] = set()
        for start, stop in (freeze or {}).values():
            bounds.add(start)
            if stop is not None:
                bounds.add(stop)
        #: Freeze-window boundary cycles; the engine resets recurrence
        #: detection whenever the clock crosses one.
        self.boundaries: tuple[int, ...] = tuple(sorted(bounds))
        self.plan = plan
        #: Streams with an armed fault hook, by name.
        self.hooked: tuple[str, ...] = tuple(hooked)

    def cap_cycles(self, sig_cycle: int) -> int | None:
        """Max cycles skippable from ``sig_cycle`` before a clocked event.

        ``None`` means unbounded (no monitors, no upcoming boundary).
        The skipped window ``[sig_cycle, sig_cycle + L - 1]`` must
        exclude every sample cycle and every boundary cycle.
        """
        cap: int | None = None
        for every, phase in self.monitors:
            next_sample = sig_cycle + ((phase - sig_cycle) % every)
            gap = next_sample - sig_cycle
            cap = gap if cap is None else min(cap, gap)
        for boundary in self.boundaries:
            if boundary >= sig_cycle:
                gap = boundary - sig_cycle
                cap = gap if cap is None else min(cap, gap)
                break
        return cap

    def push_rates(self, d_stream: np.ndarray,
                   stream_index: dict[str, int]) -> list[tuple[str, int]]:
        """Per-period push counts for every fault-hooked stream."""
        return [(name, int(d_stream[stream_index[name]][0]))
                for name in self.hooked]

    def cap_periods(self, sig_cycle: int, period: int, n: int,
                    push_rates: Sequence[tuple[str, int]]) -> int:
        """Shrink ``n`` periods to the provably event-free window."""
        cap = self.cap_cycles(sig_cycle)
        if cap is not None:
            n = min(n, cap // period)
        if n <= 0:
            return 0
        if self.plan is not None:
            for name, rate in push_rates:
                if rate <= 0:
                    continue
                strike = self.plan.fifo_strike_within(name, n * rate)
                if strike is not None:
                    n = min(n, strike // rate)
                    if n <= 0:
                        return 0
        return n

    def commit(self, n: int, push_rates: Sequence[tuple[str, int]]) -> None:
        """Account the pushes a committed window skipped.

        The bulk relay bypasses stream fault hooks, so the occurrence
        counters must advance by exactly the previewed-safe push counts —
        otherwise every later draw would shift and the fault trace would
        diverge from a scalar run.
        """
        if self.plan is None:
            return
        for name, rate in push_rates:
            if rate > 0:
                self.plan.skip_fifo(name, n * rate)


# -- window planning and execution ------------------------------------------

def period_deltas(order: list[Stage], streams: list[Stream],
                  snapshot: tuple[tuple, tuple]
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Per-period counter deltas since ``snapshot``, as arrays.

    Rows align with ``order`` / ``streams``; stage columns are
    ``(fires, retired, input_stalls, output_stalls, ii_waits,
    pipeline_full_stalls)``, stream columns ``(pushes, pops,
    full_stalls, empty_stalls)``.
    """
    snap_stage, snap_stream = snapshot
    now_stage = np.array(
        [(s.stats.fires, s.stats.retired, s.stats.input_stalls,
          s.stats.output_stalls, s.stats.ii_waits,
          s.stats.pipeline_full_stalls) for s in order],
        dtype=np.int64).reshape(len(order), 6)
    now_stream = np.array(
        [(st.stats.pushes, st.stats.pops, st.stats.full_stalls,
          st.stats.empty_stalls) for st in streams],
        dtype=np.int64).reshape(len(streams), 4)
    d_stage = now_stage - np.asarray(snap_stage,
                                     dtype=np.int64).reshape(len(order), 6)
    d_stream = now_stream - np.asarray(
        snap_stream, dtype=np.int64).reshape(len(streams), 4)
    return d_stage, d_stream


def _cap_supply(order: list[Stage], fires_per_period: np.ndarray,
                n: int) -> int:
    """Cap ``n`` periods by every firing stage's remaining supply."""
    for i, stage in enumerate(order):
        fpp = int(fires_per_period[i])
        if fpp and n > 0:
            n = min(n, stage.ff_fire_capacity(n * fpp) // fpp)
    return n


def execute_window(order: list[Stage], streams: list[Stream],
                   stream_index: dict[str, int], sig_cycle: int,
                   period: int, snapshot: tuple[tuple, tuple], limit: int,
                   calendar: EventCalendar | None = None) -> int:
    """Plan and execute one batched window of whole periods.

    Returns the number of cycles skipped: ``> 0`` on a committed window,
    ``0`` when the window must be deferred (a parked zero-fire period,
    or an event due within one period — the caller keeps its detection
    state and ticks scalar), and ``-1`` when remaining supply cannot
    cover even one period (ramp-down: the caller should stop batching).

    The relay is FIFO-exact: each stream's final content is the last
    ``occupancy`` items pushed, each pipeline's final entries the last
    ``fill`` produced, so per-cycle ticking resumes on a state
    bit-identical to the scalar machine's.
    """
    d_stage, d_stream = period_deltas(order, streams, snapshot)
    if len(order) == 0 or int(d_stage[:, 0].sum()) == 0:
        return 0
    n = (limit - sig_cycle - 1) // period
    push_rates: Sequence[tuple[str, int]] = ()
    if calendar is not None:
        push_rates = calendar.push_rates(d_stream, stream_index)
        n = calendar.cap_periods(sig_cycle, period, n, push_rates)
        if n < 1:
            return 0
    n = _cap_supply(order, d_stage[:, 0], n)
    if n < 1:
        return -1
    target_cycle = sig_cycle + n * period

    # Relay the bulk flow through the graph in topological order.
    pushed: dict[str, Bulk] = {}
    for i, stage in enumerate(order):
        ds = d_stage[i]
        fires = int(ds[0]) * n
        retired = int(ds[1]) * n
        inputs: dict[str, Bulk] = {}
        for port, stream in stage.inputs.items():
            dstr = d_stream[stream_index[stream.name]]
            pops = int(dstr[1]) * n
            combined = ChainBulk([
                ListBulk(list(stream)),
                pushed.get(stream.name, ListBulk([])),
            ])
            inputs[port] = combined.slice(0, pops)
            leftover = combined.slice(pops, len(combined)).materialize()
            stream.ff_replace(
                leftover, pushes=int(dstr[0]) * n, pops=pops,
                full_stalls=int(dstr[2]) * n,
                empty_stalls=int(dstr[3]) * n)
        if fires:
            result = stage.fire_bulk(fires, inputs, sig_cycle)
            if result.producing_firings != retired:
                raise DataflowError(
                    f"stage {stage.name!r}: batched window produced "
                    f"{result.producing_firings} pipeline entries, "
                    f"expected {retired} — not a data-independent "
                    f"steady state"
                )
        else:
            result = None
            if retired:
                raise DataflowError(
                    f"stage {stage.name!r}: batched window retired "
                    f"{retired} entries without firing"
                )
        fill = stage.in_flight
        retired_old = min(retired, fill)
        retired_new = retired - retired_old
        old_entries = stage.ff_pipeline_entries()
        for port, stream in stage.outputs.items():
            old_items = [
                item
                for entry in old_entries[:retired_old]
                for item in entry.get(port, ())
            ]
            parts: list[Bulk] = [ListBulk(old_items)]
            if result is not None and retired_new:
                parts.append(result.head_bulk(port, retired_new))
            pushed[stream.name] = ChainBulk(parts)
        tail = (result.tail_firings(retired_old)
                if result is not None else [])
        stage.ff_commit(
            sig_cycle, target_cycle, fires=fires, retired=retired,
            tail_outputs=old_entries[retired_old:] + tail)
        stage.stats.input_stalls += int(ds[2]) * n
        stage.stats.output_stalls += int(ds[3]) * n
        stage.stats.ii_waits += int(ds[4]) * n
        stage.stats.pipeline_full_stalls += int(ds[5]) * n
    if calendar is not None:
        calendar.commit(n, push_rates)
    return n * period
