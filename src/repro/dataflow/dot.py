"""Graphviz DOT export of dataflow graphs.

``dot -Tsvg kernel.dot`` renders the Fig. 2 topology directly from the
code that simulates it — handy for documentation and for eyeballing
custom kernels built on the generic machinery.
"""

from __future__ import annotations

import pathlib

from repro.dataflow.graph import DataflowGraph

__all__ = ["to_dot", "write_dot"]


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def to_dot(graph: DataflowGraph, *, rankdir: str = "LR") -> str:
    """Render ``graph`` as Graphviz DOT.

    Stages become boxes labelled with their II and latency; streams become
    edges labelled with their FIFO depth.
    """
    lines = [
        f"digraph {_quote(graph.name)} {{",
        f"  rankdir={rankdir};",
        "  node [shape=box, fontname=monospace];",
        "  edge [fontname=monospace];",
    ]
    for stage in graph.stages:
        label = f"{stage.name}\\nII={stage.ii} L={stage.latency}"
        lines.append(f"  {_quote(stage.name)} [label={_quote(label)}];")
    for stream in graph.streams:
        src, _ = graph._producers[stream.name]
        dst, _ = graph._consumers[stream.name]
        lines.append(
            f"  {_quote(src)} -> {_quote(dst)} "
            f"[label=\"depth {stream.depth}\"];"
        )
    lines.append("}")
    return "\n".join(lines)


def write_dot(graph: DataflowGraph, path: str | pathlib.Path, *,
              rankdir: str = "LR") -> pathlib.Path:
    """Write the DOT rendering to ``path``."""
    path = pathlib.Path(path)
    path.write_text(to_dot(graph, rankdir=rankdir) + "\n")
    return path
