"""Bounded FIFO streams connecting dataflow stages.

A :class:`Stream` models an HLS stream (Xilinx) or an OpenCL channel
(Intel): a hardware FIFO of fixed depth.  Pushing into a full stream or
popping from an empty one is a *stall* in hardware; in the simulator stages
check :meth:`Stream.can_push` / :meth:`Stream.can_pop` before firing, and
the stream records how often it was the limiting resource so that designs
can be diagnosed (a persistently full stream marks a downstream bottleneck,
a persistently empty one an upstream bottleneck).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import FaultError, StreamError

__all__ = ["Stream", "StreamStats", "CorruptedWord", "DROP_WORD"]

#: Sentinel a fault hook returns to make a pushed word vanish in flight:
#: the producer's push is counted, the consumer never sees the item.
DROP_WORD: Any = object()


class CorruptedWord:
    """A FIFO word flipped in flight, detectable at the consumer side.

    Models ECC/CRC-protected links: corruption is *detected*, not
    silently consumed — popping a corrupted word raises
    :class:`~repro.errors.FaultError`, which the checkpointed layers
    catch and turn into a chunk retry.  The original value is kept so
    diagnostics can show what was lost.
    """

    __slots__ = ("original",)

    def __init__(self, original: Any) -> None:
        self.original = original

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorruptedWord({self.original!r})"

#: Default FIFO depth, matching the Vitis HLS default stream depth of 2
#: (one producer register plus one consumer register).
DEFAULT_DEPTH: int = 2


@dataclass
class StreamStats:
    """Lifetime statistics of one stream."""

    pushes: int = 0
    pops: int = 0
    max_occupancy: int = 0
    full_stalls: int = 0
    empty_stalls: int = 0

    def reset(self) -> None:
        self.pushes = 0
        self.pops = 0
        self.max_occupancy = 0
        self.full_stalls = 0
        self.empty_stalls = 0


class Stream:
    """A bounded FIFO channel between two dataflow stages.

    Parameters
    ----------
    name:
        Identifier used in diagnostics.
    depth:
        Maximum number of in-flight items.  Must be >= 1; hardware FIFOs
        always provide at least one register.
    """

    __slots__ = ("name", "depth", "_items", "stats", "fault_hook")

    def __init__(self, name: str, depth: int = DEFAULT_DEPTH) -> None:
        if depth < 1:
            raise StreamError(f"stream {name!r}: depth must be >= 1, got {depth}")
        self.name = name
        self.depth = depth
        self._items: deque[Any] = deque()
        self.stats = StreamStats()
        #: Optional fault injector (armed by the engine from a
        #: :class:`~repro.faults.plan.FaultPlan`): called once per pushed
        #: word, it returns the word unchanged, a :class:`CorruptedWord`
        #: wrapper, or :data:`DROP_WORD`.  ``None`` (the default) keeps
        #: push/pop on the unhooked fast path.
        self.fault_hook: Callable[[Any], Any] | None = None

    # -- state ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        """Iterate over in-flight items front (next pop) to back."""
        return iter(self._items)

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def credits(self) -> int:
        """Free slots — the flow-control credit the producer holds, as
        an AXI-Stream/Avalon-ST credit counter would count it."""
        return self.depth - len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.depth

    def can_push(self, count: int = 1) -> bool:
        """True if ``count`` items fit right now."""
        return len(self._items) + count <= self.depth

    def can_pop(self, count: int = 1) -> bool:
        """True if ``count`` items are available right now."""
        return len(self._items) >= count

    # -- operations -----------------------------------------------------------

    def push(self, item: Any) -> None:
        """Append one item; raises :class:`StreamError` when full.

        Stages must guard with :meth:`can_push`; an unguarded push models a
        design error (data loss in hardware), hence the hard failure.
        """
        if self.is_full:
            self.stats.full_stalls += 1
            raise StreamError(
                f"push to full stream {self.name!r} (depth {self.depth})"
            )
        if self.fault_hook is not None:
            item = self.fault_hook(item)
            if item is DROP_WORD:
                # Lost in flight: the producer's push happened, the word
                # never arrives.  Downstream accounting goes short, which
                # the engine's deadlock guard or the chunk-seam integrity
                # check turns into a typed error.
                self.stats.pushes += 1
                return
        self._items.append(item)
        self.stats.pushes += 1
        if len(self._items) > self.stats.max_occupancy:
            self.stats.max_occupancy = len(self._items)

    def pop(self) -> Any:
        """Remove and return the oldest item; raises when empty."""
        if not self._items:
            self.stats.empty_stalls += 1
            raise StreamError(f"pop from empty stream {self.name!r}")
        self.stats.pops += 1
        item = self._items.popleft()
        if self.fault_hook is not None and type(item) is CorruptedWord:
            raise FaultError(
                f"corrupted word detected on stream {self.name!r} "
                f"(consumer-side ECC check)"
            )
        return item

    def peek(self) -> Any:
        """Return (without removing) the oldest item; raises when empty."""
        if not self._items:
            raise StreamError(f"peek at empty stream {self.name!r}")
        return self._items[0]

    def note_full_stall(self) -> None:
        """Record that a producer stalled on this stream this cycle."""
        self.stats.full_stalls += 1

    def note_empty_stall(self) -> None:
        """Record that a consumer stalled on this stream this cycle."""
        self.stats.empty_stalls += 1

    def ff_replace(self, items: list[Any], *, pushes: int, pops: int,
                   full_stalls: int = 0, empty_stalls: int = 0) -> None:
        """Replace contents and bulk-update statistics after a fast-forward.

        Called only by the engine's steady-state fast-forward
        (:mod:`repro.dataflow.engine`): ``items`` is the FIFO's content at
        the end of the analytically advanced window, ``pushes``/``pops``
        the traffic that logically flowed during it.  The high-water mark
        is untouched — a periodic window repeats occupancies the mark has
        already seen.
        """
        if len(items) > self.depth:
            raise StreamError(
                f"fast-forward would leave {len(items)} items in stream "
                f"{self.name!r} (depth {self.depth})"
            )
        self._items = deque(items)
        self.stats.pushes += pushes
        self.stats.pops += pops
        self.stats.full_stalls += full_stalls
        self.stats.empty_stalls += empty_stalls

    def drain(self) -> list[Any]:
        """Remove and return every in-flight item (end-of-run cleanup)."""
        items = list(self._items)
        self.stats.pops += len(items)
        self._items.clear()
        return items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stream({self.name!r}, depth={self.depth}, "
            f"occupancy={self.occupancy})"
        )
