"""Dataflow graph construction and structural validation.

A :class:`DataflowGraph` owns stages and the streams connecting them.  It
enforces the structural rules that the HLS tool chains enforce at synthesis
time: every declared port is connected exactly once, stream names are
unique, and the stage topology is a DAG (feedback in an HLS dataflow region
requires explicit feedback streams, which this kernel does not use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.dataflow.stage import Stage
from repro.dataflow.stream import DEFAULT_DEPTH, Stream
from repro.errors import GraphError
from repro.lint.diagnostics import Diagnostic, Location, Severity

__all__ = ["DataflowGraph", "Connection"]


@dataclass(frozen=True)
class Connection:
    """One stream together with its producer and consumer endpoints."""

    stream: Stream
    src: Stage
    src_port: str
    dst: Stage
    dst_port: str


class DataflowGraph:
    """A named collection of stages wired together with streams."""

    def __init__(self, name: str = "dataflow") -> None:
        self.name = name
        self._stages: dict[str, Stage] = {}
        self._streams: dict[str, Stream] = {}
        #: (src_stage, src_port) -> stream name, for topology queries.
        self._producers: dict[str, tuple[str, str]] = {}
        #: stream name -> (dst_stage, dst_port).
        self._consumers: dict[str, tuple[str, str]] = {}

    # -- construction --------------------------------------------------------

    def add(self, stage: Stage) -> Stage:
        """Register a stage; returns it for chaining."""
        if stage.name in self._stages:
            raise GraphError(f"duplicate stage name {stage.name!r}")
        self._stages[stage.name] = stage
        return stage

    def connect(self, src: Stage | str, src_port: str, dst: Stage | str,
                dst_port: str, *, depth: int = DEFAULT_DEPTH,
                name: str | None = None) -> Stream:
        """Create a stream from ``src.src_port`` to ``dst.dst_port``."""
        src_stage = self._resolve(src)
        dst_stage = self._resolve(dst)
        stream_name = name or f"{src_stage.name}.{src_port}->{dst_stage.name}.{dst_port}"
        if stream_name in self._streams:
            raise GraphError(f"duplicate stream name {stream_name!r}")
        stream = Stream(stream_name, depth=depth)
        src_stage.bind_output(src_port, stream)
        dst_stage.bind_input(dst_port, stream)
        self._streams[stream_name] = stream
        self._producers[stream_name] = (src_stage.name, src_port)
        self._consumers[stream_name] = (dst_stage.name, dst_port)
        return stream

    def merge(self, other: "DataflowGraph") -> None:
        """Absorb another graph's stages and streams (names must not clash).

        Used by the multi-kernel co-simulation to advance several
        independent kernel graphs under one cycle engine.
        """
        for stage in other.stages:
            self.add(stage)
        for stream in other.streams:
            if stream.name in self._streams:
                raise GraphError(
                    f"stream name clash while merging: {stream.name!r}"
                )
            self._streams[stream.name] = stream
            self._producers[stream.name] = other._producers[stream.name]
            self._consumers[stream.name] = other._consumers[stream.name]

    def _resolve(self, stage: Stage | str) -> Stage:
        if isinstance(stage, Stage):
            if stage.name not in self._stages:
                raise GraphError(f"stage {stage.name!r} not added to graph")
            return stage
        try:
            return self._stages[stage]
        except KeyError:
            raise GraphError(f"unknown stage {stage!r}") from None

    # -- accessors -------------------------------------------------------------

    @property
    def stages(self) -> tuple[Stage, ...]:
        return tuple(self._stages.values())

    @property
    def streams(self) -> tuple[Stream, ...]:
        return tuple(self._streams.values())

    def stage(self, name: str) -> Stage:
        return self._resolve(name)

    def stream(self, name: str) -> Stream:
        try:
            return self._streams[name]
        except KeyError:
            raise GraphError(f"unknown stream {name!r}") from None

    def successors(self, stage: Stage | str) -> Iterator[Stage]:
        """Stages fed by this stage's output streams."""
        name = self._resolve(stage).name
        for stream_name, (src, _) in self._producers.items():
            if src == name:
                dst, _ = self._consumers[stream_name]
                yield self._stages[dst]

    def connections(self) -> Iterator["Connection"]:
        """Every stream with its endpoints, for topology analyses."""
        for stream_name, (src, src_port) in self._producers.items():
            dst, dst_port = self._consumers[stream_name]
            yield Connection(
                stream=self._streams[stream_name],
                src=self._stages[src], src_port=src_port,
                dst=self._stages[dst], dst_port=dst_port,
            )

    # -- validation ------------------------------------------------------------

    def structural_diagnostics(self) -> list[Diagnostic]:
        """Collect *every* structural violation in one pass.

        Unlike :meth:`validate`, which fails on the first problem, this
        returns the full list of findings the way an HLS synthesis report
        would: all unconnected ports (``DF001``), an empty graph
        (``DF002``), and cyclic topology (``DF003``).  The lint subsystem
        (:mod:`repro.lint`) wraps these into its rule catalogue.
        """
        diagnostics: list[Diagnostic] = []
        if not self._stages:
            diagnostics.append(Diagnostic(
                code="DF002", severity=Severity.ERROR,
                message=f"graph {self.name!r} has no stages",
                location=Location("graph", self.name),
                hint="add stages before validating or running the graph",
            ))
            return diagnostics
        for stage in self._stages.values():
            for direction, declared, bound in (
                ("input", stage.input_ports, stage.inputs),
                ("output", stage.output_ports, stage.outputs),
            ):
                for port in declared:
                    if port not in bound:
                        diagnostics.append(Diagnostic(
                            code="DF001", severity=Severity.ERROR,
                            message=(
                                f"stage {stage.name!r} has unconnected "
                                f"{direction} port {port!r}"
                            ),
                            location=Location("stage", stage.name, port),
                            hint="connect the port or remove it from the "
                                 "stage's declaration",
                        ))
        cyclic = self._cycle_members()
        if cyclic:
            diagnostics.append(Diagnostic(
                code="DF003", severity=Severity.ERROR,
                message=(
                    f"graph {self.name!r} contains a cycle involving "
                    f"{cyclic}"
                ),
                location=Location("graph", self.name),
                hint="dataflow regions must be acyclic; feedback needs an "
                     "explicit feedback stream outside this design",
            ))
        return diagnostics

    def validate(self) -> None:
        """Check every port is wired and the topology is a DAG.

        Thin raising wrapper over :meth:`structural_diagnostics`: all
        violations are collected, then reported in a single
        :class:`~repro.errors.GraphError`.
        """
        errors = [d for d in self.structural_diagnostics()
                  if d.severity is Severity.ERROR]
        if errors:
            raise GraphError("; ".join(d.message for d in errors))

    def _cycle_members(self) -> list[str]:
        """Stage names on cycles (empty list for a DAG); never raises."""
        indegree = {name: 0 for name in self._stages}
        edges: dict[str, list[str]] = {name: [] for name in self._stages}
        for stream_name, (src, _) in self._producers.items():
            dst, _ = self._consumers[stream_name]
            edges[src].append(dst)
            indegree[dst] += 1
        ready = [name for name, deg in indegree.items() if deg == 0]
        visited = 0
        while ready:
            name = ready.pop()
            visited += 1
            for succ in edges[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if visited == len(self._stages):
            return []
        return sorted(n for n, d in indegree.items() if d > 0)

    def topological_order(self) -> list[Stage]:
        """Stages ordered so producers come before consumers.

        The simulation engine ticks stages in this order, which lets a value
        flow at most one stage per cycle boundary while keeping the
        single-pass-per-cycle engine simple.
        """
        indegree = {name: 0 for name in self._stages}
        edges: dict[str, list[str]] = {name: [] for name in self._stages}
        for stream_name, (src, _) in self._producers.items():
            dst, _ = self._consumers[stream_name]
            edges[src].append(dst)
            indegree[dst] += 1
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: list[Stage] = []
        while ready:
            name = ready.pop(0)
            order.append(self._stages[name])
            for succ in sorted(edges[name]):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._stages):
            cyclic = sorted(n for n, d in indegree.items() if d > 0)
            raise GraphError(
                f"graph {self.name!r} contains a cycle involving {cyclic}"
            )
        return order

    def reset(self) -> None:
        """Reset all stages and drain all streams for a fresh run."""
        for stage in self._stages.values():
            stage.reset()
        for stream in self._streams.values():
            stream.drain()
            stream.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataflowGraph({self.name!r}, stages={len(self._stages)}, "
            f"streams={len(self._streams)})"
        )
