"""Probes sampled by the engine once per simulated cycle.

These mirror the insight the Xilinx analysis pane gives a developer
(section III-C of the paper): per-cycle stream occupancy and windowed stage
throughput, used to locate the limiting stage of a design.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.graph import DataflowGraph

__all__ = ["Monitor", "StreamProbe", "ThroughputMonitor"]


class Monitor(Protocol):
    """Anything with a per-cycle ``sample`` hook.

    A monitor may additionally expose integer attributes ``sample_every``
    (stride) and ``sample_phase``: the engine then only invokes
    :meth:`sample` on cycles where ``cycle % sample_every ==
    sample_phase``, instead of every cycle.  Monitors without the
    attributes are sampled every cycle, as before.
    """

    def sample(self, cycle: int, graph: "DataflowGraph") -> None:
        """Called by the engine once per cycle after all stages ticked."""
        ...


class StreamProbe:
    """Records the occupancy of one stream over time.

    Parameters
    ----------
    stream_name:
        Stream to watch.
    stride:
        Sample every ``stride`` cycles to bound memory for long runs.
    """

    def __init__(self, stream_name: str, *, stride: int = 1) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stream_name = stream_name
        self.stride = stride
        # Let the engine skip the non-sampled cycles entirely.
        self.sample_every = stride
        self.sample_phase = 0
        self.samples: list[tuple[int, int]] = []

    def sample(self, cycle: int, graph: "DataflowGraph") -> None:
        if cycle % self.stride == 0:
            self.samples.append((cycle, graph.stream(self.stream_name).occupancy))

    @property
    def mean_occupancy(self) -> float:
        if not self.samples:
            return 0.0
        return sum(occ for _, occ in self.samples) / len(self.samples)

    @property
    def max_occupancy(self) -> int:
        return max((occ for _, occ in self.samples), default=0)


class ThroughputMonitor:
    """Windowed firing-rate monitor for one stage.

    ``rates`` holds (cycle, fires_in_window / window) pairs; in steady state
    an II=1 stage reports 1.0, and the ramp at the start visualises the
    shift-buffer priming the paper describes.
    """

    def __init__(self, stage_name: str, *, window: int = 64) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.stage_name = stage_name
        self.window = window
        # Samples land on the last cycle of each window.
        self.sample_every = window
        self.sample_phase = window - 1
        self.rates: list[tuple[int, float]] = []
        self._last_fires = 0

    def sample(self, cycle: int, graph: "DataflowGraph") -> None:
        if cycle % self.window != self.window - 1:
            return
        fires = graph.stage(self.stage_name).stats.fires
        self.rates.append((cycle, (fires - self._last_fires) / self.window))
        self._last_fires = fires

    @property
    def steady_state_rate(self) -> float:
        """Median of the recorded window rates (robust to ramp-up/drain)."""
        if not self.rates:
            return 0.0
        values = sorted(rate for _, rate in self.rates)
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    @property
    def peak_rate(self) -> float:
        return max((rate for _, rate in self.rates), default=0.0)
