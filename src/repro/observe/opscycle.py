"""Achieved ops-per-cycle accounting against the paper's theoretical peak.

Section III derives the design's theoretical performance from operations
issued per cycle: 63 for an interior cell, 55 at the column top, an
average of 62.875 at the MONC default column height of 64.  "Quantifying
how far kernels fall short of this figure can determine how much more
opportunity there is for further kernel level optimisation" — this module
does that quantification from the *measured* engine statistics: floating
point work is counted from the advect stages' fire counters (not assumed
from the grid), divided by the measured cycle count, and compared to
:func:`repro.constants.average_ops_per_cycle`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import constants
from repro.dataflow.engine import RunStats
from repro.errors import ConfigurationError

__all__ = ["OpsPerCycleReport", "flops_from_stats", "ops_per_cycle_report"]


def flops_from_stats(stats: RunStats, nz: int) -> int:
    """Floating point operations evidenced by measured advect fire counts.

    Every firing of an advect stage is one cell's worth of that field's
    update: 21 operations, minus 4 for the U and V stages at the column
    top.  One emission per column is a top emission (columns stream
    ``nz - 1`` output cells), so top counts follow from the fire counters
    alone — no reference to the grid that produced them.
    """
    if nz < 2:
        raise ConfigurationError(f"column height must be >= 2, got {nz}")
    total = 0
    found = False
    for name, fires in stats.fires.items():
        base = name.rsplit(".", 1)[-1]  # strip multi-kernel "k0." prefixes
        if not base.startswith("advect_"):
            continue
        field = base[len("advect_"):]
        if field not in ("u", "v", "w"):
            continue
        found = True
        if fires % (nz - 1):
            raise ConfigurationError(
                f"stage {name!r} fired {fires} times, not a multiple of "
                f"the {nz - 1} emissions per column — wrong nz?"
            )
        columns = fires // (nz - 1)
        ops = fires * constants.OPS_PER_FIELD
        if field in ("u", "v"):
            ops -= columns * constants.OPS_TOP_SAVING_PER_FIELD
        total += ops
    if not found:
        raise ConfigurationError(
            "no advect stage fires in these stats; was the graph built by "
            "build_advection_graph?"
        )
    return total


@dataclass(frozen=True)
class OpsPerCycleReport:
    """Measured vs theoretical per-cycle operation issue.

    The theoretical peak is *derived* from the column height and the
    kernel's per-cell operation model via
    :func:`repro.constants.derived_ops_per_cycle`; the defaults are the
    advection kernel's 63/55 counts, which give the paper's 62.875 at
    the MONC default height of 64.  Scenario kernels (diffusion,
    buoyancy smoothing) pass their own operation models.
    """

    cycles: int
    flops: int
    column_height: int
    num_kernels: int = 1
    ops_per_cell: int = constants.OPS_PER_CELL
    ops_per_top_cell: int = constants.OPS_PER_TOP_CELL

    @property
    def achieved_ops_per_cycle(self) -> float:
        return self.flops / self.cycles if self.cycles else 0.0

    @property
    def theoretical_ops_per_cycle(self) -> float:
        """The derived peak (the paper's 62.875 with advection defaults)."""
        return self.num_kernels * constants.derived_ops_per_cycle(
            self.column_height, ops_per_cell=self.ops_per_cell,
            ops_per_top_cell=self.ops_per_top_cell)

    @property
    def percent_of_theoretical(self) -> float:
        return 100.0 * self.achieved_ops_per_cycle \
            / self.theoretical_ops_per_cycle

    def achieved_gflops(self, clock_mhz: float) -> float:
        """Achieved rate at a kernel clock (cycles become wall time)."""
        if clock_mhz <= 0:
            raise ConfigurationError(
                f"clock must be positive, got {clock_mhz}"
            )
        return self.achieved_ops_per_cycle * clock_mhz * 1e6 / 1e9

    def to_dict(self) -> dict[str, Any]:
        return {
            "cycles": self.cycles,
            "flops": self.flops,
            "column_height": self.column_height,
            "num_kernels": self.num_kernels,
            "ops_per_cell": self.ops_per_cell,
            "ops_per_top_cell": self.ops_per_top_cell,
            "achieved_ops_per_cycle": round(self.achieved_ops_per_cycle, 4),
            "theoretical_ops_per_cycle": self.theoretical_ops_per_cycle,
            "percent_of_theoretical": round(self.percent_of_theoretical, 2),
        }

    def summary(self) -> str:
        return (
            f"ops/cycle: {self.achieved_ops_per_cycle:.3f} achieved vs "
            f"{self.theoretical_ops_per_cycle:.3f} theoretical "
            f"({self.percent_of_theoretical:.1f}%) over {self.cycles} "
            f"cycles, {self.flops} flops"
        )


def ops_per_cycle_report(stats: RunStats, *, nz: int, cycles: int | None = None,
                         num_kernels: int = 1,
                         ops_per_cell: int = constants.OPS_PER_CELL,
                         ops_per_top_cell: int = constants.OPS_PER_TOP_CELL,
                         flops: int | None = None) -> OpsPerCycleReport:
    """Build the report from one (possibly merged) engine run.

    ``cycles`` defaults to ``stats.cycles`` — pass the end-to-end cycle
    count explicitly when chunks overlap (multi-kernel co-simulation
    merges per-replica stats whose cycles would otherwise double-count).
    ``flops`` defaults to the advect-stage fire-count accounting; pass
    an explicit total (together with the matching
    ``ops_per_cell``/``ops_per_top_cell`` model) for non-advection
    scenario kernels whose stats carry no advect stages.
    """
    return OpsPerCycleReport(
        cycles=stats.cycles if cycles is None else cycles,
        flops=flops_from_stats(stats, nz) if flops is None else flops,
        column_height=nz,
        num_kernels=num_kernels,
        ops_per_cell=ops_per_cell,
        ops_per_top_cell=ops_per_top_cell,
    )
