"""A labelled metric registry: counters, gauges, histograms.

The shapes follow the conventions every serving stack's metric plane uses
(Prometheus naming, label sets per sample) so the simulator's numbers can
feed the same dashboards as a production deployment:

* **Counter** — monotonically non-decreasing; ``inc()`` with a negative
  amount raises, so aggregation downstream can assume monotonicity (the
  property test in ``tests/observe`` pins this).
* **Gauge** — last-write-wins value, plus a tracked maximum
  (``set_max``) for high-water marks such as FIFO occupancy.
* **Histogram** — fixed upper-bound buckets with count and sum;
  histogram *values* merge associatively (also property-tested), so
  per-chunk or per-rank histograms fold in any order.

Instruments are cheap when the registry is disabled: each recording call
is a single-branch no-op, and :meth:`MetricRegistry.should_sample`
supports the same ``sample_every`` striding the engine's monitors use,
so per-cycle call sites can skip whole cycles without arithmetic.

Metric naming scheme (see ``docs/observability.md``): snake_case,
``<subsystem>_<quantity>[_<unit>]`` — ``engine_cycles``,
``stage_fires``, ``fifo_high_water``, ``kernel_ops_per_cycle`` — with
labels for the dimension (``stage=``, ``stream=``, ``kind=``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "DEFAULT_BUCKETS",
]

#: Default histogram upper bounds: ratio-ish quantities (throughputs,
#: utilisations) and small counts both land usefully in them.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 2.0, 5.0, 10.0,
)

#: Canonical key for one label set.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class HistogramValue:
    """Bucket counts + sum + count for one label set.

    ``merge`` is associative and commutative (bucket-wise addition), so a
    fleet of per-chunk/per-rank histograms folds in any order — the
    hypothesis suite pins the associativity.
    """

    bounds: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    #: observations above the last bound.
    overflow: int = 0
    total: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if tuple(sorted(self.bounds)) != tuple(self.bounds) or not self.bounds:
            raise ConfigurationError(
                f"histogram bounds must be non-empty and sorted, "
                f"got {self.bounds}"
            )
        if not self.counts:
            self.counts = [0] * len(self.bounds)
        elif len(self.counts) != len(self.bounds):
            raise ConfigurationError(
                f"histogram has {len(self.counts)} counts for "
                f"{len(self.bounds)} bounds"
            )

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.overflow += 1
        self.total += 1
        self.sum += value

    def merge(self, other: "HistogramValue") -> "HistogramValue":
        """Bucket-wise sum of two values over identical bounds."""
        if self.bounds != other.bounds:
            raise ConfigurationError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        return HistogramValue(
            bounds=self.bounds,
            counts=[a + b for a, b in zip(self.counts, other.counts)],
            overflow=self.overflow + other.overflow,
            total=self.total + other.total,
            sum=self.sum + other.sum,
        )

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "count": self.total,
            "sum": self.sum,
        }


class _Instrument:
    """Base: name, help text, per-label-set samples."""

    kind = "untyped"

    def __init__(self, registry: "MetricRegistry", name: str,
                 help: str = "") -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self._samples: dict[LabelKey, Any] = {}

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def labelsets(self) -> list[LabelKey]:
        return list(self._samples)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "samples": [
                {"labels": dict(key), "value": self._sample_value(value)}
                for key, value in sorted(self._samples.items())
            ],
        }

    def _sample_value(self, value: Any) -> Any:
        return value


class Counter(_Instrument):
    """Monotonically non-decreasing, per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r}: negative increment {amount} "
                f"(counters are monotone; use a gauge)"
            )
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return float(self._samples.get(_label_key(labels), 0.0))


class Gauge(_Instrument):
    """Last-write-wins value, per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        self._samples[_label_key(labels)] = float(value)

    def set_max(self, value: float, **labels: Any) -> None:
        """Keep the maximum seen — the high-water-mark idiom."""
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        if key not in self._samples or value > self._samples[key]:
            self._samples[key] = float(value)

    def value(self, **labels: Any) -> float:
        return float(self._samples.get(_label_key(labels), 0.0))


class Histogram(_Instrument):
    """Fixed-bucket distribution, per label set."""

    kind = "histogram"

    def __init__(self, registry: "MetricRegistry", name: str,
                 help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(registry, name, help)
        self.bounds = tuple(float(b) for b in buckets)
        if tuple(sorted(self.bounds)) != self.bounds or not self.bounds:
            raise ConfigurationError(
                f"histogram {name!r}: buckets must be non-empty and "
                f"sorted, got {self.bounds}"
            )

    def observe(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        if key not in self._samples:
            self._samples[key] = HistogramValue(bounds=self.bounds)
        self._samples[key].observe(value)

    def value(self, **labels: Any) -> HistogramValue:
        key = _label_key(labels)
        if key not in self._samples:
            return HistogramValue(bounds=self.bounds)
        return self._samples[key]

    def _sample_value(self, value: HistogramValue) -> Any:
        return value.to_dict()


class MetricRegistry:
    """Owns a namespace of instruments.

    Parameters
    ----------
    enabled:
        When False every instrument's recording call is a one-branch
        no-op; instruments can still be created and wired.
    sample_every:
        Stride for :meth:`should_sample` — per-cycle call sites only
        record on cycles where ``cycle % sample_every == 0``, exactly the
        monitors' striding contract.
    """

    def __init__(self, *, enabled: bool = True, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.enabled = enabled
        self.sample_every = sample_every
        self._instruments: dict[str, _Instrument] = {}

    def should_sample(self, cycle: int) -> bool:
        """True when a per-cycle site should record this cycle."""
        return self.enabled and cycle % self.sample_every == 0

    # -- instrument factories (idempotent per name) --------------------------

    def _get(self, name: str, kind: type, help: str,
             **kwargs: Any) -> _Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind.kind}"  # type: ignore[attr-defined]
                )
            return existing
        instrument = kind(self, name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, help,  # type: ignore[return-value]
                         buckets=buckets)

    # -- output --------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every instrument, sorted by name."""
        return {
            name: self._instruments[name].to_dict()
            for name in sorted(self._instruments)
        }

    def render_text(self) -> str:
        """Prometheus-exposition-flavoured text dump."""
        lines: list[str] = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if inst.help:
                lines.append(f"# HELP {name} {inst.help}")
            lines.append(f"# TYPE {name} {inst.kind}")
            for entry in inst.to_dict()["samples"]:
                labels = entry["labels"]
                label_str = ("{" + ",".join(
                    f'{k}="{v}"' for k, v in labels.items()) + "}"
                    if labels else "")
                value = entry["value"]
                if isinstance(value, dict):  # histogram
                    lines.append(
                        f"{name}_count{label_str} {value['count']}")
                    lines.append(f"{name}_sum{label_str} {value['sum']:g}")
                else:
                    lines.append(f"{name}{label_str} {value:g}")
        return "\n".join(lines)
