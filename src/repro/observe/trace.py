"""Span-based tracing over deterministic clocks.

A :class:`Tracer` records *spans* — named intervals on named tracks — the
way the vendor profilers (Vitis Analyzer, Intel VTune, XRT's OpenCL
profiling) record engine occupancy.  Two properties distinguish it from a
wall-clock tracer:

* **Deterministic clocks.**  Time is whatever the instrumented component
  says it is — engine cycles for the dataflow simulator, modelled seconds
  for the host schedule — never ``time.monotonic()``.  Two runs of the
  same simulation produce byte-identical traces, so traces can be golden
  artefacts.
* **Cheap when disabled.**  Every recording method starts with one
  attribute check; a disabled tracer threaded through the whole stack
  costs a branch per *event site*, not per cycle (the engine hoists even
  that out of its tick loop — the ``bench_engine.py`` overhead gate holds
  the compiled-in-but-disabled cost at <= 3%).

Tracks are free-form strings ("engine", "read_data", "k0.advect_u",
"rank3"); the Chrome/Perfetto exporter maps each distinct track to one
timeline row, shared by every span, instant and counter sample that names
it.  See :mod:`repro.observe.export` for the single-file JSON export and
``docs/observability.md`` for the span model.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import ConfigurationError

__all__ = ["Span", "Instant", "CounterSample", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One named interval on one track (a Chrome "complete" event)."""

    name: str
    track: str
    start: float
    end: float
    category: str = ""
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker (a chunk seam, a fast-forward veto)."""

    name: str
    track: str
    ts: float
    args: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterSample:
    """One sample of a numeric series (FIFO occupancy, ops in flight)."""

    name: str
    track: str
    ts: float
    values: dict[str, float] = field(default_factory=dict)


class Tracer:
    """Collects spans, instants and counter samples on deterministic time.

    Parameters
    ----------
    enabled:
        When False every recording method is a single-branch no-op; the
        instrumentation stays compiled in and can be flipped on without
        touching call sites.
    clock:
        Zero-argument callable returning the current time in the
        tracer's native unit (engine cycles, modelled seconds).  Only the
        context-manager :meth:`span` reads it; explicit
        :meth:`add_span`/:meth:`instant` calls carry their own times.
    """

    def __init__(self, *, enabled: bool = True,
                 clock: Callable[[], float] | None = None) -> None:
        self.enabled = enabled
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.counters: list[CounterSample] = []
        self._clock = clock
        self._base = 0.0

    # -- clocks and offsets --------------------------------------------------

    def use_clock(self, clock: Callable[[], float]) -> None:
        """Install the deterministic clock :meth:`span` reads."""
        self._clock = clock

    def now(self) -> float:
        """Current time per the installed clock (plus the active offset)."""
        if self._clock is None:
            raise ConfigurationError(
                "tracer has no clock installed; call use_clock() or pass "
                "explicit times to add_span()/instant()"
            )
        return self._clock() + self._base

    @contextmanager
    def shifted(self, delta: float) -> Iterator["Tracer"]:
        """Offset every time recorded inside the block by ``delta``.

        Used to place per-chunk engine runs (each starting at local cycle
        zero) end to end on one global cycle axis.
        """
        self._base += delta
        try:
            yield self
        finally:
            self._base -= delta

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, track: str, *, category: str = "",
             **args: Any) -> Iterator[None]:
        """Context manager: a span from clock-at-entry to clock-at-exit."""
        if not self.enabled:
            yield
            return
        start = self.now()
        try:
            yield
        finally:
            self.spans.append(Span(name=name, track=track, start=start,
                                   end=self.now(), category=category,
                                   args=dict(args)))

    def add_span(self, name: str, track: str, start: float, end: float, *,
                 category: str = "", **args: Any) -> None:
        """Record a span whose boundaries are already known."""
        if not self.enabled:
            return
        if end < start:
            raise ConfigurationError(
                f"span {name!r} on track {track!r} ends before it starts "
                f"({end} < {start})"
            )
        self.spans.append(Span(name=name, track=track,
                               start=start + self._base, end=end + self._base,
                               category=category, args=dict(args)))

    def instant(self, name: str, track: str, ts: float | None = None,
                **args: Any) -> None:
        """Record a zero-duration marker (``ts=None`` reads the clock)."""
        if not self.enabled:
            return
        when = self.now() if ts is None else ts + self._base
        self.instants.append(Instant(name=name, track=track, ts=when,
                                     args=dict(args)))

    def counter(self, name: str, track: str, ts: float,
                **values: float) -> None:
        """Record one sample of a counter series."""
        if not self.enabled:
            return
        self.counters.append(CounterSample(
            name=name, track=track, ts=ts + self._base,
            values={k: float(v) for k, v in values.items()}))

    # -- queries -------------------------------------------------------------

    def tracks(self) -> list[str]:
        """Distinct track names in first-recorded order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track)
        for inst in self.instants:
            seen.setdefault(inst.track)
        for sample in self.counters:
            seen.setdefault(sample.track)
        return list(seen)

    def spans_on(self, track: str) -> list[Span]:
        return [s for s in self.spans if s.track == track]

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.counters.clear()

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)
