"""Single-file Chrome/Perfetto export of the whole observability plane.

One JSON, loadable in ``ui.perfetto.dev`` or ``chrome://tracing``,
carrying every timeline the stack produces:

* the **engine process** — dataflow-stage activity spans, shift-buffer
  prime/steady phases, kernel chunk spans and fast-forward advances, all
  on the deterministic cycle clock (scaled to wall microseconds by the
  kernel clock when one is given);
* the **host process** — the command-queue schedule's transfer/compute
  events, re-using :func:`repro.runtime.trace_export.to_trace_events`
  so ``repro run --trace`` and ``repro trace`` emit identical shapes;
* the **fleet process** — the serving layer's job spans, one row per
  device lane (plus the admission queue), on the scheduler's
  modelled-seconds clock: job occupancy, device-loss/blip markers,
  reshard and half-open-probe instants.

Tracks map to Chrome thread rows: every span/instant/counter naming the
same track shares one row, and rows keep first-recorded order.
"""

from __future__ import annotations

import json
import pathlib
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.observe.trace import Tracer

if TYPE_CHECKING:
    from repro.runtime.simulator import ScheduleResult

__all__ = ["tracer_to_events", "build_trace", "write_trace", "ENGINE_PID",
           "SCHEDULE_PID", "SERVE_PID"]

#: pid of the engine (cycle-clock) process in the merged trace.
ENGINE_PID = 1
#: pid of the host-schedule (seconds-clock) process.
SCHEDULE_PID = 2
#: pid of the serving fleet (modelled-seconds clock), one row per lane.
SERVE_PID = 3


def tracer_to_events(tracer: Tracer, *, pid: int = ENGINE_PID,
                     process_name: str = "engine",
                     time_scale_us: float = 1.0) -> list[dict[str, Any]]:
    """Convert a tracer's records to Trace Event Format dicts.

    ``time_scale_us`` converts the tracer's native unit to microseconds:
    pass ``1e6 / clock_hz`` for a cycle-clock tracer to land on real
    time, or leave 1.0 to view one cycle as one microsecond.
    """
    if time_scale_us <= 0:
        raise ConfigurationError(
            f"time_scale_us must be positive, got {time_scale_us}"
        )
    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid,
        "args": {"name": process_name},
    }]
    tids = {track: tid for tid, track in enumerate(tracer.tracks())}
    for track, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": track},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": pid, "tid": tid,
            "args": {"sort_index": tid},
        })
    for span in tracer.spans:
        events.append({
            "name": span.name,
            "cat": span.category or span.track,
            "ph": "X",
            "pid": pid,
            "tid": tids[span.track],
            "ts": span.start * time_scale_us,
            "dur": span.duration * time_scale_us,
            "args": dict(span.args),
        })
    for inst in tracer.instants:
        events.append({
            "name": inst.name,
            "ph": "i",
            "s": "t",  # thread-scoped marker
            "pid": pid,
            "tid": tids[inst.track],
            "ts": inst.ts * time_scale_us,
            "args": dict(inst.args),
        })
    for sample in tracer.counters:
        events.append({
            "name": sample.name,
            "ph": "C",
            "pid": pid,
            "tid": tids[sample.track],
            "ts": sample.ts * time_scale_us,
            "args": dict(sample.values),
        })
    return events


def build_trace(tracer: Tracer | None = None,
                schedule: "ScheduleResult | None" = None, *,
                serve_tracer: Tracer | None = None,
                process_name: str = "advection",
                cycle_time_us: float = 1.0) -> dict[str, Any]:
    """Merge tracers and/or a schedule into one Chrome trace payload.

    The engine's spans land in pid 1 on the (scaled) cycle clock, the
    schedule's transfer/compute events in pid 2 on modelled seconds, and
    a fleet scheduler's ``serve_tracer`` in pid 3 with its
    modelled-seconds records scaled to microseconds — one thread row per
    device lane, so device loss, resharding and breaker probes line up
    against the jobs they displaced.
    """
    if tracer is None and schedule is None and serve_tracer is None:
        raise ConfigurationError(
            "build_trace needs a tracer, a schedule, or a serve tracer"
        )
    events: list[dict[str, Any]] = []
    if tracer is not None:
        events.extend(tracer_to_events(
            tracer, pid=ENGINE_PID, process_name=f"{process_name} [engine]",
            time_scale_us=cycle_time_us))
    if schedule is not None:
        from repro.runtime.trace_export import to_trace_events

        events.extend(to_trace_events(
            schedule, process_name=f"{process_name} [host]",
            pid=SCHEDULE_PID))
    if serve_tracer is not None:
        events.extend(tracer_to_events(
            serve_tracer, pid=SERVE_PID,
            process_name=f"{process_name} [fleet]",
            time_scale_us=1e6))  # modelled seconds -> microseconds
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(path: str | pathlib.Path, tracer: Tracer | None = None,
                schedule: "ScheduleResult | None" = None, *,
                serve_tracer: Tracer | None = None,
                process_name: str = "advection",
                cycle_time_us: float = 1.0) -> pathlib.Path:
    """Write the merged trace JSON; returns the path written."""
    path = pathlib.Path(path)
    payload = build_trace(tracer, schedule, serve_tracer=serve_tracer,
                          process_name=process_name,
                          cycle_time_us=cycle_time_us)
    path.write_text(json.dumps(payload))
    return path
