"""Unified observability plane: spans, metrics, ops-per-cycle accounting.

The paper's results are *measurements* — per-kernel ops-per-cycle against
a 62.875 theoretical, XRT/OpenCL profiles of transfer/compute overlap —
and this package gives the reproduction the same instruments:

* :class:`Tracer` — span-based tracing on deterministic clocks (engine
  cycles, modelled seconds), exported as one Chrome/Perfetto JSON by
  :mod:`repro.observe.export`;
* :class:`MetricRegistry` — labelled counters/gauges/histograms, cheap
  when disabled, with ``sample_every`` striding;
* :mod:`repro.observe.opscycle` — achieved-vs-theoretical roofline
  accounting from measured engine statistics.

``repro trace`` and ``repro metrics`` are the CLI front ends; the
``bench_engine.py`` gate holds the compiled-in-but-disabled overhead of
the whole plane at <= 3%.
"""

from repro.observe.export import build_trace, tracer_to_events, write_trace
from repro.observe.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricRegistry,
)
from repro.observe.opscycle import (
    OpsPerCycleReport,
    flops_from_stats,
    ops_per_cycle_report,
)
from repro.observe.trace import CounterSample, Instant, Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "Instant",
    "CounterSample",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "DEFAULT_BUCKETS",
    "OpsPerCycleReport",
    "flops_from_stats",
    "ops_per_cycle_report",
    "build_trace",
    "tracer_to_events",
    "write_trace",
]
