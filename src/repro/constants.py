"""Paper-level constants shared across the library.

These numbers come straight out of the CLUSTER 2021 paper (sections II-IV)
and the MONC model defaults.  They are centralised here so the FLOP
accounting, the cycle model and the experiment harness all agree on a single
source of truth.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

# ---------------------------------------------------------------------------
# Floating point operation accounting (paper section III).
#
# Each advection stage (one per field U, V, W) performs 21 double precision
# operations per grid cell:  6 for the x-line, 7 for the y-line (including
# the accumulate), 8 for the z-line (including the accumulate).  At the top
# of a column the U and V stages drop their second vertical term which saves
# 4 operations each, giving 63 - 8 = 55 operations for a column-top cell.
# ---------------------------------------------------------------------------

#: Double precision operations per field per interior grid cell.
OPS_PER_FIELD: int = 21

#: Operations in the x-direction line of one field update.
OPS_X_LINE: int = 6
#: Operations in the y-direction line of one field update (incl. accumulate).
OPS_Y_LINE: int = 7
#: Operations in the z-direction line of one field update (incl. accumulate).
OPS_Z_LINE: int = 8
#: Operations saved per U/V stage at the top of a column (single vertical term).
OPS_TOP_SAVING_PER_FIELD: int = 4

#: Total operations per interior grid cell (three fields).
OPS_PER_CELL: int = 3 * OPS_PER_FIELD  # 63
#: Total operations for a column-top grid cell.
OPS_PER_TOP_CELL: int = OPS_PER_CELL - 2 * OPS_TOP_SAVING_PER_FIELD  # 55

#: MONC default column height used throughout the paper's evaluation.
DEFAULT_COLUMN_HEIGHT: int = 64

#: Bytes per double precision value.
BYTES_PER_WORD: int = 8

#: Number of input fields streamed to the kernel (u, v, w).
NUM_INPUT_FIELDS: int = 3
#: Number of source-term fields streamed back (su, sv, sw).
NUM_OUTPUT_FIELDS: int = 3

#: Width of the packed external-memory access used on the Alveo (bits).
XILINX_MEM_ACCESS_BITS: int = 512

# ---------------------------------------------------------------------------
# Clock frequencies reported in the paper (MHz).
# ---------------------------------------------------------------------------

#: Default kernel clock on the Alveo U280 (any kernel count, per the paper).
ALVEO_CLOCK_MHZ: float = 300.0
#: Stratix 10 clock with a single kernel instance.
STRATIX_SINGLE_KERNEL_CLOCK_MHZ: float = 398.0
#: Stratix 10 clock once the design is scaled to five kernels.
STRATIX_MULTI_KERNEL_CLOCK_MHZ: float = 250.0

#: Kernels that fit on each device in the paper's multi-kernel evaluation.
ALVEO_MAX_KERNELS: int = 6
STRATIX_MAX_KERNELS: int = 5

# ---------------------------------------------------------------------------
# Problem sizes used in the paper's evaluation (grid cells).
# The paper quotes 1M/4M/16M/67M/268M/536M which are x*y*64 grids with
# square horizontal extents: 128^2, 256^2, 512^2, 1024^2, 2048^2, 2896^2.
# ---------------------------------------------------------------------------

#: Grid-cell counts for Table II and Figures 5-8 (approximate paper labels).
PAPER_GRID_LABELS: dict[str, int] = {
    "1M": 128 * 128 * 64,
    "4M": 256 * 256 * 64,
    "16M": 512 * 512 * 64,
    "67M": 1024 * 1024 * 64,
    "268M": 2048 * 2048 * 64,
    "536M": 2896 * 2896 * 64,
}

#: PCIe payload for a 16M-cell problem quoted in the paper (~800 MB):
#: 6 fields x 8 bytes x 16.7M cells.
PAPER_16M_TRANSFER_BYTES: int = (
    (NUM_INPUT_FIELDS + NUM_OUTPUT_FIELDS) * BYTES_PER_WORD * PAPER_GRID_LABELS["16M"]
)

# ---------------------------------------------------------------------------
# Memory capacities (bytes).
# ---------------------------------------------------------------------------

GIB: int = 1024**3
MIB: int = 1024**2

ALVEO_HBM2_BYTES: int = 8 * GIB
ALVEO_DDR_BYTES: int = 32 * GIB
STRATIX_DDR_BYTES: int = 32 * GIB
V100_HBM2_BYTES: int = 16 * GIB

# ---------------------------------------------------------------------------
# Average operations per cycle for a full column (the paper's "theoretical
# performance" metric): one column-top cell per DEFAULT_COLUMN_HEIGHT cells.
# (63 * 63 + 55) / 64 = 62.875 -> 18.86 GFLOPS @ 300 MHz, 25.02 @ 398 MHz.
#
# The paper quotes the single number 62.875, but it is a *derived* quantity:
# a function of the column height and of the kernel's per-cell operation
# model.  Non-default column heights (the scenario suite's tall/flat grids)
# and non-advection kernels (diffusion, buoyancy smoothing) plug their own
# values into the same formula.
# ---------------------------------------------------------------------------


def derived_ops_per_cycle(column_height: int = DEFAULT_COLUMN_HEIGHT, *,
                          ops_per_cell: int = OPS_PER_CELL,
                          ops_per_top_cell: int = OPS_PER_TOP_CELL) -> float:
    """Average ops issued per clock cycle for a column of ``column_height``.

    A streaming stencil pipeline consumes one grid cell per cycle;
    interior cells need ``ops_per_cell`` operations and the single
    column-top cell only ``ops_per_top_cell``.  With the advection
    defaults this reproduces the paper's 62.875 at the MONC default
    column height of 64 — but it is a function, not a constant: vary the
    height or the operation model and the theoretical peak moves with it.
    """
    if column_height < 2:
        raise ConfigurationError(
            f"column height must be >= 2, got {column_height}")
    if ops_per_cell < 1 or ops_per_top_cell < 1:
        raise ConfigurationError(
            f"per-cell operation counts must be >= 1, got "
            f"{ops_per_cell}/{ops_per_top_cell}"
        )
    interior = column_height - 1
    return (interior * ops_per_cell + ops_per_top_cell) / column_height


def average_ops_per_cycle(column_height: int = DEFAULT_COLUMN_HEIGHT) -> float:
    """The advection pipeline's derived ops/cycle (the paper's 62.875).

    Kept as the historical entry point; identical to
    :func:`derived_ops_per_cycle` with the advection 63/55 operation
    model.
    """
    return derived_ops_per_cycle(column_height)
