"""The FPGA shift-buffer backend: today's U280 / Stratix 10 path.

This backend is a *routing* layer, not a re-implementation: it wraps the
exact objects every existing flow already uses — catalog lookup via
:func:`repro.hardware.devices.device_by_name`, the derived
:class:`~repro.tune.space.ParameterSpace`, the lint-gated
:class:`~repro.tune.cost.CostModel`, the Fig. 2 structural graph from
:func:`repro.lint.builders.build_structural_graph`, and
:func:`repro.lint.runner.lint_kernel` — so routing U280/Stratix 10 work
through the backend interface is bit-identical to calling those objects
directly (the golden fixtures pin this).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.backend.base import Backend, register_backend
from repro.constants import average_ops_per_cycle
from repro.core.grid import Grid
from repro.errors import BackendError, ConfigurationError
from repro.hardware.device import FPGADevice
from repro.hardware.devices import device_by_name
from repro.kernel.config import KernelConfig
from repro.lint.builders import build_structural_graph
from repro.lint.diagnostics import LintReport
from repro.lint.runner import lint_kernel
from repro.tune.cost import CostModel
from repro.tune.space import ParameterSpace, TunePoint

__all__ = ["FpgaShiftBufferBackend", "FPGA_SHIFTBUFFER"]


class FpgaShiftBufferBackend(Backend):
    """Shift-buffer dataflow FPGAs (Alveo U280, Stratix 10 GX 2800)."""

    id = "fpga_shiftbuffer"
    title = "FPGA shift-buffer dataflow (U280 / Stratix 10)"
    default_device = "u280"

    def device_names(self) -> tuple[str, ...]:
        return ("u280", "stratix10")

    def resolve_device(self, name: "str | FPGADevice | None" = None
                       ) -> FPGADevice:
        if isinstance(name, FPGADevice):
            return name
        try:
            device = device_by_name(name or self.default_device)
        except ConfigurationError as error:
            raise BackendError(str(error)) from error
        if not isinstance(device, FPGADevice):
            raise BackendError(
                f"device {name!r} is not an FPGA; the {self.id} backend "
                f"targets {', '.join(self.device_names())}"
            )
        return device

    def parameter_space(self, device: Any, grid: Grid, *,
                        wide_precision: bool = False) -> ParameterSpace:
        return ParameterSpace.derive(device, grid,
                                     wide_precision=wide_precision)

    def cost_model(self, device: Any, grid: Grid, *,
                   flops_scale: float = 1.0) -> CostModel:
        return CostModel(device, grid, flops_scale=flops_scale)

    def point_from_dict(self, data: dict) -> TunePoint:
        return TunePoint(**data)

    def structural_graph(self, grid: Grid, *, point: Any | None = None,
                         read_ii: int = 1) -> Any:
        config = (point.config(grid) if point is not None
                  else KernelConfig(grid=grid))
        return build_structural_graph(config, read_ii=read_ii)

    def lint(self, grid: Grid, *, device: Any | None = None,
             num_kernels: int | None = None, select: Any = None,
             ignore: Any = None, subject: str = "") -> LintReport:
        resolved = self.resolve_device(device)
        config = KernelConfig(grid=grid)
        return lint_kernel(config, resolved, num_kernels,
                           select=select, ignore=ignore, subject=subject)

    def roofline(self, column_height: int = 64) -> dict:
        """Replica-scaled shift-buffer peak for the default device.

        Each replica retires one cell per cycle at the degraded clock, so
        the attainable rate is ``replicas x clock x avg ops/cell`` — the
        paper's Table I arithmetic, with the replica count taken from the
        fabric fit at the default chunk width.
        """
        device = self.resolve_device()
        grid = Grid(64, 64, column_height)
        config = KernelConfig(grid=grid)
        replicas = max(1, device.max_kernels(config))
        clock_mhz = device.clock.frequency_mhz(replicas)
        ops = average_ops_per_cycle(column_height)
        cells_per_second = replicas * clock_mhz * 1e6
        return {
            "backend": self.id,
            "device": device.name,
            "column_height": column_height,
            "replicas": replicas,
            "clock_mhz": clock_mhz,
            "ops_per_cell": ops,
            "cells_per_second": cells_per_second,
            "attainable_gflops": cells_per_second * ops / 1e9,
            "feed_bound": False,
        }

    def scenario_candidates(self, device: Any,
                            grid: Grid) -> Iterator[TunePoint]:
        space = ParameterSpace.derive(device, grid)
        depth = 4 if 4 in space.stream_depths else space.stream_depths[0]
        x_chunks = 16 if 16 in space.x_chunks else space.x_chunks[0]
        for width in dict.fromkeys(
                (space.chunk_widths[-1], space.chunk_widths[0])):
            for kernels in reversed(space.num_kernels):
                yield TunePoint(
                    chunk_width=width, num_kernels=kernels,
                    stream_depth=depth, precision="float64",
                    memory=space.memories[0], x_chunks=x_chunks,
                    overlapped=True,
                )


FPGA_SHIFTBUFFER = register_backend(FpgaShiftBufferBackend())
