"""Shared mixed-radix design-space machinery for backend tuner spaces.

Every backend exposes a parameter space as a cross product of per-axis
candidate tuples.  :class:`AxisSpace` implements the space algebra once
— deterministic enumeration, O(1) mixed-radix indexing, single-axis
neighbourhoods for local search — in terms of two hooks a concrete
space provides:

* :meth:`AxisSpace.axes` — axis name -> candidate values, in the point
  type's field order, and
* :meth:`AxisSpace._make_point` — construct a point from axis keywords.

The tuner's search strategies are written against exactly this surface
(``size``, ``points``, ``point_at``, ``neighbours`` and ``point.key()``),
so any backend whose space derives from :class:`AxisSpace` is searchable
by every registered strategy with no strategy changes.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Iterator

from repro.errors import TuneError

__all__ = ["AxisSpace"]


class AxisSpace:
    """Mixed-radix cross product of named candidate axes."""

    def axes(self) -> dict[str, tuple]:
        """Axis name -> candidate values, in point field order."""
        raise NotImplementedError

    def _make_point(self, **values: Any) -> Any:
        """Construct a point of this space from axis keywords."""
        raise NotImplementedError

    def validate_axes(self) -> None:
        """Reject empty or duplicated axes (call from ``__post_init__``)."""
        for name, axis in self._axis_fields().items():
            if not axis:
                raise TuneError(f"parameter axis {name!r} is empty")
            if len(set(axis)) != len(axis):
                raise TuneError(f"parameter axis {name!r} has duplicates")

    def _axis_fields(self) -> dict[str, tuple]:
        """Axis storage-field name -> values, for validation messages.

        Defaults to :meth:`axes`; spaces whose dataclass fields are named
        differently from their point fields (plural vs singular) override
        this so error messages cite the declared field.
        """
        return self.axes()

    @property
    def size(self) -> int:
        total = 1
        for axis in self.axes().values():
            total *= len(axis)
        return total

    def points(self) -> Iterator[Any]:
        """Every point, in deterministic lexicographic axis order."""
        names = tuple(self.axes())
        for values in product(*self.axes().values()):
            yield self._make_point(**dict(zip(names, values)))

    def point_at(self, index: int) -> Any:
        """The ``index``-th point of :meth:`points` without materialising.

        Treats the space as a mixed-radix number, most-significant axis
        first — the same order ``points()`` yields.
        """
        if not 0 <= index < self.size:
            raise TuneError(
                f"point index {index} outside space of {self.size}"
            )
        axes = self.axes()
        chosen: dict[str, Any] = {}
        for name in reversed(tuple(axes)):
            axis = axes[name]
            index, digit = divmod(index, len(axis))
            chosen[name] = axis[digit]
        return self._make_point(**chosen)

    def neighbours(self, point: Any) -> list[Any]:
        """Points one step away along a single axis (for local search)."""
        out: list[Any] = []
        values = point.to_dict()
        for name, axis in self.axes().items():
            try:
                at = axis.index(values[name])
            except ValueError:
                raise TuneError(
                    f"point {point.key()} is not on the space's "
                    f"{name} axis {axis}"
                ) from None
            for step in (-1, 1):
                if 0 <= at + step < len(axis):
                    moved = dict(values)
                    moved[name] = axis[at + step]
                    out.append(self._make_point(**moved))
        return out

    def to_dict(self) -> dict:
        return {name: list(axis) for name, axis in self.axes().items()}
