"""Pluggable hardware backends.

``repro.backend`` is the seam between "what the toolchain does" (lint,
analyze, tune, simulate, serve, scenarios) and "what machine it targets".
Each registered :class:`~repro.backend.base.Backend` supplies a device
catalog, a tuner parameter space over the shared
:class:`~repro.backend.space.AxisSpace` algebra, a lint-gated cost
model, structural-graph lowering, a lint entry point, a roofline, and a
deterministic scenario-pricing policy.

Built-ins:

``fpga_shiftbuffer``
    The paper's U280 / Stratix 10 shift-buffer dataflow path, wrapped
    bit-identically (the default backend everywhere).
``versal_aie``
    The Versal AI-engine array of the paper's §V outlook and Brown's
    follow-on paper: a VLIW-vector / stream-interconnect machine with
    its own ``BK`` lint family and tuner axes.

This module is also the canonical home of
:class:`~repro.hardware.versal.AIEngineProjection`: the §V roofline
projection is folded into the ``versal_aie`` backend as a consistency
cross-check, so import it from here (the ``repro.hardware.versal``
location remains as a deprecated alias).
"""

from __future__ import annotations

from repro.backend.base import (
    DEFAULT_BACKEND,
    Backend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.backend.space import AxisSpace
from repro.errors import BackendError
from repro.hardware.versal import VERSAL_VC1902, AIEngineProjection

__all__ = [
    "AIEngineProjection",
    "AxisSpace",
    "Backend",
    "BackendError",
    "DEFAULT_BACKEND",
    "VERSAL_VC1902",
    "backend_names",
    "get_backend",
    "register_backend",
]
