"""The hardware-backend abstraction and its registry.

A :class:`Backend` bundles everything the toolchain needs to target one
*family* of machines: a device catalog, a tuner parameter space, a
lint-gated cost model, structural-graph lowering for the static
verifier, a lint entry point, a roofline summary, and a deterministic
scenario-pricing policy.  The FPGA shift-buffer path the paper describes
(`fpga_shiftbuffer`, Alveo U280 + Stratix 10) and the Versal AI-engine
array from Brown's follow-on paper (`versal_aie`) are both registered
backends; ``repro tune/lint/analyze/simulate/scenarios --backend ...``
dispatch through this interface and nothing else.

Built-in backends are imported lazily on first lookup so that importing
:mod:`repro.backend` (e.g. from :mod:`repro.tune.space`, which uses the
shared :class:`~repro.backend.space.AxisSpace`) never drags in the tune
package and cannot create an import cycle.
"""

from __future__ import annotations

import abc
from importlib import import_module
from typing import TYPE_CHECKING, Any, ClassVar, Iterator

from repro.errors import BackendError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.grid import Grid
    from repro.dataflow.graph import DataflowGraph
    from repro.lint.diagnostics import LintReport
    from repro.scenarios.base import Scenario
    from repro.tune.cost import Evaluation

__all__ = [
    "Backend",
    "DEFAULT_BACKEND",
    "register_backend",
    "get_backend",
    "backend_names",
]

#: Backend used whenever a CLI or API caller does not name one; wraps
#: today's U280/Stratix 10 shift-buffer path bit-identically.
DEFAULT_BACKEND = "fpga_shiftbuffer"

_REGISTRY: dict[str, "Backend"] = {}

#: Modules whose import registers the built-in backends.
_BUILTIN_BACKEND_MODULES = (
    "repro.backend.fpga_shiftbuffer",
    "repro.backend.versal_aie",
)

_builtins_loaded = False


class Backend(abc.ABC):
    """One hardware family the toolchain can target end to end."""

    #: Stable registry id (``--backend`` value, cache scope component).
    id: ClassVar[str]
    #: Human-readable family title for reports.
    title: ClassVar[str]
    #: Device resolved when the caller names none.
    default_device: ClassVar[str]

    # -- device catalog -------------------------------------------------
    @abc.abstractmethod
    def device_names(self) -> tuple[str, ...]:
        """Canonical catalog names this backend can resolve."""

    @abc.abstractmethod
    def resolve_device(self, name: str | None = None) -> Any:
        """Resolve ``name`` (or the backend default) to a device model.

        Raises :class:`BackendError` when the name belongs to a different
        family or is unknown.
        """

    # -- tuner surface --------------------------------------------------
    @abc.abstractmethod
    def parameter_space(self, device: Any, grid: "Grid", *,
                        wide_precision: bool = False) -> Any:
        """The tuner design space for ``device`` at ``grid``.

        The returned object exposes the :class:`repro.backend.space.
        AxisSpace` surface (``size``/``points``/``point_at``/
        ``neighbours``) so every search strategy works unchanged.
        """

    @abc.abstractmethod
    def cost_model(self, device: Any, grid: "Grid", *,
                   flops_scale: float = 1.0) -> Any:
        """A lint-gated analytic cost model with ``evaluate(point)``."""

    @abc.abstractmethod
    def point_from_dict(self, data: dict) -> Any:
        """Rebuild a design point from its ``to_dict`` form (cache I/O)."""

    # -- lowering and lint ----------------------------------------------
    @abc.abstractmethod
    def structural_graph(self, grid: "Grid", *, point: Any | None = None,
                         read_ii: int = 1) -> "DataflowGraph":
        """Lower a deployment to a dataflow graph for ``repro analyze``."""

    @abc.abstractmethod
    def lint(self, grid: "Grid", *, device: Any | None = None,
             num_kernels: int | None = None, select: Any = None,
             ignore: Any = None, subject: str = "") -> "LintReport":
        """Run this backend's lint family over a canonical deployment."""

    # -- accounting ------------------------------------------------------
    @abc.abstractmethod
    def roofline(self, column_height: int = 64) -> dict:
        """Analytic peak/attainable summary for the default device."""

    @abc.abstractmethod
    def scenario_candidates(self, device: Any,
                            grid: "Grid") -> Iterator[Any]:
        """Deterministic candidate deployments, most aggressive first.

        :meth:`price_scenario` walks these in order and serves the first
        feasible one, so the sequence must degrade gracefully (fewer
        replicas / narrower vectors) rather than stop at the peak point.
        """

    def price_scenario(self, scenario: "Scenario", *,
                       device: Any | None = None) -> "Evaluation":
        """Price ``scenario`` on this backend: the first feasible
        candidate deployment on the scenario's small grid, costed with
        the scenario's ``flops_scale``.

        Raises :class:`BackendError` when no candidate is feasible.
        """
        resolved = device if device is not None else self.resolve_device()
        grid = scenario.grids.small_grid()
        model = self.cost_model(resolved, grid,
                                flops_scale=scenario.flops_scale)
        rejects: list[str] = []
        for point in self.scenario_candidates(resolved, grid):
            evaluation = model.evaluate(point)
            if evaluation.feasible:
                return evaluation
            rejects.extend(evaluation.reject_codes)
        raise BackendError(
            f"backend {self.id!r} has no feasible deployment for "
            f"scenario {scenario.name!r} on {grid.nx}x{grid.ny}x{grid.nz} "
            f"(rejects: {sorted(set(rejects)) or 'none'})"
        )


def register_backend(backend: Backend) -> Backend:
    """Add ``backend`` to the registry (ids must be unique)."""
    if backend.id in _REGISTRY:
        raise BackendError(f"backend {backend.id!r} is already registered")
    _REGISTRY[backend.id] = backend
    return backend


def _load_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for module in _BUILTIN_BACKEND_MODULES:
        import_module(module)


def backend_names() -> tuple[str, ...]:
    """Sorted ids of every registered backend."""
    _load_builtins()
    return tuple(sorted(_REGISTRY))


def get_backend(name: str | None = None) -> Backend:
    """Look up a backend by id (``None`` -> the default backend)."""
    _load_builtins()
    wanted = name or DEFAULT_BACKEND
    try:
        return _REGISTRY[wanted]
    except KeyError:
        raise BackendError(
            f"unknown backend {wanted!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None
