"""The Versal AI-engine array backend (the paper's §V outlook, realised).

Brown's follow-on Versal paper maps the PW advection kernel onto the
AI-engine array of a VC1902: VLIW vector cores clocked at ~1 GHz, eight
single-precision FLOPs per cycle each, fed by PLIO streams from the
reconfigurable fabric and double-buffered through memory tiles.  There
is no II=1 shift buffer here — the machine is *feed-bound*: the paper's
prediction that "keeping the engines fed with data will be the key" is
exactly what this backend's cost model and ``BK`` lint family encode.

The model
---------
The array is organised as *tile columns*.  Each active column receives
the three wind fields over ``STREAMS_PER_COLUMN`` PLIO streams (4 bytes
per stream per cycle), holds a working set of grid columns in its
memory tile (single- or double-buffered), and retires cells at the
lesser of its feed rate and its vector compute rate:

* feed:     ``streams x 4 B/cycle / 12 B/cell`` -> 1 cell/cycle/column
* compute:  ``engines/column x lanes / (avg ops per cell)`` cells/cycle

Double buffering overlaps load and compute (``min``); single buffering
serialises them (harmonic sum).  The whole-device numbers reproduce the
:class:`~repro.hardware.versal.AIEngineProjection` roofline exactly —
the projection is folded into :meth:`VersalAieBackend.roofline` as a
consistency cross-check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Iterator

from repro.backend.base import Backend, register_backend
from repro.backend.space import AxisSpace
from repro.constants import average_ops_per_cycle
from repro.core.grid import Grid
from repro.dataflow.graph import DataflowGraph
from repro.errors import BackendError, TuneError
from repro.hardware.versal import (
    VERSAL_VC1902,
    AIEngineProjection,
)
from repro.lint.diagnostics import LintReport
from repro.lint.registry import LintContext
from repro.lint.runner import run_lint
from repro.lint.spec import SpecStage
from repro.tune.cost import ROUND_DIGITS, Evaluation

__all__ = [
    "AIEngineProjection",
    "VERSAL_VC1902",
    "VersalDevice",
    "VERSAL_VC1902_DEVICE",
    "VersalPoint",
    "VersalSpace",
    "VersalDeployment",
    "VersalCostModel",
    "VersalAieBackend",
    "VERSAL_AIE",
    "build_versal_graph",
]

#: Single-precision bytes per value on the AI-engine datapath.
WORD_BYTES: int = 4

#: Wind fields streamed into the array per cell.
FIELDS: int = 3

#: PLIO streams feeding one tile column (one per wind field).
STREAMS_PER_COLUMN: int = 3

#: Bytes of input per grid cell (three float32 wind samples).
BYTES_PER_CELL: int = FIELDS * WORD_BYTES

#: Grid columns a tile keeps resident per vector lane (the stencil needs
#: the current column plus west/centre/east neighbours in flight).
COLUMNS_HELD: int = 4

#: Host link for end-to-end pricing (PCIe gen3 x16 effective).
HOST_LINK_BYTES_PER_SECOND: float = 16e9

#: Host-side invocation setup (driver call, PLIO DMA descriptors).
SETUP_SECONDS: float = 40e-6

_BUFFERINGS: tuple[str, ...] = ("single", "double")


def _rounded(value: float) -> float:
    return round(float(value), ROUND_DIGITS)


@dataclass(frozen=True)
class VersalDevice:
    """One AI-engine array device (geometry, clocks, feeds, power)."""

    name: str
    columns: int
    rows: int
    clock_ghz: float
    vector_lanes_max: int
    plio_streams: int
    plio_bytes_per_cycle: int
    tile_local_bytes: int
    tile_neighbour_bytes: int
    static_watts: float
    engine_watts: float
    stream_watts: float

    #: Device family tag (parallels ``FPGADevice.family``).
    family: str = "versal"

    @property
    def engines(self) -> int:
        return self.columns * self.rows

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def fabric_feed_bandwidth(self) -> float:
        """Bytes/s every PLIO stream together can push into the array."""
        return self.plio_streams * self.plio_bytes_per_cycle * self.clock_hz

    @property
    def tile_usable_bytes(self) -> int:
        """Working-set budget: local tile plus one borrowed neighbour."""
        return self.tile_local_bytes + self.tile_neighbour_bytes

    def projection(self) -> AIEngineProjection:
        """The §V roofline this device's geometry implies."""
        return AIEngineProjection(
            name=f"{self.name} (projection)",
            engines=self.engines,
            clock_ghz=self.clock_ghz,
            flops_per_engine_cycle=self.vector_lanes_max,
            fabric_feed_bandwidth=self.fabric_feed_bandwidth,
        )


#: The VC1902 the paper's §V describes: 400 engines (50 columns x 8
#: rows) at 1 GHz, 8 SP FLOPs/cycle, 150 PLIO streams of 4 B/cycle
#: (600 GB/s aggregate feed), 32 KB local + 32 KB neighbour tile memory.
VERSAL_VC1902_DEVICE = VersalDevice(
    name="Xilinx Versal VC1902",
    columns=50,
    rows=8,
    clock_ghz=1.0,
    vector_lanes_max=8,
    plio_streams=150,
    plio_bytes_per_cycle=4,
    tile_local_bytes=32768,
    tile_neighbour_bytes=32768,
    static_watts=45.0,
    engine_watts=0.12,
    stream_watts=0.02,
)

_CATALOG: dict[str, VersalDevice] = {
    "vc1902": VERSAL_VC1902_DEVICE,
    "versal": VERSAL_VC1902_DEVICE,
}


@dataclass(frozen=True, order=True)
class VersalPoint:
    """One candidate AI-engine deployment (hashable, totally ordered)."""

    tile_columns: int
    engines_per_column: int
    vector_lanes: int
    buffering: str

    def __post_init__(self) -> None:
        if self.buffering not in _BUFFERINGS:
            raise TuneError(
                f"unknown buffering {self.buffering!r}; known: "
                f"{sorted(_BUFFERINGS)}"
            )

    @property
    def num_kernels(self) -> int:
        """Replica count analogue: active tile columns (sort-key/CLI)."""
        return self.tile_columns

    @property
    def engines(self) -> int:
        return self.tile_columns * self.engines_per_column

    @property
    def double_buffered(self) -> bool:
        return self.buffering == "double"

    def clock_mhz(self, device: VersalDevice) -> float:
        """AI engines close timing at the array clock regardless of
        replication — unlike the FPGA fabric's degradation model."""
        return device.clock_ghz * 1e3

    def key(self) -> str:
        return (
            f"tc{self.tile_columns}-ec{self.engines_per_column}"
            f"-vl{self.vector_lanes}-{self.buffering}"
        )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class VersalSpace(AxisSpace):
    """Tuner axes: tile columns x engines/column x lanes x buffering."""

    tile_columns: tuple[int, ...]
    engines_per_column: tuple[int, ...]
    vector_lanes: tuple[int, ...]
    buffering: tuple[str, ...]

    def __post_init__(self) -> None:
        self.validate_axes()

    def axes(self) -> dict[str, tuple]:
        return {
            "tile_columns": self.tile_columns,
            "engines_per_column": self.engines_per_column,
            "vector_lanes": self.vector_lanes,
            "buffering": self.buffering,
        }

    def _make_point(self, **values: object) -> VersalPoint:
        return VersalPoint(**values)  # type: ignore[arg-type]

    @classmethod
    def derive(cls, device: VersalDevice, grid: Grid) -> "VersalSpace":
        """Per-device axes (``grid`` only gates nothing today — tile
        memory fit is the lint gate's job, so infeasible corners stay
        visible to the search as rejections, mirroring the FPGA space).
        """
        del grid
        columns = tuple(
            c for c in (1, 2, 4, 5, 10, 20, 25, 40, 50)
            if c <= device.columns
        )
        engines = tuple(
            e for e in (1, 2, 4, 8) if e <= device.rows
        )
        lanes = tuple(
            v for v in (2, 4, 8) if v <= device.vector_lanes_max
        )
        return cls(
            tile_columns=columns,
            engines_per_column=engines,
            vector_lanes=lanes,
            buffering=_BUFFERINGS,
        )


@dataclass(frozen=True)
class VersalDeployment:
    """A (device, point, grid) triple the ``BK`` lint family inspects."""

    device: VersalDevice
    point: VersalPoint
    grid: Grid

    @property
    def streams_needed(self) -> int:
        return STREAMS_PER_COLUMN * self.point.tile_columns

    @property
    def buffers(self) -> int:
        return 2 if self.point.double_buffered else 1

    @property
    def tile_bytes_needed(self) -> int:
        """Memory-tile working set: buffered wind fields for the columns
        each vector lane keeps in flight."""
        return (self.buffers * FIELDS * WORD_BYTES * self.grid.nz
                * COLUMNS_HELD * self.point.vector_lanes)

    def to_dict(self) -> dict:
        return {
            "device": self.device.name,
            "point": self.point.to_dict(),
            "grid": {"nx": self.grid.nx, "ny": self.grid.ny,
                     "nz": self.grid.nz},
            "streams_needed": self.streams_needed,
            "tile_bytes_needed": self.tile_bytes_needed,
            "tile_usable_bytes": self.device.tile_usable_bytes,
        }


def build_versal_graph(grid: Grid, point: VersalPoint, *,
                       name: str = "versal-aie") -> DataflowGraph:
    """One representative tile column as a dataflow graph.

    ``plio_{u,v,w} -> mem_tile_in -> engine_1..engine_N -> mem_tile_out
    -> noc_out``: the PLIO feeds land in the input memory tile, the
    column's engines form a chain over the streaming interconnect, and
    results drain through the output memory tile to the NoC.  Stages
    declare no per-cell FLOPs (the AC family's 63/55 cross-check is an
    FPGA-graph concern); depths model the 4-deep stream switches.
    """
    graph = DataflowGraph(name)
    depth = 4
    mem_in = graph.add(SpecStage(
        "mem_tile_in", inputs=("u", "v", "w"), outputs=("out",),
        latency=2,
    ))
    for field_name in ("u", "v", "w"):
        plio = graph.add(SpecStage(
            f"plio_{field_name}", outputs=("out",), latency=1,
        ))
        graph.connect(plio, "out", mem_in, field_name, depth=depth)
    upstream, upstream_port = mem_in, "out"
    for index in range(point.engines_per_column):
        engine = graph.add(SpecStage(
            f"engine_{index + 1}", inputs=("in",), outputs=("out",),
            latency=8,
        ))
        graph.connect(upstream, upstream_port, engine, "in", depth=depth)
        upstream, upstream_port = engine, "out"
    mem_out = graph.add(SpecStage(
        "mem_tile_out", inputs=("in",), outputs=("out",), latency=2,
    ))
    graph.connect(upstream, upstream_port, mem_out, "in", depth=depth)
    sink = graph.add(SpecStage("noc_out", inputs=("in",)))
    graph.connect(mem_out, "out", sink, "in", depth=depth)
    return graph


class VersalCostModel:
    """Lint-gated analytic pricing of Versal points on one device."""

    def __init__(self, device: VersalDevice, grid: Grid, *,
                 flops_scale: float = 1.0) -> None:
        if not flops_scale > 0:
            raise TuneError(f"flops_scale must be > 0, got {flops_scale}")
        self.device = device
        self.grid = grid
        self.flops_scale = flops_scale
        #: Average operations per cell over a grid column, re-scaled for
        #: scenario kernels exactly as the FPGA cost model does.
        self.ops_per_cell = average_ops_per_cycle(grid.nz) * flops_scale
        self._flops = round(grid.num_cells * self.ops_per_cell)

    # -- feasibility ---------------------------------------------------

    def deployment(self, point: VersalPoint) -> VersalDeployment:
        return VersalDeployment(device=self.device, point=point,
                                grid=self.grid)

    def lint_gate(self, point: VersalPoint) -> tuple[str, ...]:
        """Error codes the ``BK`` family raises for this point."""
        report = run_lint(
            LintContext(backend_deployment=self.deployment(point)),
            subject=f"{self.device.name}:{point.key()}",
        )
        return tuple(sorted({d.code for d in report.errors}))

    # -- rates ---------------------------------------------------------

    def column_feed_cells_per_second(self) -> float:
        """Cells/s one tile column's PLIO streams can deliver."""
        return (STREAMS_PER_COLUMN * self.device.plio_bytes_per_cycle
                * self.device.clock_hz / BYTES_PER_CELL)

    def column_compute_cells_per_second(self, point: VersalPoint) -> float:
        """Cells/s one column's engines retire if feed were free."""
        flops_per_cycle = point.engines_per_column * point.vector_lanes
        return flops_per_cycle * self.device.clock_hz / self.ops_per_cell

    def cells_per_second(self, point: VersalPoint) -> float:
        feed = self.column_feed_cells_per_second()
        compute = self.column_compute_cells_per_second(point)
        if point.double_buffered:
            # Memory-tile ping-pong overlaps load with compute.
            column = min(feed, compute)
        else:
            # Single buffer serialises the phases (harmonic sum).
            column = 1.0 / (1.0 / feed + 1.0 / compute)
        return point.tile_columns * column

    def feed_bound(self, point: VersalPoint) -> bool:
        return (self.column_compute_cells_per_second(point)
                >= self.column_feed_cells_per_second())

    # -- pricing -------------------------------------------------------

    def evaluate(self, point: VersalPoint) -> Evaluation:
        codes = self.lint_gate(point)
        if codes:
            return Evaluation(
                point=point, feasible=False, reject_codes=codes,
                reject_reason=f"rejected by lint gate ({', '.join(codes)})",
            )
        cells_per_second = self.cells_per_second(point)
        kernel_seconds = self.grid.num_cells / cells_per_second
        # Three float32 wind fields in, three source fields out.
        host_bytes = 2 * FIELDS * WORD_BYTES * self.grid.num_cells
        transfer_seconds = host_bytes / HOST_LINK_BYTES_PER_SECOND
        runtime_seconds = (max(kernel_seconds, transfer_seconds)
                           + SETUP_SECONDS)
        flops = self.grid.num_cells * self.ops_per_cell
        deployment = self.deployment(point)
        by_axis = {
            "engines": point.engines / self.device.engines,
            "plio": deployment.streams_needed / self.device.plio_streams,
            "tile_memory": (deployment.tile_bytes_needed
                            / self.device.tile_usable_bytes),
        }
        watts = (self.device.static_watts
                 + self.device.engine_watts * point.engines
                 + self.device.stream_watts * deployment.streams_needed)
        end_to_end = flops / runtime_seconds / 1e9
        return Evaluation(
            point=point,
            feasible=True,
            kernel_gflops=cells_per_second * self.ops_per_cell / 1e9,
            end_to_end_gflops=end_to_end,
            gflops_per_watt=end_to_end / watts,
            kernel_seconds=kernel_seconds,
            runtime_seconds=runtime_seconds,
            transfer_seconds=transfer_seconds,
            watts=watts,
            utilisation=max(by_axis.values()),
            utilisation_by_axis=by_axis,
            clock_mhz=point.clock_mhz(self.device),
            memory_bound=self.feed_bound(point),
            analytic_cycles=math.ceil(kernel_seconds * self.device.clock_hz),
            static_cycles=0,
        )

    def describe(self) -> dict[str, Any]:
        """Context block for reports, with the projection cross-check."""
        projection = self.device.projection()
        peak = self.peak_attainable_gflops()
        projected = (projection.attainable_gflops(self.grid.nz)
                     * self.flops_scale)
        return {
            "device": self.device.name,
            "family": self.device.family,
            "grid": {"nx": self.grid.nx, "ny": self.grid.ny,
                     "nz": self.grid.nz},
            "cells": self.grid.num_cells,
            "flops": self._flops,
            "flops_scale": self.flops_scale,
            "ops_per_cell": _rounded(self.ops_per_cell),
            "projection_attainable_gflops": _rounded(projected),
            "model_attainable_gflops": _rounded(peak),
            "projection_consistent": (
                abs(peak - projected) <= 1e-6 * max(peak, projected)
            ),
        }

    def peak_attainable_gflops(self) -> float:
        """The model's whole-device ceiling (every column, full vectors,
        double buffering) — must equal the §V projection's roofline."""
        peak_point = VersalPoint(
            tile_columns=self.device.columns,
            engines_per_column=self.device.rows,
            vector_lanes=self.device.vector_lanes_max,
            buffering="double",
        )
        return (self.cells_per_second(peak_point)
                * self.ops_per_cell / 1e9)


class VersalAieBackend(Backend):
    """Versal ACAP AI-engine array (VC1902)."""

    id = "versal_aie"
    title = "Versal AI-engine array (VC1902)"
    default_device = "vc1902"

    def device_names(self) -> tuple[str, ...]:
        return tuple(sorted(_CATALOG))

    def resolve_device(self, name: "str | VersalDevice | None" = None
                       ) -> VersalDevice:
        if isinstance(name, VersalDevice):
            return name
        wanted = (name or self.default_device).lower()
        try:
            return _CATALOG[wanted]
        except KeyError:
            raise BackendError(
                f"unknown Versal device {name!r}; known: "
                f"{', '.join(sorted(_CATALOG))}"
            ) from None

    def parameter_space(self, device: Any, grid: Grid, *,
                        wide_precision: bool = False) -> VersalSpace:
        # The AI-engine datapath is single precision by construction;
        # there is no reduced-precision axis to open.
        del wide_precision
        return VersalSpace.derive(device, grid)

    def cost_model(self, device: Any, grid: Grid, *,
                   flops_scale: float = 1.0) -> VersalCostModel:
        return VersalCostModel(device, grid, flops_scale=flops_scale)

    def point_from_dict(self, data: dict) -> VersalPoint:
        return VersalPoint(**data)

    def canonical_point(self, device: VersalDevice, *,
                        tile_columns: int | None = None) -> VersalPoint:
        """The deployment linted/lowered when the caller picks none."""
        return VersalPoint(
            tile_columns=(device.columns if tile_columns is None
                          else tile_columns),
            engines_per_column=device.rows,
            vector_lanes=device.vector_lanes_max,
            buffering="double",
        )

    def structural_graph(self, grid: Grid, *, point: Any | None = None,
                         read_ii: int = 1) -> DataflowGraph:
        del read_ii  # PLIO feeds are fixed-rate; no memory II axis.
        device = self.resolve_device()
        resolved = point if point is not None else self.canonical_point(device)
        return build_versal_graph(grid, resolved)

    def lint(self, grid: Grid, *, device: Any | None = None,
             num_kernels: int | None = None, select: Any = None,
             ignore: Any = None, subject: str = "") -> LintReport:
        resolved = self.resolve_device(device)
        point = self.canonical_point(resolved, tile_columns=num_kernels)
        deployment = VersalDeployment(device=resolved, point=point,
                                      grid=grid)
        return run_lint(
            LintContext(backend_deployment=deployment),
            select=select, ignore=ignore,
            subject=subject or f"{resolved.name}:{point.key()}",
        )

    def roofline(self, column_height: int = 64) -> dict:
        """Backend roofline with the §V projection folded in as a
        consistency cross-check (the two must agree exactly)."""
        device = self.resolve_device()
        projection = device.projection()
        model = VersalCostModel(device, Grid(64, 64, column_height))
        attainable = model.peak_attainable_gflops()
        projected = projection.attainable_gflops(column_height)
        return {
            "backend": self.id,
            "device": device.name,
            "column_height": column_height,
            "engines": device.engines,
            "clock_mhz": device.clock_ghz * 1e3,
            "ops_per_cell": average_ops_per_cycle(column_height),
            "cells_per_second": model.cells_per_second(
                self.canonical_point(device)),
            "attainable_gflops": attainable,
            "compute_peak_gflops": projection.compute_peak_gflops,
            "projection_attainable_gflops": projected,
            "projection_consistent": (
                abs(attainable - projected)
                <= 1e-6 * max(attainable, projected)
            ),
            "feed_bound": projection.feed_bound,
        }

    def scenario_candidates(self, device: Any,
                            grid: Grid) -> Iterator[VersalPoint]:
        space = VersalSpace.derive(device, grid)
        columns = space.tile_columns[-1]
        engines = space.engines_per_column[-1]
        for buffering in ("double", "single"):
            for lanes in reversed(space.vector_lanes):
                yield VersalPoint(
                    tile_columns=columns, engines_per_column=engines,
                    vector_lanes=lanes, buffering=buffering,
                )


VERSAL_AIE = register_backend(VersalAieBackend())
